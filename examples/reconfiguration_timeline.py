#!/usr/bin/env python
"""Reconfiguration under the microscope: fail a switch on the 30-switch
SRC service LAN while RPC traffic runs, then reconstruct the event
timeline by merging the per-switch circular logs -- the debugging
technique of section 6.7.

Run:  python examples/reconfiguration_timeline.py
"""

from repro import Network, src_service_lan
from repro.analysis.logs import epochs_seen, reconfiguration_timeline
from repro.constants import SEC
from repro.host.localnet import LocalNet
from repro.host.workload import RpcClient, RpcServer


def main() -> None:
    spec = src_service_lan()
    net = Network(spec, seed=7)
    net.add_host("client", [(0, 9), (1, 9)])
    net.add_host("server", [(20, 9), (21, 9)])
    ln_client = LocalNet(net.drivers["client"])
    ln_server = LocalNet(net.drivers["server"])

    print(f"booting the SRC service LAN: {spec.n_switches} switches, "
          f"{len(spec.cables)} trunk links...")
    assert net.run_until_converged(timeout_ns=120 * SEC)
    net.run_for(5 * SEC)

    RpcServer(ln_server)
    client = RpcClient(ln_client, net.hosts["server"].uid, timeout_ns=1 * SEC)
    net.run_for(5 * SEC)
    before = client.completed
    print(f"RPC workload running: {before} calls completed")

    # crash a switch in the middle of the fabric
    victim = 12
    print(f"\ncrashing sw{victim}...")
    net.crash_switch(victim)
    assert net.run_until_converged(timeout_ns=120 * SEC)
    epoch = net.current_epoch()
    print(f"survived: {len(net.topology().switches)} switches in epoch {epoch}, "
          f"{client.completed - before} more RPCs completed, "
          f"longest gap {client.longest_gap_ns() / 1e9:.2f} s")

    # merge the circular logs (normalizing per-switch clock offsets) and
    # print the reconfiguration's history, as section 6.7 describes
    timeline = reconfiguration_timeline(net.merged_log, epoch)
    phases = timeline.phase_durations()
    print(f"\nepoch {epoch} timeline (all epochs seen: {epochs_seen(net.merged_log)[-3:]}):")
    print(f"  tree formation + reports : {phases['tree_and_reports'] / 1e6:8.1f} ms")
    print(f"  distribute + table loads : {phases['distribute_and_load'] / 1e6:8.1f} ms")
    print(f"  total                    : {phases['total'] / 1e6:8.1f} ms")

    print("\nfirst 12 merged log records of the epoch:")
    shown = 0
    for entry in timeline.entries:
        if entry.event in ("epoch-start", "position", "termination", "configured"):
            print(f"  t={entry.local_time / 1e6:9.3f} ms  {entry.component:<5} "
                  f"{entry.event:<12} {entry.detail}")
            shown += 1
            if shown >= 12:
                break


if __name__ == "__main__":
    main()
