#!/usr/bin/env python
"""The SRC deployment shape (section 5.5): an Autonet bridged to the
building Ethernet so the two behave as a single extended LAN, with the
bridge proxy-answering ARP for Ethernet hosts.

Run:  python examples/bridged_lan.py
"""

from repro import Network, line, Uid
from repro.baselines.ethernet import ETHERNET_BROADCAST, Ethernet
from repro.constants import SEC
from repro.host.bridge import AutonetEthernetBridge
from repro.host.localnet import LocalNet


def main() -> None:
    net = Network(line(3), seed=3)
    net.add_host("workstation", [(0, 9), (1, 9)])
    ws = LocalNet(net.drivers["workstation"])

    # the bridge is a host with one foot on each network (section 6.8.2)
    bridge_ctrl = net.add_host("firefly-bridge", [(2, 9), (1, 8)])
    ether = Ethernet(net.sim)
    station = ether.attach(bridge_ctrl.uid, "bridge-eth")
    legacy = ether.attach(Uid(0xE7), "legacy-vax")
    bridge = AutonetEthernetBridge(net.drivers["firefly-bridge"], station)

    print("bringing up the Autonet and the bridge...")
    assert net.run_until_converged(timeout_ns=60 * SEC)
    net.run_for(5 * SEC)

    # the legacy host announces itself on the Ethernet
    legacy_heard = []
    legacy.on_receive = lambda src, dst, size, p: legacy_heard.append((src, size))
    legacy.send(ETHERNET_BROADCAST, 64)
    net.run_for(1 * SEC)

    # the workstation sends to the legacy host's UID: the first packet
    # goes out on the Autonet broadcast address, the bridge forwards it
    # and proxy-ARPs, and the conversation settles to unicast
    print("workstation -> legacy-vax across the bridge:")
    for i, size in enumerate((900, 900, 900)):
        ws.send(Uid(0xE7), size)
        net.run_for(3 * SEC)
    print(f"  frames delivered on the Ethernet: "
          f"{[s for _src, s in legacy_heard if s == 900]}")

    entry = ws.cache.get(Uid(0xE7))
    print(f"  workstation's cache for legacy-vax -> short address "
          f"{entry.short_address:#05x} (the bridge's is "
          f"{net.drivers['firefly-bridge'].short_address:#05x})")

    # and back the other way
    ws_heard = []
    ws.on_datagram = lambda src, et, size, pkt: ws_heard.append((src, size))
    legacy.send(net.hosts["workstation"].uid, 700)
    net.run_for(2 * SEC)
    print(f"  legacy-vax -> workstation delivered: {ws_heard}")

    print(f"\nbridge counters: {bridge.forwarded_to_ethernet} -> Ethernet, "
          f"{bridge.forwarded_to_autonet} -> Autonet, "
          f"{bridge.proxy_arps} proxy ARPs, {bridge.discarded} discarded")


if __name__ == "__main__":
    main()
