#!/usr/bin/env python
"""Quickstart: build an Autonet, let it self-configure, break it, watch
it heal -- the core loop of the paper in thirty lines of API.

Run:  python examples/quickstart.py
"""

from repro import Network, torus
from repro.constants import SEC
from repro.host.localnet import LocalNet


def main() -> None:
    # a 12-switch torus (each switch: 12 ports, crossbar, Autopilot)
    net = Network(torus(3, 4), seed=42)

    # two dual-homed hosts, like every Firefly at SRC (section 3.9)
    net.add_host("ariel", [(0, 9), (1, 9)])
    net.add_host("miranda", [(10, 9), (11, 9)])
    ariel = LocalNet(net.drivers["ariel"])
    miranda = LocalNet(net.drivers["miranda"])

    print("booting: switches probe ports, elect a root, assign addresses...")
    assert net.run_until_converged(timeout_ns=60 * SEC)
    net.run_for(5 * SEC)
    topo = net.topology()
    print(f"converged in epoch {net.current_epoch()}: "
          f"{len(topo.switches)} switches, {len(topo.links)} links, "
          f"root {topo.root}")
    print(f"ariel's short address:   {net.drivers['ariel'].short_address:#05x}")
    print(f"miranda's short address: {net.drivers['miranda'].short_address:#05x}")

    # exchange datagrams: the UID caches learn the short addresses
    got = []
    miranda.on_datagram = lambda src, et, size, pkt: got.append(size)
    ariel.send(net.hosts["miranda"].uid, 1200)
    net.run_for(1 * SEC)
    print(f"datagram delivered: {got == [1200]}")

    # break a link: the monitors notice, Autopilot reconfigures
    print("\ncutting a trunk link...")
    net.cut_link(0, 1)
    assert net.run_until_converged(timeout_ns=60 * SEC)
    duration = net.epoch_duration()
    print(f"reconfigured in {duration / 1e6:.0f} ms "
          f"(paper: 170-500 ms on 30 switches)")

    got.clear()
    ariel.send(net.hosts["miranda"].uid, 800)
    net.run_for(1 * SEC)
    print(f"traffic still flows: {got == [800]}")


if __name__ == "__main__":
    main()
