#!/usr/bin/env python
"""Figure 9, live: the broadcast deadlock and the two-part fix.

Five switches V,W,X,Y,Z; host B's long packet to C holds W-Y while host
A's broadcast holds Z-C and waits for W-Y -- a circular wait under
no-discard flow control.  The fix: broadcast transmitters ignore `stop`
until the packet ends, and the FIFO is enlarged to hold a full broadcast.

Run:  python examples/broadcast_deadlock.py
"""

from repro.experiments.fig9 import build_fig9


def show(label: str, fifo_bytes: int, fix: bool) -> None:
    scenario = build_fig9(fifo_bytes=fifo_bytes, ignore_stop_in_broadcast=fix)
    result = scenario.run()
    verdict = "DEADLOCK" if result["deadlocked"] else "completed"
    print(f"{label:<42} -> {verdict}")
    print(f"   unicast B->C : {'delivered' if result['unicast_delivered'] else 'stuck in the fabric'}")
    print(f"   broadcast    : {'delivered' if result['broadcast_delivered'] else 'lost'}")
    if result["fifo_overflow"]:
        print("   !! FIFO overflow: the broadcast was corrupted in transit")
    print()


def main() -> None:
    print(__doc__)
    show("pre-fix hardware (1024-byte FIFO, obey stop)", 1024, False)
    show("the paper's fix (4096-byte FIFO, ignore stop)", 4096, True)
    show("half a fix (1024-byte FIFO, ignore stop)", 1024, True)
    print("Conclusion: ignoring stop breaks the circular wait, but is only\n"
          "safe with a FIFO big enough to absorb any complete broadcast --\n"
          "which is why Autonet uses 4096-byte FIFOs (section 6.2).")


if __name__ == "__main__":
    main()
