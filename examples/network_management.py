#!/usr/bin/env python
"""The operator's view: plan an installation (the §7 recipe), bring it
up, sweep it over SRP, and run the health doctor -- before and after
abusing the hardware.

Run:  python examples/network_management.py
"""

from repro.analysis.doctor import diagnose
from repro.analysis.explorer import NetworkExplorer
from repro.constants import SEC
from repro.network import Network
from repro.topology.planner import plan_installation


def main() -> None:
    # 1. plan: 24 dual-homed hosts, the SRC recipe
    plan = plan_installation(24, hosts_per_switch=6)
    print(plan.summary())
    problems = plan.verify()
    print(f"availability check: {'PASS' if not problems else problems}\n")

    # 2. build and boot the planned installation
    net = Network(plan.spec)
    for name, attachments in list(plan.host_attachments.items())[:6]:
        net.add_host(name, attachments)
    print("booting...")
    assert net.run_until_converged(timeout_ns=120 * SEC)
    net.run_for(3 * SEC)

    # 3. recover the topology over SRP (works even during reconfiguration)
    sweep = NetworkExplorer(net, origin=0).explore()
    print(f"SRP sweep: {len(sweep.topology.switches)} switches, "
          f"{len(sweep.topology.links)} links, root {sweep.topology.root}, "
          f"{sweep.queries} queries")
    deepest = max(sweep.routes.values(), key=len)
    print(f"deepest source route used: {deepest}\n")

    # 4. health report, healthy
    print(diagnose(net).render())

    # 5. abuse the hardware: flap a trunk three times, then diagnose again
    print("\nflapping a trunk link three times...")
    for _ in range(3):
        net.cut_link(0, 1)
        net.run_for(2 * SEC)
        net.restore_link(0, 1)
        net.run_for(4 * SEC)
    report = diagnose(net)
    print(report.render())
    print(f"\n(the skeptics are doing their job: the doctor shows the "
          f"elevated hold-downs; {len(report.warnings())} warnings)")


if __name__ == "__main__":
    main()
