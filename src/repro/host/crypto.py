"""Integrated encryption (sections 3.10, 6.8).

Every Autonet controller carries a pipelined encryption chip (an AMD
8068) that encrypts and decrypts packets at line rate, so secure
communication pays *no* latency or throughput penalty -- the design
argument of section 3.10.  The 26-byte encryption information field in
the packet header tells the receiving controller whether to decrypt,
which key to use, and which part of the packet is covered (Herbison's
master-key scheme; the paper defers details).

The model keeps the paper's observable behaviour: encryption is a
zero-cost transform applied in the controller pipeline; only holders of
the session key recover the payload; headers (short addresses, UIDs)
stay in the clear so switches and the learning cache work unchanged;
bridges refuse to forward encrypted packets to the Ethernet (§6.8.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Set

from repro.types import Uid

_key_ids = itertools.count(1)


@dataclass(frozen=True)
class EncryptedPayload:
    """The ciphertext: a key id plus the (opaque) protected payload."""

    key_id: int
    ciphertext: object

    def __repr__(self) -> str:
        return f"<encrypted key_id={self.key_id}>"


class KeyStore:
    """Session-key distribution for one installation.

    Stands in for the master-key infrastructure: `issue` creates a
    session key shared by a set of hosts; controllers consult `holds` to
    decide whether an arriving packet can be decrypted.
    """

    def __init__(self) -> None:
        self._holders: Dict[int, Set[Uid]] = {}

    def issue(self, holders: Iterable[Uid]) -> int:
        """Create a session key shared by ``holders``; returns its id."""
        key_id = next(_key_ids)
        self._holders[key_id] = set(holders)
        return key_id

    def grant(self, key_id: int, uid: Uid) -> None:
        self._holders.setdefault(key_id, set()).add(uid)

    def revoke(self, key_id: int, uid: Uid) -> None:
        self._holders.get(key_id, set()).discard(uid)

    def holds(self, uid: Uid, key_id: int) -> bool:
        return uid in self._holders.get(key_id, set())

    def encrypt(self, key_id: int, payload: object) -> EncryptedPayload:
        """Pipelined: costs nothing extra on the wire or in latency."""
        return EncryptedPayload(key_id=key_id, ciphertext=payload)

    def decrypt(self, uid: Uid, sealed: EncryptedPayload) -> object:
        if not self.holds(uid, sealed.key_id):
            raise PermissionError(f"{uid} does not hold key {sealed.key_id}")
        return sealed.ciphertext
