"""Alternate-link management: the Autonet driver (section 6.8.3).

In normal operation the driver exchanges a packet with the local switch
every few seconds, both confirming the host's short address and verifying
the link.  If the switch stops responding the driver probes vigorously,
and after three seconds without a response it switches to the alternate
link, forgets its short address, and contacts the new local switch.  If
neither link works it alternates between them every ten seconds.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.constants import (
    ADDR_LOCAL_SWITCH,
    HOST_FAILOVER_TIMEOUT_NS,
    HOST_PROBE_PERIOD_NS,
    HOST_SWITCHBACK_TIMEOUT_NS,
    MS,
)
from repro.core.messages import HostAddressReply, HostAddressRequest
from repro.host.controller import HostController
from repro.net.packet import Packet, PacketType

#: probe period while the switch is not answering
VIGOROUS_PROBE_PERIOD_NS = 250 * MS


class AutonetDriver:
    """Per-host link management and short-address tracking."""

    def __init__(
        self,
        controller: HostController,
        probe_period_ns: int = HOST_PROBE_PERIOD_NS,
        failover_timeout_ns: int = HOST_FAILOVER_TIMEOUT_NS,
        switchback_timeout_ns: int = HOST_SWITCHBACK_TIMEOUT_NS,
    ) -> None:
        self.controller = controller
        self.sim = controller.sim
        self.probe_period_ns = probe_period_ns
        self.failover_timeout_ns = failover_timeout_ns
        self.switchback_timeout_ns = switchback_timeout_ns

        self.short_address: Optional[int] = None
        self._last_response = self.sim.now
        #: fail over when this deadline passes without a switch response
        self._failover_deadline = self.sim.now + failover_timeout_ns
        #: delivery hook for client packets (LocalNet)
        self.on_packet: Optional[Callable[[Packet], None]] = None
        #: invoked with the new short address after (re)learning it
        self.on_address_change: Optional[Callable[[int], None]] = None

        controller.on_receive = self._receive
        self.failovers = 0
        self.probes_sent = 0
        self._probe()

    # -- probing ------------------------------------------------------------------------

    @property
    def ready(self) -> bool:
        return self.short_address is not None

    def _healthy(self) -> bool:
        return self.sim.now - self._last_response <= self.probe_period_ns + 500 * MS

    def _probe(self) -> None:
        if not self.controller.powered:
            self.sim.after(self.probe_period_ns, self._probe)
            return
        self._check_failover()
        self._send_probe()
        period = self.probe_period_ns if self._healthy() else VIGOROUS_PROBE_PERIOD_NS
        self.sim.after(period, self._probe)

    def _send_probe(self) -> None:
        request = HostAddressRequest(
            epoch=0, sender_uid=self.controller.uid, host_uid=self.controller.uid
        )
        self.controller.send(
            Packet(
                dest_short=ADDR_LOCAL_SWITCH,
                src_short=self.short_address or 0,
                ptype=PacketType.DIAGNOSTIC,
                data_bytes=request.encoded_bytes(),
                payload=request,
                src_uid=self.controller.uid,
            )
        )
        self.probes_sent += 1

    def kick(self) -> None:
        """One immediate extra probe, outside the periodic loop.

        The boot-time probe is usually lost (the switches are not
        configured yet), and the 2 s probe period then dominates host
        readiness.  Host software that just started (e.g. the traffic
        workload launching after convergence) kicks the driver instead
        of waiting out the period.
        """
        if not self.ready and self.controller.powered:
            self._send_probe()

    def _check_failover(self) -> None:
        if self.sim.now >= self._failover_deadline:
            self._fail_over()

    def _fail_over(self) -> None:
        """Adopt the alternate link (3 s of silence), or keep alternating
        every 10 s while neither switch answers."""
        self.failovers += 1
        self.short_address = None  # forget it; re-learn from the new switch
        self.controller.select_port(1 - self.controller.active_index)
        self._failover_deadline = self.sim.now + self.switchback_timeout_ns

    # -- reception -----------------------------------------------------------------------

    def _receive(self, packet: Packet) -> None:
        payload = packet.payload
        if isinstance(payload, HostAddressReply):
            self._last_response = self.sim.now
            self._failover_deadline = self.sim.now + self.failover_timeout_ns
            if payload.short_address != self.short_address:
                self.short_address = payload.short_address
                if self.on_address_change is not None:
                    self.on_address_change(payload.short_address)
            return
        if self.on_packet is not None:
            self.on_packet(packet)

    # -- transmission ---------------------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Send a client packet, stamping our current short address."""
        if self.short_address is None:
            return False
        packet.src_short = self.short_address
        return self.controller.send(packet)
