"""LocalNet: the generic LAN layer with dynamic short-address learning
(sections 3.11, 4.3, 6.8.1).

LocalNet presents UID-addressed Ethernet datagrams to clients and hides
Autonet short addresses behind a cache.  The cache learns from the source
short-address / source-UID pair of every arriving packet, falls back to
the broadcast short address when a destination is unknown, sends directed
ARP requests when an entry goes stale, and broadcasts a gratuitous ARP
response when the host's own short address changes.  The whole algorithm
costs ~15 instructions per packet in the real system; here we count the
cache operations so E12 can report the analogous overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.constants import (
    ADDR_BROADCAST_HOSTS,
    ARP_TIMEOUT_NS,
    MAX_BROADCAST_DATA_BYTES,
    UID_CACHE_FRESH_NS,
)
from repro.host.driver import AutonetDriver
from repro.net.packet import Packet, PacketType
from repro.types import Uid

#: the all-ones UID used for broadcast datagrams
BROADCAST_UID = Uid((1 << 48) - 1)


@dataclass
class ArpRequest:
    """Who has ``target_uid``?  (RFC 826 adapted to short addresses.)"""

    target_uid: Uid


@dataclass
class ArpResponse:
    """The target answers; its short address rides in the packet header."""

    target_uid: Uid


@dataclass
class CacheEntry:
    """One UID-cache row: the learned short address and its age."""

    short_address: int
    updated_at: int
    #: pending staleness check (so one use triggers at most one ARP)
    check_pending: bool = False


@dataclass
class LocalNetStats:
    """Counters backing the E12 learning experiment."""

    sent_unicast: int = 0
    sent_to_broadcast_address: int = 0
    arp_requests_sent: int = 0
    arp_responses_sent: int = 0
    gratuitous_arps: int = 0
    cache_updates: int = 0
    received: int = 0
    received_not_for_us: int = 0
    dropped_too_large_unknown: int = 0
    #: encrypted arrivals we hold no session key for
    undecryptable: int = 0


class LocalNet:
    """One host's generic-LAN layer over an Autonet driver.

    ``keystore`` enables encrypted communication (section 3.10): register
    a session key per peer with :meth:`use_session_key`, then pass
    ``encrypt=True`` to :meth:`send`.  Encryption costs nothing extra --
    the controller's pipelined chip runs at line rate.
    """

    def __init__(self, driver: AutonetDriver, keystore=None) -> None:
        self.driver = driver
        self.sim = driver.sim
        self.uid = driver.controller.uid
        self.cache: Dict[Uid, CacheEntry] = {}
        self.stats = LocalNetStats()
        self.keystore = keystore
        #: session key to use per destination UID
        self.session_keys: Dict[Uid, int] = {}
        #: client delivery hook: fn(src_uid, ethertype, data_bytes, packet)
        self.on_datagram: Optional[Callable[[Uid, int, int, Packet], None]] = None
        driver.on_packet = self._receive
        driver.on_address_change = self._address_changed

    def use_session_key(self, peer: Uid, key_id: int) -> None:
        self.session_keys[peer] = key_id

    # -- transmit (section 6.8.1, "Transmitting") -------------------------------------------

    def send(
        self,
        dest_uid: Uid,
        data_bytes: int,
        ethertype: int = 0x0800,
        payload: object = None,
        encrypt: bool = False,
    ) -> bool:
        """Send an Ethernet datagram over the Autonet."""
        if not self.driver.ready:
            return False
        encrypted = False
        if encrypt:
            key_id = self.session_keys.get(dest_uid)
            if self.keystore is None or key_id is None:
                return False  # no session key established with this peer
            payload = self.keystore.encrypt(key_id, payload)
            encrypted = True
        if dest_uid == BROADCAST_UID:
            return self._transmit(
                ADDR_BROADCAST_HOSTS, dest_uid, data_bytes, ethertype, payload, encrypted
            )

        entry = self.cache.get(dest_uid)
        if entry is None:
            entry = CacheEntry(ADDR_BROADCAST_HOSTS, updated_at=-(10 * UID_CACHE_FRESH_NS))
            self.cache[dest_uid] = entry

        if (
            entry.short_address == ADDR_BROADCAST_HOSTS
            and data_bytes > MAX_BROADCAST_DATA_BYTES
        ):
            # too large to broadcast and destination unknown: drop the
            # packet and send an ARP request in its place
            self.stats.dropped_too_large_unknown += 1
            self._send_arp_request(dest_uid, ADDR_BROADCAST_HOSTS)
            return False

        ok = self._transmit(
            entry.short_address, dest_uid, data_bytes, ethertype, payload, encrypted
        )
        self._maybe_check_staleness(dest_uid, entry)
        return ok

    def _transmit(
        self,
        short: int,
        dest_uid: Uid,
        data_bytes: int,
        ethertype: int,
        payload: object = None,
        encrypted: bool = False,
    ) -> bool:
        if short == ADDR_BROADCAST_HOSTS:
            self.stats.sent_to_broadcast_address += 1
            data_bytes = min(data_bytes, MAX_BROADCAST_DATA_BYTES)
        else:
            self.stats.sent_unicast += 1
        return self.driver.send(
            Packet(
                dest_short=short,
                src_short=0,  # stamped by the driver
                ptype=PacketType.CLIENT,
                dest_uid=dest_uid,
                src_uid=self.uid,
                data_bytes=data_bytes,
                payload=payload,
                encrypted=encrypted,
            )
        )

    def _maybe_check_staleness(self, dest_uid: Uid, entry: CacheEntry) -> None:
        """Paper rule: if the entry was updated within the two seconds
        prior to use, or is updated within the two seconds following, do
        nothing; otherwise ARP, and on no response fall back to
        broadcast."""
        now = self.sim.now
        if now - entry.updated_at <= UID_CACHE_FRESH_NS or entry.check_pending:
            return
        entry.check_pending = True
        use_time = now

        def check_after_grace() -> None:
            current = self.cache.get(dest_uid)
            if current is None:
                return
            current.check_pending = False
            if current.updated_at > use_time:
                return  # refreshed in the grace window
            self._send_arp_request(dest_uid, current.short_address)
            current.check_pending = True

            def expire() -> None:
                latest = self.cache.get(dest_uid)
                if latest is None:
                    return
                latest.check_pending = False
                if latest.updated_at <= use_time:
                    # no response: equivalent to removing the entry
                    latest.short_address = ADDR_BROADCAST_HOSTS

            self.sim.after(ARP_TIMEOUT_NS, expire)

        self.sim.after(UID_CACHE_FRESH_NS, check_after_grace)

    def _send_arp_request(self, target_uid: Uid, to_short: int) -> None:
        self.stats.arp_requests_sent += 1
        self.driver.send(
            Packet(
                dest_short=to_short,
                src_short=0,
                ptype=PacketType.CLIENT,
                dest_uid=target_uid,
                src_uid=self.uid,
                data_bytes=28,
                payload=ArpRequest(target_uid=target_uid),
            )
        )

    def _send_arp_response(self, to_uid: Uid, to_short: int) -> None:
        self.stats.arp_responses_sent += 1
        self.driver.send(
            Packet(
                dest_short=to_short,
                src_short=0,
                ptype=PacketType.CLIENT,
                dest_uid=to_uid,
                src_uid=self.uid,
                data_bytes=28,
                payload=ArpResponse(target_uid=self.uid),
            )
        )

    def _address_changed(self, new_address: int) -> None:
        """Broadcast an ARP response so other caches update immediately
        (hosts change short addresses only across reconfigurations)."""
        self.stats.gratuitous_arps += 1
        self.stats.arp_responses_sent -= 1  # don't double-count
        self._send_arp_response(BROADCAST_UID, ADDR_BROADCAST_HOSTS)

    # -- receive (section 6.8.1, "Receiving") ---------------------------------------------------

    def _learn(self, uid: Uid, short: int) -> None:
        if uid is None or short == 0:
            return
        entry = self.cache.get(uid)
        if entry is None:
            self.cache[uid] = CacheEntry(short, updated_at=self.sim.now)
        else:
            entry.short_address = short
            entry.updated_at = self.sim.now
        self.stats.cache_updates += 1

    def _receive(self, packet: Packet) -> None:
        self.stats.received += 1
        if packet.src_uid is not None:
            self._learn(packet.src_uid, packet.src_short)

        for_us = packet.dest_uid in (self.uid, BROADCAST_UID)
        if not for_us:
            # misaddressed or broadcast-flooded for someone else: filter
            self.stats.received_not_for_us += 1
            return

        if packet.encrypted:
            packet = self._decrypt(packet)
            if packet is None:
                return

        payload = packet.payload
        if isinstance(payload, ArpRequest):
            if payload.target_uid == self.uid and packet.src_uid is not None:
                entry = self.cache.get(packet.src_uid)
                to_short = entry.short_address if entry else ADDR_BROADCAST_HOSTS
                self._send_arp_response(packet.src_uid, to_short)
            return
        if isinstance(payload, ArpResponse):
            return  # learning already happened above

        if (
            packet.dest_short == ADDR_BROADCAST_HOSTS
            and packet.dest_uid == self.uid
            and packet.src_uid is not None
        ):
            # the sender fell back to broadcast: it lost our short address;
            # answer immediately so its cache heals (section 6.8.1)
            entry = self.cache.get(packet.src_uid)
            to_short = entry.short_address if entry else ADDR_BROADCAST_HOSTS
            self._send_arp_response(packet.src_uid, to_short)

        if self.on_datagram is not None:
            self.on_datagram(
                packet.src_uid, 0x0800, packet.data_bytes, packet
            )

    def _decrypt(self, packet: Packet) -> Optional[Packet]:
        """The controller's pipelined decryption: zero added latency.

        Returns a cleartext view of the packet, or None if this host
        holds no key for it (the packet is unreadable and dropped)."""
        from dataclasses import replace

        from repro.host.crypto import EncryptedPayload

        sealed = packet.payload
        if (
            self.keystore is None
            or not isinstance(sealed, EncryptedPayload)
            or not self.keystore.holds(self.uid, sealed.key_id)
        ):
            self.stats.undecryptable += 1
            return None
        return replace(packet, payload=sealed.ciphertext, encrypted=False)
