"""The LocalNet generic-LAN interface of section 5.6 (Figure 4).

LocalNet "presents a set of generic, UID-addressed LANs that carry
Ethernet datagrams": `get_info` lists the attached networks, `set_state`
enables or disables each, `send` transmits a datagram on a chosen
network, and a single receive hook delivers arrivals from any of them,
tagged with the network they came in on.  During the Autonet's shake-down
every Firefly stayed attached to both networks, and "the choice of which
network to use can be changed while the system is running... in the
middle of an RPC call or an IP connection without disrupting higher-level
software" (section 5.5) -- which the tests exercise literally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.baselines.ethernet import ETHERNET_BROADCAST, EthernetStation
from repro.host.localnet import BROADCAST_UID, LocalNet
from repro.types import Uid


@dataclass
class NetInfo:
    """One row of the GetInfo result."""

    net_id: int
    kind: str  # "autonet" | "ethernet"
    enabled: bool
    ready: bool


class MultiLan:
    """One host's view of several generic LANs (Figure 4).

    ``on_receive(net_id, src_uid, data_bytes, payload)`` fires for
    arrivals on any enabled network.
    """

    def __init__(self) -> None:
        self._autonets: Dict[int, LocalNet] = {}
        self._ethernets: Dict[int, EthernetStation] = {}
        self._enabled: Dict[int, bool] = {}
        self._next_id = 0
        self.on_receive: Optional[Callable[[int, Uid, int, object], None]] = None
        self.sent: Dict[int, int] = {}
        self.received: Dict[int, int] = {}

    # -- attachment ----------------------------------------------------------------

    def attach_autonet(self, localnet: LocalNet) -> int:
        net_id = self._next_id
        self._next_id += 1
        self._autonets[net_id] = localnet
        self._enabled[net_id] = True
        self.sent[net_id] = self.received[net_id] = 0
        localnet.on_datagram = (
            lambda src, et, size, pkt, nid=net_id: self._deliver(nid, src, size, pkt.payload)
        )
        return net_id

    def attach_ethernet(self, station: EthernetStation) -> int:
        net_id = self._next_id
        self._next_id += 1
        self._ethernets[net_id] = station
        self._enabled[net_id] = True
        self.sent[net_id] = self.received[net_id] = 0
        station.on_receive = (
            lambda src, dst, size, payload, nid=net_id: self._deliver(nid, src, size, payload)
        )
        return net_id

    # -- the LocalNet interface of Figure 4 ------------------------------------------

    def get_info(self) -> Dict[int, NetInfo]:
        """Which generic nets correspond to which physical networks."""
        info = {}
        for net_id, localnet in self._autonets.items():
            info[net_id] = NetInfo(
                net_id, "autonet", self._enabled[net_id], localnet.driver.ready
            )
        for net_id in self._ethernets:
            info[net_id] = NetInfo(net_id, "ethernet", self._enabled[net_id], True)
        return info

    def set_state(self, net_id: int, enabled: bool) -> None:
        """Enable or disable one network."""
        if net_id not in self._enabled:
            raise KeyError(f"no such network: {net_id}")
        self._enabled[net_id] = enabled

    def send(self, net_id: int, dest_uid: Uid, data_bytes: int,
             payload: object = None) -> bool:
        """Send an Ethernet datagram via a specific network."""
        if not self._enabled.get(net_id, False):
            return False
        if net_id in self._autonets:
            ok = self._autonets[net_id].send(dest_uid, data_bytes, payload=payload)
        elif net_id in self._ethernets:
            dest = ETHERNET_BROADCAST if dest_uid == BROADCAST_UID else dest_uid
            ok = self._ethernets[net_id].send(dest, data_bytes, payload)
        else:
            raise KeyError(f"no such network: {net_id}")
        if ok:
            self.sent[net_id] += 1
        return ok

    def first(self, kind: str) -> Optional[int]:
        """The id of the first attached network of the given kind."""
        for net_id, info in self.get_info().items():
            if info.kind == kind:
                return net_id
        return None

    # -- delivery -----------------------------------------------------------------------

    def _deliver(self, net_id: int, src_uid: Uid, data_bytes: int, payload: object) -> None:
        if not self._enabled.get(net_id, False):
            return  # a disabled network delivers nothing upward
        self.received[net_id] += 1
        if self.on_receive is not None:
            self.on_receive(net_id, src_uid, data_bytes, payload)
