"""The Autonet-to-Ethernet bridge (section 6.8.2).

A Firefly host forwarding between the Autonet and the building Ethernet.
Unlike an Ethernet bridge it does not see all Autonet packets -- only
broadcasts and packets sent to its own short address -- so to Autonet
hosts it "behaves like a large number of hosts sharing the same short
address": it answers ARP requests on behalf of Ethernet hosts (proxy
ARP), and rewrites short addresses as packets cross.

Performance is CPU-bound for small packets and Q-bus-bound for large
ones; the model's costs are calibrated to the paper's numbers: ~5000
small packets/s discarded, >1000 small packets/s forwarded, 200-300
maximum-size packets/s, about a millisecond of latency for a small
packet.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from repro.constants import ADDR_BROADCAST_HOSTS, MAX_BROADCAST_DATA_BYTES, US
from repro.baselines.ethernet import ETHERNET_BROADCAST, EthernetStation
from repro.host.driver import AutonetDriver
from repro.host.localnet import ArpRequest, ArpResponse, BROADCAST_UID
from repro.net.packet import Packet, PacketType
from repro.types import Uid


@dataclass
class BridgeCosts:
    """Per-packet CPU and I/O costs (two processors are dedicated to
    forwarding, so examine and forward overlap only partially)."""

    #: look at a packet and decide (discard path): ~5000/s
    examine_ns: int = 200 * US
    #: forwarding work beyond examination (small packet): ~1000/s total
    forward_ns: int = 650 * US
    #: effective Q-bus transfer cost per byte including DMA setup, paid
    #: twice (in and out); calibrated to the paper's 200-300 max-size
    #: packets per second
    qbus_per_byte_ns: int = 800


class AutonetEthernetBridge:
    """Bridge between one Autonet attachment and one Ethernet station."""

    def __init__(
        self,
        driver: AutonetDriver,
        station: EthernetStation,
        costs: Optional[BridgeCosts] = None,
        max_backlog: int = 64,
    ) -> None:
        self.driver = driver
        self.station = station
        self.sim = driver.sim
        self.costs = costs or BridgeCosts()
        self.max_backlog = max_backlog
        self.uid = driver.controller.uid

        #: uid -> ('autonet', short_address) or ('ethernet', None); a UID
        #: is on one network or the other, never both (section 6.8.2)
        self.cache: Dict[Uid, Tuple[str, Optional[int]]] = {}

        driver.on_packet = self._from_autonet
        station.on_receive = self._from_ethernet
        # an Ethernet bridge observes all traffic on the segment to learn
        # which side each host is on (section 6.8.2)
        station.promiscuous = True

        self._backlog: Deque = deque()
        self._busy = False

        # statistics
        self.examined = 0
        self.discarded = 0
        self.forwarded_to_ethernet = 0
        self.forwarded_to_autonet = 0
        self.proxy_arps = 0
        self.dropped_backlog = 0
        self.refused_large = 0
        self.refused_encrypted = 0

    # -- the forwarding CPU ---------------------------------------------------------------

    def _enqueue(self, work, cost: int) -> None:
        if len(self._backlog) >= self.max_backlog:
            self.dropped_backlog += 1
            return
        self._backlog.append((work, cost))
        if not self._busy:
            self._busy = True
            self._run_next()

    def _run_next(self) -> None:
        if not self._backlog:
            self._busy = False
            return
        work, cost = self._backlog.popleft()
        self.sim.after(cost, self._finish, work)

    def _finish(self, work) -> None:
        work()
        self._run_next()

    # -- Autonet -> Ethernet ----------------------------------------------------------------

    def _from_autonet(self, packet: Packet) -> None:
        if (
            self.driver.short_address is not None
            and packet.src_short == self.driver.short_address
        ):
            return  # an echo of our own proxy forwarding (broadcast flood)
        self.examined += 1
        if packet.src_uid is not None and packet.src_uid != self.uid:
            self.cache[packet.src_uid] = ("autonet", packet.src_short)

        payload = packet.payload
        if isinstance(payload, ArpRequest):
            self._enqueue(lambda: self._maybe_proxy_arp(packet, payload), self.costs.examine_ns)
            return
        if isinstance(payload, ArpResponse):
            return
        if packet.dest_uid is None or packet.dest_uid == self.uid:
            return

        side = self.cache.get(packet.dest_uid, (None, None))[0]
        broadcast = packet.dest_uid == BROADCAST_UID
        if side == "autonet" and not broadcast:
            # both ends on the Autonet: nothing to forward
            self._enqueue(self._count_discard, self.costs.examine_ns)
            return
        if packet.encrypted:
            self.refused_encrypted += 1
            return
        if packet.data_bytes > MAX_BROADCAST_DATA_BYTES:
            self.refused_large += 1
            return
        cost = (
            self.costs.examine_ns
            + self.costs.forward_ns
            + 2 * self.costs.qbus_per_byte_ns * packet.data_bytes
        )
        dest = ETHERNET_BROADCAST if broadcast else packet.dest_uid
        self._enqueue(
            lambda: self._emit_ethernet(dest, packet.data_bytes, packet.payload), cost
        )

    def _count_discard(self) -> None:
        self.discarded += 1

    def _emit_ethernet(self, dest: Uid, data_bytes: int, payload) -> None:
        self.forwarded_to_ethernet += 1
        self.station.send(dest, min(data_bytes, 1500), payload)

    def _maybe_proxy_arp(self, packet: Packet, request: ArpRequest) -> None:
        """Answer an Autonet ARP for a host known to live on the Ethernet;
        the response carries the target's UID with the bridge's short
        address, so the requester's cache points at the bridge."""
        side = self.cache.get(request.target_uid, (None, None))[0]
        if side != "ethernet" or not self.driver.ready:
            self.discarded += 1
            return
        self.proxy_arps += 1
        requester = self.cache.get(packet.src_uid, (None, None))
        to_short = requester[1] if requester[0] == "autonet" else ADDR_BROADCAST_HOSTS
        self.driver.controller.send(
            Packet(
                dest_short=to_short or ADDR_BROADCAST_HOSTS,
                src_short=self.driver.short_address,
                ptype=PacketType.CLIENT,
                dest_uid=packet.src_uid,
                src_uid=request.target_uid,  # proxy: speak as the target
                data_bytes=28,
                payload=ArpResponse(target_uid=request.target_uid),
            )
        )

    # -- Ethernet -> Autonet -----------------------------------------------------------------

    def _from_ethernet(self, src: Uid, dest: Uid, data_bytes: int, payload) -> None:
        self.examined += 1
        if src != self.uid:
            self.cache[src] = ("ethernet", None)
        if dest == self.uid:
            return
        side, short = self.cache.get(dest, (None, None))
        if side == "ethernet" and dest != ETHERNET_BROADCAST:
            self._enqueue(self._count_discard, self.costs.examine_ns)
            return
        if not self.driver.ready:
            self.discarded += 1
            return
        broadcast = dest == ETHERNET_BROADCAST
        if broadcast:
            dest_short: int = ADDR_BROADCAST_HOSTS
            dest_uid = BROADCAST_UID
        else:
            dest_short = short if short is not None else ADDR_BROADCAST_HOSTS
            dest_uid = dest
        cost = (
            self.costs.examine_ns
            + self.costs.forward_ns
            + 2 * self.costs.qbus_per_byte_ns * data_bytes
        )
        self._enqueue(
            lambda: self._emit_autonet(dest_short, dest_uid, src, data_bytes, payload),
            cost,
        )

    def _emit_autonet(
        self, dest_short: int, dest_uid: Uid, src_uid: Uid, data_bytes: int, payload
    ) -> None:
        self.forwarded_to_autonet += 1
        self.driver.controller.send(
            Packet(
                dest_short=dest_short,
                src_short=self.driver.short_address or 0,
                ptype=PacketType.CLIENT,
                dest_uid=dest_uid,
                src_uid=src_uid,
                data_bytes=data_bytes,
                payload=payload,
            )
        )


class AutonetAutonetBridge:
    """A bridge between two Autonets (section 6.8.2).

    "Slightly more complicated than an Ethernet bridge because a short
    address is not useful outside a single Autonet": forwarded packets get
    the destination's short address on the far net (or the broadcast
    address while unknown) and the *bridge's* short address there as
    source, so "to hosts on the bridged Autonets, an Autonet bridge
    behaves like a large number of hosts sharing the same short address."
    For unknown ARP targets the bridge probes the other network and
    answers the requester only once the destination has shown itself.
    """

    def __init__(self, driver_a: AutonetDriver, driver_b: AutonetDriver,
                 costs: Optional[BridgeCosts] = None, max_backlog: int = 64) -> None:
        if driver_a.sim is not driver_b.sim:
            raise ValueError("both attachments must share one simulator")
        self.sim = driver_a.sim
        self.drivers = {"a": driver_a, "b": driver_b}
        self.costs = costs or BridgeCosts()
        self.max_backlog = max_backlog
        self.uids = {driver_a.controller.uid, driver_b.controller.uid}
        #: uid -> (side, short address on that side)
        self.cache: Dict[Uid, Tuple[str, Optional[int]]] = {}
        #: ARP targets being probed -> [(requester uid, requester side)]
        self._pending_arps: Dict[Uid, list] = {}
        driver_a.on_packet = lambda packet: self._from_side("a", packet)
        driver_b.on_packet = lambda packet: self._from_side("b", packet)
        self._backlog: Deque = deque()
        self._busy = False
        self.examined = 0
        self.discarded = 0
        self.forwarded = 0
        self.proxy_arps = 0
        self.dropped_backlog = 0

    @staticmethod
    def _other(side: str) -> str:
        return "b" if side == "a" else "a"

    def _enqueue(self, work, cost: int) -> None:
        if len(self._backlog) >= self.max_backlog:
            self.dropped_backlog += 1
            return
        self._backlog.append((work, cost))
        if not self._busy:
            self._busy = True
            self._run_next()

    def _run_next(self) -> None:
        if not self._backlog:
            self._busy = False
            return
        work, cost = self._backlog.popleft()
        self.sim.after(cost, lambda: (work(), self._run_next()))

    def _my_short(self, side: str) -> Optional[int]:
        return self.drivers[side].short_address

    def _from_side(self, side: str, packet: Packet) -> None:
        if packet.src_short == self._my_short(side):
            return  # our own flood echo
        self.examined += 1
        src = packet.src_uid
        if src is not None and src not in self.uids:
            self.cache[src] = (side, packet.src_short)
            self._answer_pending(src)

        payload = packet.payload
        if isinstance(payload, ArpRequest):
            self._enqueue(
                lambda: self._handle_arp(side, packet, payload), self.costs.examine_ns
            )
            return
        if isinstance(payload, ArpResponse):
            return
        if packet.dest_uid is None or packet.dest_uid in self.uids:
            return

        dest_side = self.cache.get(packet.dest_uid, (None, None))[0]
        broadcast = packet.dest_uid == BROADCAST_UID
        if dest_side == side and not broadcast:
            self._enqueue(self._count_discard, self.costs.examine_ns)
            return
        cost = (
            self.costs.examine_ns
            + self.costs.forward_ns
            + 2 * self.costs.qbus_per_byte_ns * packet.data_bytes
        )
        self._enqueue(lambda: self._forward(self._other(side), packet), cost)

    def _count_discard(self) -> None:
        self.discarded += 1

    def _forward(self, to_side: str, packet: Packet) -> None:
        driver = self.drivers[to_side]
        if not driver.ready:
            self.discarded += 1
            return
        if packet.dest_uid == BROADCAST_UID:
            dest_short: int = ADDR_BROADCAST_HOSTS
            data = min(packet.data_bytes, MAX_BROADCAST_DATA_BYTES)
        else:
            cached = self.cache.get(packet.dest_uid, (None, None))
            dest_short = (
                cached[1] if cached[0] == to_side and cached[1] else ADDR_BROADCAST_HOSTS
            )
            data = packet.data_bytes
        self.forwarded += 1
        driver.controller.send(
            Packet(
                dest_short=dest_short,
                src_short=driver.short_address,  # the bridge's address there
                ptype=PacketType.CLIENT,
                dest_uid=packet.dest_uid,
                src_uid=packet.src_uid,
                data_bytes=data,
                payload=packet.payload,
                encrypted=packet.encrypted,
            )
        )

    # -- ARP proxying -------------------------------------------------------------------

    def _handle_arp(self, side: str, packet: Packet, request: ArpRequest) -> None:
        target = request.target_uid
        known_side = self.cache.get(target, (None, None))[0]
        if known_side == self._other(side):
            self._proxy_answer(side, packet.src_uid, target)
            return
        if known_side == side or target in self.uids:
            return  # same net (the real host answers) or ourselves
        # unsure: probe the other network; answer only if it responds
        self._pending_arps.setdefault(target, []).append((packet.src_uid, side))
        other = self.drivers[self._other(side)]
        if other.ready:
            other.controller.send(
                Packet(
                    dest_short=ADDR_BROADCAST_HOSTS,
                    src_short=other.short_address,
                    ptype=PacketType.CLIENT,
                    dest_uid=target,
                    src_uid=other.controller.uid,
                    data_bytes=28,
                    payload=ArpRequest(target_uid=target),
                )
            )

    def _answer_pending(self, learned_uid: Uid) -> None:
        for requester_uid, side in self._pending_arps.pop(learned_uid, []):
            if self.cache.get(learned_uid, (None, None))[0] == self._other(side):
                self._proxy_answer(side, requester_uid, learned_uid)

    def _proxy_answer(self, side: str, requester_uid: Uid, target: Uid) -> None:
        driver = self.drivers[side]
        if not driver.ready:
            return
        requester = self.cache.get(requester_uid, (None, None))
        to_short = requester[1] if requester[0] == side and requester[1] else ADDR_BROADCAST_HOSTS
        self.proxy_arps += 1
        driver.controller.send(
            Packet(
                dest_short=to_short,
                src_short=driver.short_address,
                ptype=PacketType.CLIENT,
                dest_uid=requester_uid,
                src_uid=target,  # proxy: speak as the target
                data_bytes=28,
                payload=ArpResponse(target_uid=target),
            )
        )


class EthernetEthernetBridge:
    """A classic learning bridge between two Ethernets (section 6.8.2):
    forwards a frame only when the destination is, or might be, on the
    other segment."""

    def __init__(self, station_a: "EthernetStation", station_b: "EthernetStation") -> None:
        self.stations = {"a": station_a, "b": station_b}
        for side, station in self.stations.items():
            station.promiscuous = True
            station.on_receive = (
                lambda src, dst, size, payload, s=side: self._from_side(s, src, dst, size, payload)
            )
        self.side_of: Dict[Uid, str] = {}
        self.forwarded = 0
        self.filtered = 0

    @staticmethod
    def _other(side: str) -> str:
        return "b" if side == "a" else "a"

    def _from_side(self, side: str, src: Uid, dst: Uid, size: int, payload) -> None:
        if src in (s.uid for s in self.stations.values()):
            return
        self.side_of[src] = side
        if dst in (s.uid for s in self.stations.values()):
            return
        if self.side_of.get(dst) == side and dst != ETHERNET_BROADCAST:
            self.filtered += 1
            return  # both ends on this segment
        self.forwarded += 1
        # transparent: the frame keeps its original source address
        self.stations[self._other(side)].send(dst, size, payload, src=src)
