"""Host-side substrate: controllers, driver, LocalNet, bridges, workloads.

Models the Q-bus controller of section 5.2 (dual network ports, 128 KB
transmit/receive buffers, CRC checking, never sends ``stop``), the
alternate-link management of section 6.8.3, the LocalNet generic-LAN layer
with its UID cache (section 6.8.1), and the bridges of section 6.8.2.
"""

from repro.host.bridge import (
    AutonetAutonetBridge,
    AutonetEthernetBridge,
    EthernetEthernetBridge,
)
from repro.host.controller import HostController, HostPort
from repro.host.crypto import KeyStore
from repro.host.driver import AutonetDriver
from repro.host.localnet import BROADCAST_UID, LocalNet
from repro.host.multilan import MultiLan
from repro.host.workload import PeriodicSender, RpcClient, RpcServer, Sink

__all__ = [
    "AutonetAutonetBridge",
    "AutonetEthernetBridge",
    "EthernetEthernetBridge",
    "HostController",
    "HostPort",
    "KeyStore",
    "AutonetDriver",
    "BROADCAST_UID",
    "LocalNet",
    "MultiLan",
    "PeriodicSender",
    "RpcClient",
    "RpcServer",
    "Sink",
]
