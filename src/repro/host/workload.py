"""Traffic generators and sinks for the experiments.

The paper motivates Autonet with two workload classes (section 1):
request/response protocols such as RPC, where latency matters, and
bulk-data transfer, where throughput matters.  The benches also use
permutation traffic -- every host sending to a distinct partner -- to
exercise the aggregate-bandwidth claim, and broadcast traffic for the
flood experiments.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional

from repro.constants import MS
from repro.host.localnet import LocalNet
from repro.net.packet import Packet
from repro.types import Uid

_rpc_ids = itertools.count(1)


class Sink:
    """Counts datagrams arriving at a LocalNet instance."""

    def __init__(self, localnet: LocalNet) -> None:
        self.localnet = localnet
        self.sim = localnet.sim
        self.count = 0
        self.bytes = 0
        self.latencies_ns: List[int] = []
        self.last_arrival_ns = -1
        localnet.on_datagram = self._arrive

    def _arrive(self, src_uid: Uid, ethertype: int, data_bytes: int, packet: Packet) -> None:
        self.count += 1
        self.bytes += data_bytes
        self.last_arrival_ns = self.sim.now
        if packet.created_at:
            self.latencies_ns.append(self.sim.now - packet.created_at)

    def mean_latency_ns(self) -> float:
        return sum(self.latencies_ns) / len(self.latencies_ns) if self.latencies_ns else 0.0

    def throughput_bits_per_ns(self, elapsed_ns: int) -> float:
        return (self.bytes * 8) / elapsed_ns if elapsed_ns > 0 else 0.0


class PeriodicSender:
    """Open-loop sender: one datagram to a fixed destination per period."""

    def __init__(
        self,
        localnet: LocalNet,
        dest_uid: Uid,
        data_bytes: int,
        period_ns: int,
        count: Optional[int] = None,
    ) -> None:
        self.localnet = localnet
        self.sim = localnet.sim
        self.dest_uid = dest_uid
        self.data_bytes = data_bytes
        self.period_ns = period_ns
        self.remaining = count
        self.attempted = 0
        self.accepted = 0
        self._stopped = False
        self.sim.call_soon(self._tick)

    def stop(self) -> None:
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped or (self.remaining is not None and self.attempted >= self.remaining):
            return
        self.attempted += 1
        if self.localnet.send(self.dest_uid, self.data_bytes):
            self.accepted += 1
        self.sim.after(self.period_ns, self._tick)


@dataclass
class RpcRequest:
    """A call: the server answers with ``response_bytes`` of reply."""

    rpc_id: int
    response_bytes: int


@dataclass
class RpcResponse:
    """The matching reply for one outstanding call."""

    rpc_id: int


class RpcServer:
    """Echoes a response for every request datagram received."""

    def __init__(self, localnet: LocalNet) -> None:
        self.localnet = localnet
        self.served = 0
        localnet.on_datagram = self._serve

    def _serve(self, src_uid: Uid, ethertype: int, data_bytes: int, packet: Packet) -> None:
        request = packet.payload
        if not isinstance(request, RpcRequest):
            return
        self.served += 1
        self.localnet.send(
            src_uid, request.response_bytes, payload=RpcResponse(rpc_id=request.rpc_id)
        )


class RpcClient:
    """Closed-loop RPC client: issues the next call when the previous one
    completes (or times out), recording latency and outage gaps."""

    def __init__(
        self,
        localnet: LocalNet,
        server_uid: Uid,
        request_bytes: int = 128,
        response_bytes: int = 512,
        timeout_ns: int = 500 * MS,
        think_ns: int = 0,
    ) -> None:
        self.localnet = localnet
        self.sim = localnet.sim
        self.server_uid = server_uid
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.timeout_ns = timeout_ns
        self.think_ns = think_ns
        self.completed = 0
        self.timeouts = 0
        self.latencies_ns: List[int] = []
        #: timestamps of successful completions, for outage analysis
        self.completion_times: List[int] = []
        self._outstanding: Optional[int] = None
        self._issued_at = 0
        self._stopped = False
        localnet.on_datagram = self._receive
        self.sim.call_soon(self._issue)

    def stop(self) -> None:
        self._stopped = True

    def _issue(self) -> None:
        if self._stopped:
            return
        rpc_id = next(_rpc_ids)
        self._outstanding = rpc_id
        self._issued_at = self.sim.now
        self.localnet.send(
            self.server_uid,
            self.request_bytes,
            payload=RpcRequest(rpc_id=rpc_id, response_bytes=self.response_bytes),
        )
        self.sim.after(self.timeout_ns, self._maybe_timeout, rpc_id)

    def _maybe_timeout(self, rpc_id: int) -> None:
        if self._outstanding == rpc_id:
            self.timeouts += 1
            self._outstanding = None
            self._issue()

    def _receive(self, src_uid: Uid, ethertype: int, data_bytes: int, packet: Packet) -> None:
        response = packet.payload
        if not isinstance(response, RpcResponse) or response.rpc_id != self._outstanding:
            return
        self._outstanding = None
        self.completed += 1
        self.latencies_ns.append(self.sim.now - self._issued_at)
        self.completion_times.append(self.sim.now)
        if self.think_ns:
            self.sim.after(self.think_ns, self._issue)
        else:
            self.sim.call_soon(self._issue)

    def longest_gap_ns(self) -> int:
        """Largest interval between successive completions (outage size)."""
        times = self.completion_times
        if len(times) < 2:
            return 0
        return max(b - a for a, b in zip(times, times[1:]))
