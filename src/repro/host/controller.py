"""The dual-ported Autonet host controller (sections 3.9, 5.2, 6.2).

A controller has two network ports cabled to (ideally different) switches;
only one is active at a time.  The active port sends the ``host``
flow-control directive; the alternate port transmits only sync commands,
which the far switch's status sampler recognizes as the
constant-BadSyntax s.host fingerprint.  Hosts obey ``stop`` from the
switch but never send ``stop`` themselves: a slow host's receive buffer
fills and the controller discards packets (section 6.2).
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Callable, Deque, List, Optional

from repro.net.fifo import ReceiveFifo
from repro.net.flowcontrol import Directive, FlowControlReceiver, FlowControlSender
from repro.net.link import Endpoint, Transmitter
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.types import Uid

#: transmit and receive buffer sizes of the Q-bus controller (section 5.2)
DEFAULT_BUFFER_BYTES = 128 * 1024


class HostPort(Endpoint):
    """One of the controller's two network ports."""

    def __init__(self, sim: Simulator, controller: "HostController", index: int) -> None:
        self.sim = sim
        self.controller = controller
        self.index = index
        self.name = f"{controller.name}.port{index}"
        self.active = False
        #: transmit staging: packets fully buffered before serialization
        self.tx_fifo = ReceiveFifo(
            sim,
            name=f"{self.name}.tx",
            capacity=1 << 30,
            on_head_ready=self._tx_head_ready,
            on_packet_drained=self._tx_drained,
        )
        self.fc_receiver = FlowControlReceiver(on_change=self._fc_changed)
        self.tx = Transmitter(self, self.fc_receiver)
        self.fc_sender: Optional[FlowControlSender] = None
        # receive-side bookkeeping
        self._rx_arriving: List[Packet] = []

    # -- wiring -------------------------------------------------------------------

    def attach_link(self) -> None:
        if self.link is None:
            raise RuntimeError(f"{self.name}: no link attached")
        self.fc_sender = FlowControlSender(
            self.sim,
            deliver=lambda d: self.link.send_flow_control(self, d),
            propagation_ns=0,
            # stable per-port slot phase (str hash is salted per process)
            phase=(zlib.crc32(self.name.encode()) % 256) * 80,
            is_host=True,
        )
        if not self.active:
            self.fc_sender.mute(True)

    def set_active(self, active: bool) -> None:
        if active == self.active:
            return
        self.active = active
        if self.fc_sender is not None:
            self.fc_sender.mute(not active)
        self.tx_fifo.recompute()

    # -- transmit path -----------------------------------------------------------------

    def enqueue(self, packet: Packet) -> None:
        self.tx_fifo.begin_packet(packet)
        entry = self.tx_fifo.queue[-1]
        entry.bytes_in = float(entry.size)
        entry.arriving = False
        self.tx_fifo.recompute()

    def _tx_head_ready(self, packet: Packet) -> None:
        # no router on a host: the head packet drains straight to the link
        self.tx_fifo.connect_drain([self.tx], broadcast=packet.is_broadcast)

    def _tx_drained(self, packet: Packet) -> None:
        self.controller._tx_complete(self, packet)

    def _fc_changed(self, directive: Directive) -> None:
        self.tx_fifo.recompute()

    def queued_bytes(self) -> float:
        return sum(e.size for e in self.tx_fifo.queue)

    def clear_tx(self) -> None:
        """Abort queued transmissions (used when failing over)."""
        if self.tx.current is not None:
            packet = self.tx.current
            packet.corrupted = True
            self.tx.notify_rate(0.0)
            self.tx.notify_end(packet)
        self.tx_fifo.queue.clear()
        self.tx_fifo.drain_rate = 0.0
        self.tx_fifo.recompute()

    # -- receive path (Endpoint interface) ----------------------------------------------

    def rx_begin_packet(self, packet: Packet) -> None:
        if self.controller.powered:
            self._rx_arriving.append(packet)

    def rx_set_rate(self, rate: float) -> None:
        pass  # arrival timing is implicit; hosts deliver on the end marker

    def rx_end_packet(self, packet: Packet) -> None:
        if not self.controller.powered:
            return
        if packet in self._rx_arriving:
            self._rx_arriving.remove(packet)
        self.controller._rx_complete(self, packet)

    def rx_flow_control(self, directive: Directive) -> None:
        if self.controller.powered:
            self.fc_receiver.receive(directive, self.sim.now)

    def describe_transmission(self) -> str:
        if not self.controller.powered:
            return "silence"
        return "normal" if self.active else "sync-only"

    def on_link_state_change(self) -> None:
        if (
            self.link is not None
            and self.link.state.name == "UP"
            and self.fc_sender is not None
            and self.active
        ):
            self.fc_sender.reannounce()


class HostController:
    """The network controller of one host."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        uid: Uid,
        tx_buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        rx_buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    ) -> None:
        self.sim = sim
        self.name = name
        self.uid = uid
        self.powered = True
        self.ports = [HostPort(sim, self, 0), HostPort(sim, self, 1)]
        self.active_index = 0
        self.ports[0].active = True  # before attach; mute applied on attach
        self.tx_buffer_bytes = tx_buffer_bytes
        self.rx_buffer_bytes = rx_buffer_bytes
        self._rx_held = 0
        #: delivery hook (the driver); receives (packet)
        self.on_receive: Optional[Callable[[Packet], None]] = None
        #: per-packet receive processing time before the buffer frees
        self.rx_processing_ns = 0
        self._rx_backlog: Deque[Packet] = deque()
        self._rx_processing = False

        # statistics
        self.packets_sent = 0
        self.packets_received = 0
        self.packets_dropped_rx = 0
        self.packets_dropped_tx = 0
        self.packets_ignored_alternate = 0
        self.crc_errors = 0
        self.link_errors = 0

    # -- port selection ---------------------------------------------------------------------

    @property
    def active_port(self) -> HostPort:
        return self.ports[self.active_index]

    @property
    def alternate_port(self) -> HostPort:
        return self.ports[1 - self.active_index]

    def select_port(self, index: int) -> None:
        """Switch the active network port (driver failover, section 6.8.3)."""
        if index == self.active_index:
            return
        self.active_port.clear_tx()
        self.active_port.set_active(False)
        self.active_index = index
        self.active_port.set_active(True)

    # -- transmit -----------------------------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Queue a packet on the active port.

        Returns False when the transmit buffer is full (the host software
        would block its sending threads, section 6.2).
        """
        if not self.powered:
            return False
        port = self.active_port
        if port.queued_bytes() + packet.wire_bytes > self.tx_buffer_bytes:
            self.packets_dropped_tx += 1
            return False
        packet.created_at = packet.created_at or self.sim.now
        port.enqueue(packet)
        return True

    def _tx_complete(self, port: HostPort, packet: Packet) -> None:
        self.packets_sent += 1

    # -- receive ------------------------------------------------------------------------------

    def _rx_complete(self, port: HostPort, packet: Packet) -> None:
        if not port.active:
            # only one of the two connections is usable at a time (§3.9)
            self.packets_ignored_alternate += 1
            return
        if packet.corrupted:
            self.crc_errors += 1
            ib = self.sim.inband
            if ib is not None:
                ib.record_drop(packet, self.name, "crc")
            tr = self.sim.traffic
            if tr is not None:
                tr.record_drop(packet, self.name, "crc")
            return
        if self._rx_held + packet.wire_bytes > self.rx_buffer_bytes:
            self.packets_dropped_rx += 1
            ib = self.sim.inband
            if ib is not None:
                ib.record_drop(packet, self.name, "rx-buffer-full")
            tr = self.sim.traffic
            if tr is not None:
                tr.record_drop(packet, self.name, "rx-buffer-full")
            return
        self.packets_received += 1
        ib = self.sim.inband
        if ib is not None:
            ib.record_delivery(packet, self.name)
        tr = self.sim.traffic
        if tr is not None:
            tr.record_delivery(packet, self.name)
        if self.rx_processing_ns <= 0:
            if self.on_receive is not None:
                self.on_receive(packet)
            return
        # slow consumer (e.g. a bridge): buffer until processed
        self._rx_held += packet.wire_bytes
        self._rx_backlog.append(packet)
        if not self._rx_processing:
            self._rx_processing = True
            self.sim.after(self.rx_processing_ns, self._process_one)

    def _process_one(self) -> None:
        if not self._rx_backlog:
            self._rx_processing = False
            return
        packet = self._rx_backlog.popleft()
        self._rx_held -= packet.wire_bytes
        if self.on_receive is not None:
            self.on_receive(packet)
        if self._rx_backlog:
            self.sim.after(self.rx_processing_ns, self._process_one)
        else:
            self._rx_processing = False

    # -- power ---------------------------------------------------------------------------------

    def power_off(self) -> None:
        """Host powered down: its links reflect (coax) or go silent."""
        self.powered = False
        for port in self.ports:
            port.clear_tx()
            if port.fc_sender is not None:
                port.fc_sender.mute(True)

    def power_on(self) -> None:
        self.powered = True
        active = self.active_port
        if active.fc_sender is not None:
            active.fc_sender.mute(False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HostController {self.name} uid={self.uid}>"
