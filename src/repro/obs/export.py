"""Stable JSON export schema for benchmark runs.

Every benchmark writes its results through :func:`bench_document` /
:func:`write_document`, so downstream tooling (CI trend lines, the
paper-table comparisons) reads one format:

.. code-block:: json

    {
      "schema": "repro.bench/1",
      "bench": "reconfiguration",
      "title": "Reconfiguration blackout",
      "seed": 1234,
      "results": [
        {
          "name": "single_link_failure",
          "title": "...",
          "headers": ["topology", "blackout"],
          "rows": [["ring(12)", 287.3]],
          "notes": "",
          "telemetry": {...}
        }
      ]
    }

``validate_document`` is a hand-rolled structural check (the container
has no ``jsonschema``); CI runs it over every emitted file.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence

#: bump the suffix when the document layout changes incompatibly
SCHEMA = "repro.bench/1"


def bench_result(
    name: str,
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    notes: str = "",
    telemetry: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One result table, as a schema-shaped dict."""
    result: Dict[str, Any] = {
        "name": name,
        "title": title,
        "headers": list(headers),
        "rows": [list(row) for row in rows],
        "notes": notes,
    }
    if telemetry is not None:
        result["telemetry"] = telemetry
    return result


def bench_document(
    bench: str,
    title: str = "",
    seed: Optional[int] = None,
    results: Optional[List[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """A full document; append :func:`bench_result` dicts to ``results``."""
    return {
        "schema": SCHEMA,
        "bench": bench,
        "title": title,
        "seed": seed,
        "results": list(results) if results else [],
    }


class SchemaError(ValueError):
    """Raised by :func:`validate_document` on a malformed document."""


def _fail(path: str, why: str) -> None:
    raise SchemaError(f"{path}: {why}")


def validate_document(doc: Any) -> Dict[str, Any]:
    """Structurally validate a bench document; returns it on success."""
    if not isinstance(doc, dict):
        _fail("$", f"expected object, got {type(doc).__name__}")
    if doc.get("schema") != SCHEMA:
        _fail("$.schema", f"expected {SCHEMA!r}, got {doc.get('schema')!r}")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        _fail("$.bench", "expected non-empty string")
    if not isinstance(doc.get("title"), str):
        _fail("$.title", "expected string")
    seed = doc.get("seed")
    if seed is not None and not isinstance(seed, int):
        _fail("$.seed", "expected int or null")
    results = doc.get("results")
    if not isinstance(results, list):
        _fail("$.results", "expected array")
    for i, result in enumerate(results):
        path = f"$.results[{i}]"
        if not isinstance(result, dict):
            _fail(path, "expected object")
        for field in ("name", "title", "notes"):
            if not isinstance(result.get(field), str):
                _fail(f"{path}.{field}", "expected string")
        headers = result.get("headers")
        if not isinstance(headers, list) or not all(
            isinstance(h, str) for h in headers
        ):
            _fail(f"{path}.headers", "expected array of strings")
        rows = result.get("rows")
        if not isinstance(rows, list):
            _fail(f"{path}.rows", "expected array")
        for j, row in enumerate(rows):
            if not isinstance(row, list):
                _fail(f"{path}.rows[{j}]", "expected array")
            if len(row) != len(headers):
                _fail(
                    f"{path}.rows[{j}]",
                    f"row width {len(row)} != header width {len(headers)}",
                )
            for k, cell in enumerate(row):
                if not isinstance(cell, (int, float, str, bool)) and cell is not None:
                    _fail(
                        f"{path}.rows[{j}][{k}]",
                        f"expected scalar, got {type(cell).__name__}",
                    )
        telemetry = result.get("telemetry")
        if telemetry is not None and not isinstance(telemetry, dict):
            _fail(f"{path}.telemetry", "expected object or absent")
    return doc


def write_document(path: str, doc: Dict[str, Any]) -> None:
    """Validate and atomically-ish write a document as JSON."""
    validate_document(doc)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")


def read_document(path: str) -> Dict[str, Any]:
    """Load and validate a document from disk."""
    with open(path) as fh:
        return validate_document(json.load(fh))
