"""CLI for the flight recorder and the event-loop profiler.

.. code-block:: console

    # run a scenario and export the Perfetto/Chrome trace
    python -m repro.obs export --topo ring-4 --cut 0-1

    # print the causal chain behind every switch's table load
    python -m repro.obs why --topo ring-4 --cut 0-1

    # the CI throughput baseline: hotspots + events_per_sec as repro.bench/1
    python -m repro.obs profile --topo torus-3x4 --cut 0-1 --json profile.json

    # live dashboard: sparklines per switch while the sim reconfigures
    python -m repro.obs watch --topo torus-3x4 --cut 0-1 --duration 5

    # replay a recorded timeseries artifact
    python -m repro.obs watch --replay torus-3x4.timeseries.json

    # gate: diff a fresh bench document against committed baselines
    python -m repro.obs regress --current bench.json \
        --baseline benchmarks/results/baselines

    # in-band path telemetry: per-flow paths, p50/p99, congested links
    python -m repro.obs paths --topo torus-3x4 --cut 0-1

Each scenario subcommand runs the same scenario: build the topology,
converge, apply the requested link cuts, reconverge.  ``export`` writes
a ``repro.obs.flight/1`` document loadable at https://ui.perfetto.dev;
``why`` answers section 6.7's question ("why did this epoch happen?")
from the recorded parent chain; ``profile`` measures the simulator
itself; ``watch`` renders the time-series sampler live (or replays an
artifact); ``regress`` compares ``repro.bench/1`` documents against a
baseline window and exits non-zero on out-of-band metrics; ``sweep``
climbs a topology ladder and writes ``repro.obs.sweep/1`` scaling
curves (convergence, blackout, control-plane cost versus size).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

from repro.constants import MS, SEC
from repro.network import Network
from repro.obs.export import bench_document, bench_result, write_document
from repro.obs.flight import CAT_EPOCH, CAT_PORT, render_chain
from repro.obs.inband import write_inband
from repro.obs.perfetto import path_trace_document, write_trace
from repro.obs.regress import (
    Tolerance,
    baseline_window,
    compare,
    render_verdict,
    write_regress,
)
from repro.obs.sweep import LADDERS, render_sweep, run_sweep, write_sweep
from repro.obs.timeseries import TimeSeries, TimeSeriesConfig
from repro.obs.watch import watch_live, watch_replay
from repro.scenario import drive_scenario, report_unknown_subcommand
from repro.topology.generators import TOPOLOGY_FAMILIES, resolve_topology


def _parse_cut(text: str) -> Tuple[int, int]:
    try:
        a, b = text.split("-", 1)
        return int(a), int(b)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected a cut like 0-1 (two switch indices), got {text!r}"
        ) from exc


def _run_scenario(
    topo: str,
    cuts: List[Tuple[int, int]],
    seed: int,
    flight: bool = True,
    capacity: int = 65536,
    profile: bool = False,
) -> Network:
    spec = resolve_topology(topo)
    net = Network(
        spec, seed=seed, flight=flight, flight_capacity=capacity, profile=profile
    )
    drive_scenario(net, cuts)
    return net


def _free_port(net: Network, sw: int) -> int:
    """The highest-numbered unconnected port on switch ``sw``."""
    for p in sorted(net.switches[sw].ports, reverse=True):
        if not net.switches[sw].ports[p].connected:
            return p
    raise SystemExit(f"no free port on sw{sw} to attach a host")


def _attach_traffic(
    net: Network,
    period_ms: float,
    data_bytes: int,
):
    """Two dual-direction hosts on opposite corners of the topology,
    each with a periodic sender and a latency-counting sink."""
    from repro.host.localnet import LocalNet
    from repro.host.workload import PeriodicSender, Sink

    count = len(net.switches)
    spots = [0, count // 2 if count > 1 else 0]
    hosts = []
    for i, sw in enumerate(spots):
        name = f"h{i}"
        controller = net.add_host(name, [(sw, _free_port(net, sw))])
        hosts.append((name, controller, LocalNet(net.drivers[name])))
    for i, (_name, _controller, localnet) in enumerate(hosts):
        Sink(localnet)
        peer = hosts[1 - i][1]
        PeriodicSender(
            localnet, peer.uid, data_bytes, int(period_ms * MS)
        )
    return hosts


def _fmt_ns(value) -> str:
    if value is None:
        return "-"
    if value < 1_000:
        return f"{value:.0f}ns"
    if value < 1_000_000:
        return f"{value / 1e3:.1f}us"
    if value < 1_000_000_000:
        return f"{value / 1e6:.1f}ms"
    return f"{value / 1e9:.3f}s"


def _fmt_path(path, max_hops: int = 6) -> str:
    shown = [
        f"{sw}:p{inp}>" + "/".join(f"p{o}" for o in outs)
        for sw, inp, outs in path[:max_hops]
    ]
    if len(path) > max_hops:
        shown.append(f"... +{len(path) - max_hops} hops")
    return " | ".join(shown) if shown else "(no hops)"


def _cmd_paths(args) -> int:
    spec = resolve_topology(args.topo)
    net = Network(spec, seed=args.seed, inband=True)
    hosts = _attach_traffic(net, args.period, args.bytes)
    cuts = args.cut or [(0, 1)]
    drive_scenario(net, cuts, load_ns=int(args.duration * SEC))

    doc = net.inband_doc()
    uid_names = {ctrl.uid.value: name for name, ctrl, _ln in hosts}

    def who(uid: int) -> str:
        return uid_names.get(uid, f"{uid:012x}")

    cut_list = " ".join(f"{a}-{b}" for a, b in cuts)
    print(
        f"in-band path telemetry on {args.topo} (seed {args.seed}, "
        f"cut {cut_list})"
    )
    print(
        f"  {doc['hops_recorded']} hop records on {doc['slo']['deliveries']} "
        f"deliveries, {doc['hops_truncated']} truncated"
    )
    print()
    print("flows:")
    for flow in doc["flows"]:
        print(
            f"  {who(flow['src_uid'])} -> {who(flow['dest_uid'])}: "
            f"{flow['deliveries']} delivered, "
            f"p50 {_fmt_ns(flow['latency_p50_ns'])} "
            f"p99 {_fmt_ns(flow['latency_p99_ns'])}, "
            f"{flow['paths_seen']} path(s)"
        )
        print(f"    path: {_fmt_path(flow['path'])}")
        for change in flow["changes"]:
            epoch = change["epoch"]
            print(
                f"    change @ +{change['t_ns'] / 1e9:.3f}s"
                f"{f' (epoch {epoch})' if epoch is not None else ''}: "
                f"{_fmt_path(change['to'])}"
            )
    changes = sum(len(flow["changes"]) for flow in doc["flows"])
    print(f"  {changes} path change(s) detected")
    print()
    print("top congested links (mean FIFO depth at forwarding):")
    top = sorted(doc["links"], key=lambda e: (-e["mean_depth"], e["link"]))
    for entry in top[: args.top]:
        drops = f", {entry['drops']} queue drops" if entry["drops"] else ""
        print(
            f"  {entry['link']:<10} {entry['samples']:>6} samples  "
            f"mean {entry['mean_depth']:.0f}B  max {entry['max_depth']:.0f}B"
            f"{drops}"
        )
    print()
    slo = doc["slo"]
    print(
        f"slo: {slo['deliveries']} delivered "
        f"({slo['delivered_bytes']} data bytes), "
        f"p50 {_fmt_ns(slo['p50_ns'])} p99 {_fmt_ns(slo['p99_ns'])}, "
        f"drops {slo['drops'] or '{}'}"
    )
    for window in slo["windows"]:
        if window["max_blackout_ns"] is None:
            continue
        print(
            f"  epoch {window['epoch']} "
            f"[+{window['start_ns'] / 1e9:.3f}s..+{window['end_ns'] / 1e9:.3f}s] "
            f"blackout {_fmt_ns(window['max_blackout_ns'])}: "
            f"{window['deliveries']} delivered, {window['drops']} dropped, "
            f"goodput {window['goodput_bytes']}B"
        )
    if args.out:
        write_inband(args.out, doc)
        print(f"\nwrote {args.out}")
    if args.trace:
        write_trace(args.trace, path_trace_document(doc, name=f"paths {args.topo}"))
        print(f"wrote {args.trace} -- load it at https://ui.perfetto.dev")
    return 0


def _table_load_chains(net: Network):
    """(epoch, [(switch, chain)]) for the final epoch's table loads."""
    rec = net.flight
    final = rec.last(category=CAT_EPOCH, name="table-loaded")
    if final is None:
        return None, []
    epoch = final.attrs.get("epoch")
    chains = []
    for event in rec.events(category=CAT_EPOCH, name="table-loaded", epoch=epoch):
        chains.append((event.component, rec.why(event)))
    return epoch, chains


def _cmd_export(args) -> int:
    net = _run_scenario(args.topo, args.cut, args.seed, capacity=args.capacity)
    out = args.out or f"{args.topo}.trace.json"
    doc = net.flight_trace()
    write_trace(out, doc)
    rec = net.flight
    flows = sum(1 for e in doc["traceEvents"] if e.get("ph") == "s")
    print(
        f"wrote {out}: {len(doc['traceEvents'])} trace events "
        f"({rec.total_recorded} recorded, {rec.total_dropped} dropped, "
        f"{flows} message flows) -- load it at https://ui.perfetto.dev"
    )
    epoch, chains = _table_load_chains(net)
    if epoch is not None:
        rooted = sum(
            1
            for _sw, chain in chains
            if any(e.category == CAT_PORT for e in chain)
        )
        print(
            f"epoch {epoch}: {len(chains)} table loads, "
            f"{rooted} causally rooted at a port-state transition"
        )
    return 0


def _cmd_why(args) -> int:
    net = _run_scenario(args.topo, args.cut, args.seed, capacity=args.capacity)
    epoch, chains = _table_load_chains(net)
    if epoch is None:
        print("no table-loaded events were recorded")
        return 1
    print(f"message wave of epoch {epoch} (first arrival per switch):")
    for entry in net.flight.wave(epoch):
        print(
            f"  {entry['t_ns'] / 1e6:>10.3f} ms  {entry['component']}"
            f"  ({entry['event']})"
        )
    for switch, chain in chains:
        print()
        print(f"why did {switch} load its table in epoch {epoch}?")
        print(render_chain(chain))
    return 0


def _cmd_profile(args) -> int:
    net = _run_scenario(
        args.topo,
        args.cut,
        args.seed,
        flight=args.trace is not None,
        capacity=args.capacity,
        profile=True,
    )
    profiler = net.profiler
    print(profiler.render())
    if args.trace:
        net.export_flight_trace(args.trace)
        print(f"wrote {args.trace}")
    if args.json:
        summary = profiler.summary()
        doc = bench_document(
            bench="obs-profile",
            title="Event-loop profiler",
            seed=args.seed,
            results=[
                bench_result(
                    name="hotspots",
                    title=f"Handler hotspots on {args.topo}",
                    headers=["handler", "events", "wall_ns", "mean_ns", "share"],
                    rows=[
                        [
                            h["handler"],
                            h["events"],
                            h["wall_ns"],
                            h["mean_ns"],
                            h["share"],
                        ]
                        for h in summary["hotspots"]
                    ],
                    notes=(
                        "wall-clock attribution per handler category; "
                        "events_per_sec is the ROADMAP throughput baseline"
                    ),
                    telemetry={
                        "events_per_sec": summary["events_per_sec"],
                        "events": summary["events"],
                        "run_wall_ns": summary["run_wall_ns"],
                        "handler_wall_ns": summary["handler_wall_ns"],
                        "sim_ns": net.sim.now,
                    },
                )
            ],
        )
        write_document(args.json, doc)
        print(f"wrote {args.json}")
    return 0


def _cmd_watch(args) -> int:
    if args.replay:
        ts = TimeSeries.load(args.replay)
        watch_replay(ts, fps=args.fps, width=args.width, step=args.step)
        return 0
    spec = resolve_topology(args.topo)
    net = Network(
        spec,
        seed=args.seed,
        timeseries=TimeSeriesConfig(interval_ns=int(args.interval * MS)),
        inband=args.inband,
    )
    if args.inband:
        # host traffic gives the congestion heat rows something to show
        _attach_traffic(net, period_ms=5.0, data_bytes=512)
    # cuts land mid-run as scheduled sim events, so the dashboard shows
    # the blackout and the subsequent epoch happen
    for a, b in args.cut:
        net.sim.at(int(args.cut_at * MS), net.cut_link, a, b)
    watch_live(
        net, duration_ns=int(args.duration * SEC), fps=args.fps, width=args.width
    )
    if args.out:
        net.export_timeseries(args.out)
        print(f"\nwrote {args.out}")
    return 0


def _cmd_regress(args) -> int:
    with open(args.current) as fh:
        current = json.load(fh)
    window = baseline_window(args.baseline, current.get("bench", ""))
    if args.tolerances:
        tolerance = Tolerance.load_overrides(
            args.tolerances, rel=args.rel, sigma=args.sigma
        )
    else:
        tolerance = Tolerance(rel=args.rel, sigma=args.sigma)
    verdict = compare(current, window, tolerance=tolerance, strict=args.strict)
    print(render_verdict(verdict))
    if args.out:
        write_regress(args.out, verdict)
        print(f"wrote {args.out}")
    return 0 if verdict["verdict"] == "ok" else 1


def _cmd_sweep(args) -> int:
    def progress(point) -> None:
        note = (
            f"skipped ({point.skip_reason})"
            if point.status == "skipped"
            else "ok"
        )
        print(f"  {point.name}: {note}", file=sys.stderr)

    doc = run_sweep(
        ladder=args.ladder,
        seed=args.seed,
        topologies=args.topo,
        progress=progress,
        traffic=args.traffic,
    )
    out = args.out or f"sweep-{args.ladder}.json"
    write_sweep(out, doc)
    print(render_sweep(doc))
    print(f"wrote {out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Flight-recorder tooling: trace export, causal "
        "queries, and the event-loop profiler.",
    )
    sub = parser.add_subparsers(dest="command")

    def add_scenario_args(p) -> None:
        p.add_argument(
            "--topo", default="ring-4", help="topology name (default ring-4)"
        )
        p.add_argument(
            "--cut",
            type=_parse_cut,
            action="append",
            default=[],
            metavar="A-B",
            help="cut the link between switches A and B (repeatable)",
        )
        p.add_argument("--seed", type=int, default=0, help="simulation seed")
        p.add_argument(
            "--capacity",
            type=int,
            default=65536,
            help="flight-ring capacity per component (default 65536)",
        )

    p_export = sub.add_parser("export", help="run a scenario, write the trace")
    add_scenario_args(p_export)
    p_export.add_argument(
        "--out", default=None, metavar="PATH", help="output path (default <topo>.trace.json)"
    )
    p_export.set_defaults(fn=_cmd_export)

    p_why = sub.add_parser("why", help="print causal chains behind table loads")
    add_scenario_args(p_why)
    p_why.set_defaults(fn=_cmd_why)

    p_profile = sub.add_parser("profile", help="profile the event loop")
    add_scenario_args(p_profile)
    p_profile.add_argument(
        "--json", default=None, metavar="PATH", help="write a repro.bench/1 document here"
    )
    p_profile.add_argument(
        "--trace", default=None, metavar="PATH", help="also record and write a flight trace"
    )
    p_profile.set_defaults(fn=_cmd_profile)

    p_watch = sub.add_parser(
        "watch", help="live sparkline dashboard (or artifact replay)"
    )
    add_scenario_args(p_watch)
    p_watch.add_argument(
        "--replay", default=None, metavar="PATH",
        help="replay a recorded repro.obs.timeseries/1 artifact instead "
             "of running a scenario",
    )
    p_watch.add_argument(
        "--duration", type=float, default=5.0, metavar="SEC",
        help="simulated seconds to run (default 5)",
    )
    p_watch.add_argument(
        "--cut-at", type=float, default=1000.0, metavar="MS",
        help="simulated time at which --cut links fail (default 1000 ms)",
    )
    p_watch.add_argument(
        "--interval", type=float, default=50.0, metavar="MS",
        help="sampling interval (default 50 ms)",
    )
    p_watch.add_argument(
        "--fps", type=float, default=10.0, help="frames per second (default 10)"
    )
    p_watch.add_argument(
        "--width", type=int, default=32, help="sparkline width (default 32)"
    )
    p_watch.add_argument(
        "--step", type=int, default=1, help="replay: ticks per frame (default 1)"
    )
    p_watch.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the recorded timeseries artifact",
    )
    p_watch.add_argument(
        "--inband", action="store_true",
        help="attach host traffic with in-band telemetry and show "
             "per-link congestion heat rows",
    )
    p_watch.set_defaults(fn=_cmd_watch)

    p_paths = sub.add_parser(
        "paths", help="in-band path telemetry: flows, path changes, SLO"
    )
    add_scenario_args(p_paths)
    p_paths.add_argument(
        "--duration", type=float, default=1.0, metavar="SEC",
        help="simulated seconds of traffic each side of the cut (default 1)",
    )
    p_paths.add_argument(
        "--period", type=float, default=5.0, metavar="MS",
        help="packet period per sender (default 5 ms)",
    )
    p_paths.add_argument(
        "--bytes", type=int, default=512,
        help="data bytes per packet (default 512)",
    )
    p_paths.add_argument(
        "--top", type=int, default=8,
        help="congested links to list (default 8)",
    )
    p_paths.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the repro.obs.inband/1 artifact here",
    )
    p_paths.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write hop records as a Perfetto flow-arrow trace here",
    )
    p_paths.set_defaults(fn=_cmd_paths)

    p_regress = sub.add_parser(
        "regress", help="gate a bench document against committed baselines"
    )
    p_regress.add_argument(
        "--current", required=True, metavar="PATH",
        help="the fresh repro.bench/1 document to judge",
    )
    p_regress.add_argument(
        "--baseline", required=True, metavar="PATH",
        help="baseline document, history .jsonl, or directory of either",
    )
    p_regress.add_argument(
        "--tolerances", default=None, metavar="PATH",
        help="JSON {fnmatch pattern: relative tolerance} overrides",
    )
    p_regress.add_argument(
        "--rel", type=float, default=0.25,
        help="default relative tolerance (default 0.25)",
    )
    p_regress.add_argument(
        "--sigma", type=float, default=4.0,
        help="stdev multiplier when repeat statistics exist (default 4)",
    )
    p_regress.add_argument(
        "--strict", action="store_true",
        help="also fail when a baseline metric is missing from the current run",
    )
    p_regress.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the repro.obs.regress/1 verdict here",
    )
    p_regress.set_defaults(fn=_cmd_regress)

    p_sweep = sub.add_parser(
        "sweep", help="run the scaling sweep across a topology ladder"
    )
    p_sweep.add_argument(
        "--ladder",
        default="smoke",
        choices=sorted(LADDERS),
        help="which rung set to climb (default smoke)",
    )
    p_sweep.add_argument(
        "--topo",
        action="append",
        default=None,
        metavar="NAME",
        help="explicit rung (repeatable; overrides --ladder's rung list)",
    )
    p_sweep.add_argument("--seed", type=int, default=0, help="sweep seed")
    p_sweep.add_argument(
        "--traffic", action="store_true",
        help="drive the fluid hotspot workload through every rung and "
             "report traffic_* SLO metrics",
    )
    p_sweep.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="artifact path (default sweep-<ladder>.json)",
    )
    p_sweep.set_defaults(fn=_cmd_sweep)

    # missing or unknown subcommand: list what exists instead of a bare
    # argparse error (shared with python -m repro.traffic)
    status = report_unknown_subcommand(
        parser,
        sub,
        argv,
        extra=["topologies (--topo):"]
        + [f"  {example:<14} {desc}" for example, desc in TOPOLOGY_FAMILIES],
    )
    if status is not None:
        return status
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
