"""CLI for the flight recorder and the event-loop profiler.

.. code-block:: console

    # run a scenario and export the Perfetto/Chrome trace
    python -m repro.obs export --topo ring-4 --cut 0-1

    # print the causal chain behind every switch's table load
    python -m repro.obs why --topo ring-4 --cut 0-1

    # the CI throughput baseline: hotspots + events_per_sec as repro.bench/1
    python -m repro.obs profile --topo torus-3x4 --cut 0-1 --json profile.json

Each subcommand runs the same scenario: build the topology, converge,
apply the requested link cuts, reconverge.  ``export`` writes a
``repro.obs.flight/1`` document loadable at https://ui.perfetto.dev;
``why`` answers section 6.7's question ("why did this epoch happen?")
from the recorded parent chain; ``profile`` measures the simulator
itself.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from repro.constants import SEC
from repro.network import Network
from repro.obs.export import bench_document, bench_result, write_document
from repro.obs.flight import CAT_EPOCH, CAT_PORT, render_chain
from repro.obs.perfetto import write_trace
from repro.topology.generators import resolve_topology


def _parse_cut(text: str) -> Tuple[int, int]:
    try:
        a, b = text.split("-", 1)
        return int(a), int(b)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected a cut like 0-1 (two switch indices), got {text!r}"
        ) from exc


def _run_scenario(
    topo: str,
    cuts: List[Tuple[int, int]],
    seed: int,
    flight: bool = True,
    capacity: int = 65536,
    profile: bool = False,
) -> Network:
    spec = resolve_topology(topo)
    net = Network(
        spec, seed=seed, flight=flight, flight_capacity=capacity, profile=profile
    )
    if not net.run_until_converged(timeout_ns=60 * SEC):
        print("warning: initial configuration did not converge", file=sys.stderr)
    for a, b in cuts:
        net.cut_link(a, b)
    if cuts and not net.run_until_converged(timeout_ns=60 * SEC):
        print("warning: post-cut reconfiguration did not converge", file=sys.stderr)
    return net


def _table_load_chains(net: Network):
    """(epoch, [(switch, chain)]) for the final epoch's table loads."""
    rec = net.flight
    final = rec.last(category=CAT_EPOCH, name="table-loaded")
    if final is None:
        return None, []
    epoch = final.attrs.get("epoch")
    chains = []
    for event in rec.events(category=CAT_EPOCH, name="table-loaded", epoch=epoch):
        chains.append((event.component, rec.why(event)))
    return epoch, chains


def _cmd_export(args) -> int:
    net = _run_scenario(args.topo, args.cut, args.seed, capacity=args.capacity)
    out = args.out or f"{args.topo}.trace.json"
    doc = net.flight_trace()
    write_trace(out, doc)
    rec = net.flight
    flows = sum(1 for e in doc["traceEvents"] if e.get("ph") == "s")
    print(
        f"wrote {out}: {len(doc['traceEvents'])} trace events "
        f"({rec.total_recorded} recorded, {rec.total_dropped} dropped, "
        f"{flows} message flows) -- load it at https://ui.perfetto.dev"
    )
    epoch, chains = _table_load_chains(net)
    if epoch is not None:
        rooted = sum(
            1
            for _sw, chain in chains
            if any(e.category == CAT_PORT for e in chain)
        )
        print(
            f"epoch {epoch}: {len(chains)} table loads, "
            f"{rooted} causally rooted at a port-state transition"
        )
    return 0


def _cmd_why(args) -> int:
    net = _run_scenario(args.topo, args.cut, args.seed, capacity=args.capacity)
    epoch, chains = _table_load_chains(net)
    if epoch is None:
        print("no table-loaded events were recorded")
        return 1
    print(f"message wave of epoch {epoch} (first arrival per switch):")
    for entry in net.flight.wave(epoch):
        print(
            f"  {entry['t_ns'] / 1e6:>10.3f} ms  {entry['component']}"
            f"  ({entry['event']})"
        )
    for switch, chain in chains:
        print()
        print(f"why did {switch} load its table in epoch {epoch}?")
        print(render_chain(chain))
    return 0


def _cmd_profile(args) -> int:
    net = _run_scenario(
        args.topo,
        args.cut,
        args.seed,
        flight=args.trace is not None,
        capacity=args.capacity,
        profile=True,
    )
    profiler = net.profiler
    print(profiler.render())
    if args.trace:
        net.export_flight_trace(args.trace)
        print(f"wrote {args.trace}")
    if args.json:
        summary = profiler.summary()
        doc = bench_document(
            bench="obs-profile",
            title="Event-loop profiler",
            seed=args.seed,
            results=[
                bench_result(
                    name="hotspots",
                    title=f"Handler hotspots on {args.topo}",
                    headers=["handler", "events", "wall_ns", "mean_ns", "share"],
                    rows=[
                        [
                            h["handler"],
                            h["events"],
                            h["wall_ns"],
                            h["mean_ns"],
                            h["share"],
                        ]
                        for h in summary["hotspots"]
                    ],
                    notes=(
                        "wall-clock attribution per handler category; "
                        "events_per_sec is the ROADMAP throughput baseline"
                    ),
                    telemetry={
                        "events_per_sec": summary["events_per_sec"],
                        "events": summary["events"],
                        "run_wall_ns": summary["run_wall_ns"],
                        "handler_wall_ns": summary["handler_wall_ns"],
                        "sim_ns": net.sim.now,
                    },
                )
            ],
        )
        write_document(args.json, doc)
        print(f"wrote {args.json}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Flight-recorder tooling: trace export, causal "
        "queries, and the event-loop profiler.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scenario_args(p) -> None:
        p.add_argument(
            "--topo", default="ring-4", help="topology name (default ring-4)"
        )
        p.add_argument(
            "--cut",
            type=_parse_cut,
            action="append",
            default=[],
            metavar="A-B",
            help="cut the link between switches A and B (repeatable)",
        )
        p.add_argument("--seed", type=int, default=0, help="simulation seed")
        p.add_argument(
            "--capacity",
            type=int,
            default=65536,
            help="flight-ring capacity per component (default 65536)",
        )

    p_export = sub.add_parser("export", help="run a scenario, write the trace")
    add_scenario_args(p_export)
    p_export.add_argument(
        "--out", default=None, metavar="PATH", help="output path (default <topo>.trace.json)"
    )
    p_export.set_defaults(fn=_cmd_export)

    p_why = sub.add_parser("why", help="print causal chains behind table loads")
    add_scenario_args(p_why)
    p_why.set_defaults(fn=_cmd_why)

    p_profile = sub.add_parser("profile", help="profile the event loop")
    add_scenario_args(p_profile)
    p_profile.add_argument(
        "--json", default=None, metavar="PATH", help="write a repro.bench/1 document here"
    )
    p_profile.add_argument(
        "--trace", default=None, metavar="PATH", help="also record and write a flight trace"
    )
    p_profile.set_defaults(fn=_cmd_profile)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
