"""In-band path telemetry: the data plane as its own sensor (§6.7, §4).

Every instrument before this one watched the *control* plane; the
paper's headline claim -- reconfiguration pauses are "brief" (§1, §6.7)
-- is a claim about what *user traffic* experiences.  This module turns
enabled data packets into probes, in the style of in-band network
telemetry (MRI-style per-hop INT): each forwarding decision appends one
bounded hop record to the packet

    (sim time, switch, ingress port, egress ports, FIFO depth)

where the FIFO depth comes from the mutation-free
:meth:`~repro.net.fifo.ReceiveFifo.peek_level`, so stamping never
perturbs the fluid model.  On delivery the host side folds the stack:

* :class:`PathCollector` -- per-flow path records, a path-change log
  that catches route flaps across reconfiguration epochs, and per-link
  congestion reports (depth samples + queue drops);
* :class:`SloTracker` -- delivery latency p50/p99 (exact, from bounded
  retained samples), drops by cause, and goodput, *windowed against*
  the :class:`~repro.obs.spans.ReconfigTracer` epoch spans -- "what did
  that blackout cost in-flight traffic?" as one number.

Discipline (mirrors the flight recorder and the sampler):

* **Null fast path.**  ``Simulator.inband`` is ``None`` by default and
  every stamp site in ``switch``/``linkunit``/``fifo``/``host`` is one
  attribute load plus a ``None`` test (``RS305`` enforces this); a
  packet's ``hops`` field stays ``None`` -- nothing is allocated -- and
  runs are byte-identical with the module out of play.
* **Observational purity.**  Hop records only *read* component state;
  no stamp changes routing, rates, or event order.
* **Bounded everything.**  Hop stacks, flow tables, change logs,
  latency-sample rings, and the recent-stack ring are all capped, with
  drop counters where eviction happens.

The recorded state exports as a ``repro.obs.inband/1`` JSON artifact
(structural validator included) that the ``paths`` CLI, the doctor's
``path_report``, the watch dashboard's congestion rows, and the
Perfetto flow-arrow export all consume.
"""

from __future__ import annotations

import json
import math
import os
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

#: bump the suffix when the artifact layout changes incompatibly
INBAND_SCHEMA = "repro.obs.inband/1"

#: one hop of a packet's record stack, as carried on the packet:
#: (t_ns, switch, in_port, out_ports, fifo_depth_bytes)
HopRecord = Tuple[int, str, int, Tuple[int, ...], float]

#: a path identity: the hop stack minus time and depth -- what "route"
#: means for change detection
PathKey = Tuple[Tuple[str, int, Tuple[int, ...]], ...]


@dataclass
class InbandConfig:
    """Everything that determines the in-band layer, and nothing else."""

    #: hop records carried per packet; further hops count as truncated
    max_hops: int = 32
    #: distinct (src uid, dest uid) flows tracked; more are counted, not kept
    max_flows: int = 1024
    #: path changes retained per flow (older ones evict, counted)
    path_history: int = 16
    #: delivery latency samples retained for exact quantiles (global ring)
    latency_samples: int = 65536
    #: latency samples retained per flow
    flow_latency_samples: int = 4096
    #: full hop stacks retained for the Perfetto flow-arrow export
    recent_stacks: int = 128

    @classmethod
    def coerce(cls, value: "bool | int | InbandConfig | None"
               ) -> "Optional[InbandConfig]":
        """Normalize ``Network(inband=...)``: False/None -> off,
        True -> defaults, int -> per-packet hop bound."""
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, int):
            return cls(max_hops=value)
        return value


def path_of(hops: Optional[List[HopRecord]]) -> PathKey:
    """The route identity of a hop stack: switch / ingress / egress per
    hop, with the volatile fields (time, depth) stripped."""
    if not hops:
        return ()
    return tuple((sw, in_port, tuple(outs)) for _t, sw, in_port, outs, _d in hops)


def exact_quantile(values: List[float], q: float) -> Optional[float]:
    """Nearest-rank quantile over the *retained* samples -- exact, not
    bucket-interpolated like ``Histogram.quantile``."""
    if not values:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile out of range: {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class FlowRecord:
    """Everything retained about one (src uid, dest uid) flow."""

    __slots__ = ("src_uid", "dest_uid", "deliveries", "bytes", "paths_seen",
                 "current_path", "changes", "changes_dropped", "latencies")

    def __init__(self, src_uid: int, dest_uid: int,
                 config: InbandConfig) -> None:
        self.src_uid = src_uid
        self.dest_uid = dest_uid
        self.deliveries = 0
        self.bytes = 0
        #: distinct route switches observed (1 = the flow never moved)
        self.paths_seen = 0
        self.current_path: Optional[PathKey] = None
        #: (t_ns, epoch, old_path, new_path), newest-last, bounded
        self.changes: Deque[Tuple[int, Optional[int], PathKey, PathKey]] = (
            deque(maxlen=config.path_history)
        )
        self.changes_dropped = 0
        self.latencies: Deque[int] = deque(maxlen=config.flow_latency_samples)


class PathCollector:
    """Folds delivered hop stacks into per-flow path records, the
    path-change log, and per-link congestion reports."""

    def __init__(self, config: InbandConfig) -> None:
        self.config = config
        self.flows: Dict[Tuple[int, int], FlowRecord] = {}
        #: deliveries whose flow could not be tracked (table full)
        self.dropped_flows = 0
        #: deliveries without both uids (control-plane client frames)
        self.unkeyed_deliveries = 0
        #: "sw0.p3" -> [depth samples, depth sum, depth max, queue drops]
        self.links: Dict[str, List[float]] = {}
        #: newest delivered hop stacks, for the Perfetto export
        self.recent: Deque[Dict[str, Any]] = deque(maxlen=config.recent_stacks)

    # -- feeds ------------------------------------------------------------------

    def note_hop(self, switch: str, in_port: int, depth: float) -> None:
        """One forwarding decision's congestion sample (stamp-time feed,
        so congestion is seen even for packets that never deliver)."""
        entry = self.links.setdefault(f"{switch}.p{in_port}", [0.0, 0.0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += depth
        if depth > entry[2]:
            entry[2] = depth

    def note_queue_drop(self, component: str) -> None:
        """A receive FIFO overflowed: one queue-drop congestion report."""
        entry = self.links.setdefault(component, [0.0, 0.0, 0.0, 0.0])
        entry[3] += 1

    def fold(self, packet, host: str, t_ns: int,
             epoch: Optional[int]) -> None:
        """A packet delivered: fold its hop stack into the flow table."""
        hops = packet.hops
        self.recent.append({
            "packet_id": packet.packet_id,
            "src_uid": None if packet.src_uid is None else packet.src_uid.value,
            "dest_uid": None if packet.dest_uid is None else packet.dest_uid.value,
            "host": host,
            "created_ns": packet.created_at,
            "delivered_ns": t_ns,
            "hops": list(hops) if hops else [],
        })
        if packet.src_uid is None or packet.dest_uid is None:
            self.unkeyed_deliveries += 1
            return
        key = (packet.src_uid.value, packet.dest_uid.value)
        record = self.flows.get(key)
        if record is None:
            if len(self.flows) >= self.config.max_flows:
                self.dropped_flows += 1
                return
            record = FlowRecord(key[0], key[1], self.config)
            self.flows[key] = record
        record.deliveries += 1
        record.bytes += packet.data_bytes
        if packet.created_at:
            record.latencies.append(t_ns - packet.created_at)
        path = path_of(hops)
        if record.current_path is None:
            record.current_path = path
            record.paths_seen = 1
        elif path != record.current_path:
            if len(record.changes) == record.changes.maxlen:
                record.changes_dropped += 1
            record.changes.append((t_ns, epoch, record.current_path, path))
            record.current_path = path
            record.paths_seen += 1

    # -- queries ----------------------------------------------------------------

    def path_changes(self) -> List[Tuple[int, Optional[int],
                                         Tuple[int, int], PathKey, PathKey]]:
        """Every retained path change, time-ordered across flows."""
        out = []
        for key, record in self.flows.items():
            for t_ns, epoch, old, new in record.changes:
                out.append((t_ns, epoch, key, old, new))
        return sorted(out)

    def top_congested(self, limit: int = 8) -> List[Tuple[str, Dict[str, float]]]:
        """Links ranked by mean FIFO depth at forwarding time."""
        rows = []
        for link, (samples, total, peak, drops) in self.links.items():
            mean = total / samples if samples else 0.0
            rows.append((link, {"samples": samples, "mean_depth": mean,
                                "max_depth": peak, "drops": drops}))
        rows.sort(key=lambda item: (-item[1]["mean_depth"], item[0]))
        return rows[:limit]


class SloTracker:
    """Delivery-SLO accounting: exact latency quantiles, drops by cause,
    and goodput, windowed against reconfiguration epoch spans."""

    def __init__(self, config: InbandConfig) -> None:
        self.config = config
        self.deliveries = 0
        self.delivered_bytes = 0
        #: (t_ns, latency_ns or None, data bytes), newest-last, bounded
        self.samples: Deque[Tuple[int, Optional[int], int]] = (
            deque(maxlen=config.latency_samples)
        )
        self.samples_total = 0
        self.drops: Dict[str, int] = {}
        #: (t_ns, cause), bounded like the sample ring
        self.drop_events: Deque[Tuple[int, str]] = (
            deque(maxlen=config.latency_samples)
        )

    def delivery(self, t_ns: int, latency_ns: Optional[int],
                 data_bytes: int) -> None:
        self.deliveries += 1
        self.delivered_bytes += data_bytes
        self.samples.append((t_ns, latency_ns, data_bytes))
        self.samples_total += 1

    def drop(self, t_ns: int, cause: str) -> None:
        self.drops[cause] = self.drops.get(cause, 0) + 1
        self.drop_events.append((t_ns, cause))

    @property
    def samples_dropped(self) -> int:
        return max(0, self.samples_total - len(self.samples))

    def latencies(self) -> List[int]:
        return [lat for _t, lat, _b in self.samples if lat is not None]

    def quantiles(self) -> Tuple[Optional[float], Optional[float]]:
        lats = [float(v) for v in self.latencies()]
        return exact_quantile(lats, 0.5), exact_quantile(lats, 0.99)

    def windows(self, tracer) -> List[Dict[str, Any]]:
        """Per-epoch SLO windows: for each reconfiguration span, what the
        retained samples say traffic experienced inside it."""
        if tracer is None:
            return []
        out = []
        for span in tracer.span_summary():
            start = span["start_ns"]
            end = span["end_ns"]
            horizon = end if end is not None else float("inf")
            lats: List[float] = []
            in_deliveries = 0
            in_bytes = 0
            for t_ns, lat, data_bytes in self.samples:
                if start <= t_ns <= horizon:
                    in_deliveries += 1
                    in_bytes += data_bytes
                    if lat is not None:
                        lats.append(float(lat))
            in_drops = sum(
                1 for t_ns, _cause in self.drop_events if start <= t_ns <= horizon
            )
            out.append({
                "epoch": span["key"],
                "start_ns": start,
                "end_ns": end,
                "max_blackout_ns": span.get("max_blackout_ns"),
                "deliveries": in_deliveries,
                "drops": in_drops,
                "goodput_bytes": in_bytes,
                "p50_ns": exact_quantile(lats, 0.5),
                "p99_ns": exact_quantile(lats, 0.99),
            })
        return out


class InbandTelemetry:
    """The ``sim.inband`` object: hot-path stamp sink plus host-side
    folding.  Attach with ``sim.inband = InbandTelemetry(sim, ...)`` (or
    build the network with ``Network(inband=...)``, which does both).
    Detached, every stamp site costs one attribute load + None test."""

    def __init__(self, sim, config: Optional[InbandConfig] = None,
                 tracer=None) -> None:
        self.sim = sim
        self.config = config or InbandConfig()
        self.tracer = tracer
        self.collector = PathCollector(self.config)
        self.slo = SloTracker(self.config)
        self.hops_recorded = 0
        self.hops_truncated = 0
        self._current_epoch: Optional[int] = None
        if tracer is not None:
            tracer.add_listener(self._span_event)

    def _span_event(self, _t_ns: int, _component: str, _event: str,
                    attrs: Dict[str, Any]) -> None:
        epoch = attrs.get("epoch")
        if epoch is not None and (
            self._current_epoch is None or epoch > self._current_epoch
        ):
            self._current_epoch = epoch

    # -- hot-path stamps (called behind the RS305 None-test guard) ---------------

    def record_hop(self, packet, switch: str, in_port: int,
                   out_ports: Tuple[int, ...], depth: float) -> None:
        """One forwarding grant: append a hop record to the packet."""
        from repro.net.packet import PacketType

        if packet.ptype is not PacketType.CLIENT:
            return
        self.collector.note_hop(switch, in_port, depth)
        hops = packet.hops
        if hops is None:
            hops = []
            packet.hops = hops
        if len(hops) >= self.config.max_hops:
            self.hops_truncated += 1
            return
        hops.append((self.sim.now, switch, in_port, tuple(out_ports), depth))
        self.hops_recorded += 1

    def record_drop(self, packet, component: str, cause: str) -> None:
        """A terminal, delivery-affecting drop (table discard, CRC,
        misdirection, a full host receive buffer)."""
        from repro.net.packet import PacketType

        if packet is None or packet.ptype is not PacketType.CLIENT:
            return
        self.slo.drop(self.sim.now, cause)

    def record_queue_drop(self, packet, fifo_name: str) -> None:
        """A receive-FIFO overflow: a per-link congestion report.  The
        corrupted victim still travels and is counted as a CRC drop on
        delivery, so this feeds the link table, not the SLO drop total."""
        component = fifo_name[:-5] if fifo_name.endswith(".fifo") else fifo_name
        self.collector.note_queue_drop(component)

    def record_delivery(self, packet, host: str) -> None:
        """A client packet accepted by a host controller."""
        from repro.net.packet import PacketType

        if packet.ptype is not PacketType.CLIENT:
            return
        now = self.sim.now
        latency = (now - packet.created_at) if packet.created_at else None
        self.slo.delivery(now, latency, packet.data_bytes)
        self.collector.fold(packet, host, now, self._current_epoch)

    # -- export -----------------------------------------------------------------

    def document(self, name: str = "") -> Dict[str, Any]:
        """The ``repro.obs.inband/1`` artifact as a dict."""
        flows = []
        for (src, dest), record in sorted(self.collector.flows.items()):
            lats = [float(v) for v in record.latencies]
            flows.append({
                "src_uid": src,
                "dest_uid": dest,
                "deliveries": record.deliveries,
                "bytes": record.bytes,
                "paths_seen": record.paths_seen,
                "path": _jsonable_path(record.current_path or ()),
                "changes": [
                    {
                        "t_ns": t_ns,
                        "epoch": epoch,
                        "from": _jsonable_path(old),
                        "to": _jsonable_path(new),
                    }
                    for t_ns, epoch, old, new in record.changes
                ],
                "changes_dropped": record.changes_dropped,
                "latency_samples": len(lats),
                "latency_p50_ns": exact_quantile(lats, 0.5),
                "latency_p99_ns": exact_quantile(lats, 0.99),
            })
        links = []
        for link, (samples, total, peak, drops) in sorted(
            self.collector.links.items()
        ):
            links.append({
                "link": link,
                "samples": int(samples),
                "mean_depth": (total / samples) if samples else 0.0,
                "max_depth": peak,
                "drops": int(drops),
            })
        p50, p99 = self.slo.quantiles()
        return {
            "schema": INBAND_SCHEMA,
            "name": name,
            "max_hops": self.config.max_hops,
            "hops_recorded": self.hops_recorded,
            "hops_truncated": self.hops_truncated,
            "unkeyed_deliveries": self.collector.unkeyed_deliveries,
            "dropped_flows": self.collector.dropped_flows,
            "flows": flows,
            "links": links,
            "slo": {
                "deliveries": self.slo.deliveries,
                "delivered_bytes": self.slo.delivered_bytes,
                "p50_ns": p50,
                "p99_ns": p99,
                "samples_retained": len(self.slo.samples),
                "samples_dropped": self.slo.samples_dropped,
                "drops": dict(sorted(self.slo.drops.items())),
                "windows": self.slo.windows(self.tracer),
            },
            "recent": [
                {
                    **stack,
                    "hops": [
                        [t, sw, in_port, list(outs), depth]
                        for t, sw, in_port, outs, depth in stack["hops"]
                    ],
                }
                for stack in self.collector.recent
            ],
        }


def _jsonable_path(path: PathKey) -> List[List[Any]]:
    return [[sw, in_port, list(outs)] for sw, in_port, outs in path]


# -- the artifact ---------------------------------------------------------------------


class InbandSchemaError(ValueError):
    """Raised by :func:`validate_inband` on a malformed document."""


def _fail(path: str, why: str) -> None:
    raise InbandSchemaError(f"{path}: {why}")


def _check_int(value: Any, path: str, minimum: int = 0) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        _fail(path, f"expected int >= {minimum}")


def _check_number_or_null(value: Any, path: str) -> None:
    if value is not None and (
        not isinstance(value, (int, float)) or isinstance(value, bool)
    ):
        _fail(path, "expected number or null")


def _check_path(value: Any, path: str) -> None:
    if not isinstance(value, list):
        _fail(path, "expected array of hops")
    for j, hop in enumerate(value):
        if not (isinstance(hop, list) and len(hop) == 3):
            _fail(f"{path}[{j}]", "expected [switch, in_port, out_ports]")
        if not isinstance(hop[0], str) or not hop[0]:
            _fail(f"{path}[{j}][0]", "expected non-empty switch name")
        _check_int(hop[1], f"{path}[{j}][1]")
        if not isinstance(hop[2], list) or not all(
            isinstance(p, int) and not isinstance(p, bool) for p in hop[2]
        ):
            _fail(f"{path}[{j}][2]", "expected array of port ints")


def validate_inband(doc: Any) -> Dict[str, Any]:
    """Structurally validate an inband document; returns it on success."""
    if not isinstance(doc, dict):
        _fail("$", f"expected object, got {type(doc).__name__}")
    if doc.get("schema") != INBAND_SCHEMA:
        _fail("$.schema", f"expected {INBAND_SCHEMA!r}, got {doc.get('schema')!r}")
    if not isinstance(doc.get("name"), str):
        _fail("$.name", "expected string")
    for field in ("max_hops", "hops_recorded", "hops_truncated",
                  "unkeyed_deliveries", "dropped_flows"):
        _check_int(doc.get(field), f"$.{field}")
    if doc["max_hops"] <= 0:
        _fail("$.max_hops", "expected positive int")
    flows = doc.get("flows")
    if not isinstance(flows, list):
        _fail("$.flows", "expected array")
    for i, flow in enumerate(flows):
        path = f"$.flows[{i}]"
        if not isinstance(flow, dict):
            _fail(path, "expected object")
        for field in ("src_uid", "dest_uid", "deliveries", "bytes",
                      "paths_seen", "changes_dropped", "latency_samples"):
            _check_int(flow.get(field), f"{path}.{field}")
        _check_path(flow.get("path"), f"{path}.path")
        _check_number_or_null(flow.get("latency_p50_ns"), f"{path}.latency_p50_ns")
        _check_number_or_null(flow.get("latency_p99_ns"), f"{path}.latency_p99_ns")
        changes = flow.get("changes")
        if not isinstance(changes, list):
            _fail(f"{path}.changes", "expected array")
        for j, change in enumerate(changes):
            cpath = f"{path}.changes[{j}]"
            if not isinstance(change, dict):
                _fail(cpath, "expected object")
            _check_int(change.get("t_ns"), f"{cpath}.t_ns")
            epoch = change.get("epoch")
            if epoch is not None:
                _check_int(epoch, f"{cpath}.epoch")
            _check_path(change.get("from"), f"{cpath}.from")
            _check_path(change.get("to"), f"{cpath}.to")
    links = doc.get("links")
    if not isinstance(links, list):
        _fail("$.links", "expected array")
    for i, link in enumerate(links):
        path = f"$.links[{i}]"
        if not isinstance(link, dict):
            _fail(path, "expected object")
        if not isinstance(link.get("link"), str) or not link["link"]:
            _fail(f"{path}.link", "expected non-empty string")
        _check_int(link.get("samples"), f"{path}.samples")
        _check_int(link.get("drops"), f"{path}.drops")
        for field in ("mean_depth", "max_depth"):
            value = link.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                _fail(f"{path}.{field}", "expected number")
    slo = doc.get("slo")
    if not isinstance(slo, dict):
        _fail("$.slo", "expected object")
    for field in ("deliveries", "delivered_bytes", "samples_retained",
                  "samples_dropped"):
        _check_int(slo.get(field), f"$.slo.{field}")
    _check_number_or_null(slo.get("p50_ns"), "$.slo.p50_ns")
    _check_number_or_null(slo.get("p99_ns"), "$.slo.p99_ns")
    drops = slo.get("drops")
    if not isinstance(drops, dict):
        _fail("$.slo.drops", "expected object")
    for cause, count in drops.items():
        if not isinstance(cause, str):
            _fail("$.slo.drops", "expected string causes")
        _check_int(count, f"$.slo.drops.{cause}")
    windows = slo.get("windows")
    if not isinstance(windows, list):
        _fail("$.slo.windows", "expected array")
    for i, window in enumerate(windows):
        path = f"$.slo.windows[{i}]"
        if not isinstance(window, dict):
            _fail(path, "expected object")
        _check_int(window.get("epoch"), f"{path}.epoch")
        _check_int(window.get("start_ns"), f"{path}.start_ns")
        end = window.get("end_ns")
        if end is not None:
            _check_int(end, f"{path}.end_ns")
        for field in ("deliveries", "drops", "goodput_bytes"):
            _check_int(window.get(field), f"{path}.{field}")
        for field in ("max_blackout_ns", "p50_ns", "p99_ns"):
            _check_number_or_null(window.get(field), f"{path}.{field}")
    recent = doc.get("recent")
    if not isinstance(recent, list):
        _fail("$.recent", "expected array")
    for i, stack in enumerate(recent):
        path = f"$.recent[{i}]"
        if not isinstance(stack, dict):
            _fail(path, "expected object")
        _check_int(stack.get("packet_id"), f"{path}.packet_id", minimum=1)
        for field in ("src_uid", "dest_uid"):
            value = stack.get(field)
            if value is not None:
                _check_int(value, f"{path}.{field}")
        if not isinstance(stack.get("host"), str):
            _fail(f"{path}.host", "expected string")
        _check_int(stack.get("created_ns"), f"{path}.created_ns")
        _check_int(stack.get("delivered_ns"), f"{path}.delivered_ns")
        hops = stack.get("hops")
        if not isinstance(hops, list):
            _fail(f"{path}.hops", "expected array")
        for j, hop in enumerate(hops):
            hpath = f"{path}.hops[{j}]"
            if not (isinstance(hop, list) and len(hop) == 5):
                _fail(hpath, "expected [t_ns, switch, in_port, out_ports, depth]")
            _check_int(hop[0], f"{hpath}[0]")
            if not isinstance(hop[1], str) or not hop[1]:
                _fail(f"{hpath}[1]", "expected non-empty switch name")
            _check_int(hop[2], f"{hpath}[2]")
            if not isinstance(hop[3], list):
                _fail(f"{hpath}[3]", "expected array of port ints")
            if not isinstance(hop[4], (int, float)) or isinstance(hop[4], bool):
                _fail(f"{hpath}[4]", "expected number")
    return doc


def write_inband(path: str, doc: Dict[str, Any]) -> None:
    """Validate and write an inband artifact as JSON."""
    validate_inband(doc)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")


def read_inband(path: str) -> Dict[str, Any]:
    """Load and validate an inband artifact from disk."""
    with open(path) as fh:
        return validate_inband(json.load(fh))
