"""The event-loop profiler: wall-clock attribution per handler category.

The ROADMAP promises "as fast as the hardware allows", and until now the
``BENCH_*`` trajectory had no throughput number to hold that promise to.
:class:`EventLoopProfiler` attaches to a :class:`~repro.sim.engine.
Simulator` (``sim.profiler = profiler``) and, for every dispatched event,
accounts the handler's wall-clock time and count under its qualified
name -- ``Autopilot._process``, ``TaskScheduler._start_task``,
``Transmitter._end`` and friends -- which is exactly the granularity an
optimization pass works at.

Output is a hotspots table (sorted by total wall time) plus the headline
``events_per_sec`` figure: simulation events dispatched per wall-clock
second of ``run()``.  ``python -m repro.obs profile`` wraps this in a
``repro.bench/1`` document so CI tracks the number per commit, and
``analysis.doctor`` renders the same summary for operators.

Profiling is observational only: it never changes what the simulation
does, just how long the loop takes (the two ``perf_counter_ns`` calls
per event cost roughly 100 ns).  Like the flight recorder, a detached
profiler (``sim.profiler is None``, the default) costs one attribute
load and a ``None`` test per dispatched event.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Any, Dict, List, Optional


class HandlerStats:
    """Accumulated cost of one handler category."""

    __slots__ = ("category", "count", "wall_ns")

    def __init__(self, category: str) -> None:
        self.category = category
        self.count = 0
        self.wall_ns = 0

    @property
    def mean_ns(self) -> float:
        return self.wall_ns / self.count if self.count else 0.0


class EventLoopProfiler:
    """Per-handler wall-clock and event-count accounting."""

    def __init__(self) -> None:
        self._stats: Dict[str, HandlerStats] = {}
        #: callable -> HandlerStats memo so the dispatch loop resolves a
        #: handler's category once (``__qualname__`` extraction on a bound
        #: method is far more expensive than an identity dict hit)
        self._by_func: Dict[Any, HandlerStats] = {}
        #: events dispatched while attached
        self.events = 0
        #: wall time spent inside handlers
        self.handler_wall_ns = 0
        #: wall time spent inside Simulator.run (handlers + loop overhead)
        self.run_wall_ns = 0
        self._run_started: Optional[int] = None

    # -- hooks called by the simulator -------------------------------------------------

    def begin_run(self) -> None:
        self._run_started = perf_counter_ns()

    def end_run(self) -> None:
        if self._run_started is not None:
            self.run_wall_ns += perf_counter_ns() - self._run_started
            self._run_started = None

    def account(self, category: str, wall_ns: int) -> None:
        stats = self._stats.get(category)
        if stats is None:
            stats = self._stats[category] = HandlerStats(category)
        stats.count += 1
        stats.wall_ns += wall_ns
        self.events += 1
        self.handler_wall_ns += wall_ns

    def account_call(self, fn: Any, wall_ns: int) -> None:
        """Account one dispatched handler by its callable (the hot path).

        Categories are identical to :meth:`account` with the handler's
        ``__qualname__`` -- bound methods of the same function share one
        entry via ``__func__`` -- but the string work happens once per
        callable, not once per event.
        """
        key = getattr(fn, "__func__", fn)
        stats = self._by_func.get(key)
        if stats is None:
            category = getattr(fn, "__qualname__", None) or str(fn)
            stats = self._stats.get(category)
            if stats is None:
                stats = self._stats[category] = HandlerStats(category)
            self._by_func[key] = stats
        stats.count += 1
        stats.wall_ns += wall_ns
        self.events += 1
        self.handler_wall_ns += wall_ns

    # -- results -----------------------------------------------------------------------

    def events_per_sec(self) -> float:
        """Simulation events dispatched per wall-clock second of run()."""
        if self.run_wall_ns <= 0:
            return 0.0
        return self.events / (self.run_wall_ns / 1e9)

    def hotspots(self, limit: Optional[int] = None) -> List[HandlerStats]:
        """Handler categories by total wall time, hottest first."""
        ranked = sorted(
            self._stats.values(), key=lambda s: (-s.wall_ns, s.category)
        )
        return ranked if limit is None else ranked[:limit]

    def summary(self, limit: int = 20) -> Dict[str, Any]:
        """JSON-ready profile: headline figures plus the hotspots table."""
        total = self.handler_wall_ns or 1
        return {
            "events": self.events,
            "run_wall_ns": self.run_wall_ns,
            "handler_wall_ns": self.handler_wall_ns,
            "events_per_sec": round(self.events_per_sec(), 1),
            "hotspots": [
                {
                    "handler": s.category,
                    "events": s.count,
                    "wall_ns": s.wall_ns,
                    "mean_ns": round(s.mean_ns, 1),
                    "share": round(s.wall_ns / total, 4),
                }
                for s in self.hotspots(limit)
            ],
        }

    def render(self, limit: int = 15) -> str:
        """The hotspots table as text, for terminals and the doctor."""
        lines = [
            f"event-loop profile: {self.events} events in "
            f"{self.run_wall_ns / 1e9:.3f}s wall "
            f"({self.events_per_sec():,.0f} events/sec)"
        ]
        lines.append(
            f"  {'handler':<44} {'events':>9} {'wall ms':>9} "
            f"{'mean us':>9} {'share':>6}"
        )
        total = self.handler_wall_ns or 1
        for s in self.hotspots(limit):
            lines.append(
                f"  {s.category:<44} {s.count:>9} {s.wall_ns / 1e6:>9.2f} "
                f"{s.mean_ns / 1e3:>9.2f} {s.wall_ns / total:>6.1%}"
            )
        return "\n".join(lines)
