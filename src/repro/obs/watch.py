"""The live watch dashboard: sampler rings as terminal sparklines.

``python -m repro.obs watch`` is the operator's view the paper describes
around §6.7 -- "is the net reconfiguring *right now*, and which switches
are dark?" -- rendered from the time-series sampler with nothing but
ANSI escapes:

* one row per switch: good-port count (current + sparkline), FIFO
  high-water sparkline, epoch number, and an ``ok`` / ``DARK`` flag from
  the blackout collector;
* a tail of recent reconfiguration span events (the sampler's mark ring);
* **live** mode builds a scenario and races the simulator against the
  wall clock, redrawing every frame; **replay** mode steps through a
  recorded ``repro.obs.timeseries/1`` artifact tick by tick.

Rendering is split from I/O: :func:`render_frame` is a pure function of
a :class:`~repro.obs.timeseries.TimeSeries` view, so tests (and the
doctor's report) exercise the exact pixels the dashboard shows without a
terminal in the loop.
"""

from __future__ import annotations

import re
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, TextIO

from repro.obs.timeseries import SeriesData, TimeSeries

#: nine intensity levels; index 0 (a space) is "zero", None renders as ``·``
SPARK_CHARS = " ▁▂▃▄▅▆▇█"
GAP_CHAR = "·"

#: the PortState value a fully configured trunk settles in
GOOD_STATE = "s.switch.good"

ANSI_HOME_CLEAR = "\x1b[H\x1b[2J"


def sparkline(
    values: Sequence[Optional[float]],
    width: int = 32,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """The last ``width`` samples as one character each.

    Scale is [lo, hi] (defaulting to the window's own min/max, with the
    floor pulled down to 0 for non-negative data so "3 of 4 ports good"
    does not render as a full-height bar).  ``None`` samples -- a crashed
    switch, a not-yet-created series -- render as ``·``.
    """
    window = list(values)[-width:] if width > 0 else list(values)
    if not window:
        return ""
    present = [v for v in window if v is not None]
    if not present:
        return GAP_CHAR * len(window)
    wlo = min(present) if lo is None else lo
    whi = max(present) if hi is None else hi
    if wlo > 0 and lo is None:
        wlo = 0.0
    span = whi - wlo
    out = []
    for v in window:
        if v is None:
            out.append(GAP_CHAR)
        elif span <= 0:
            out.append(SPARK_CHARS[-1] if v > 0 else SPARK_CHARS[0])
        else:
            idx = int((v - wlo) / span * (len(SPARK_CHARS) - 1))
            out.append(SPARK_CHARS[max(0, min(idx, len(SPARK_CHARS) - 1))])
    return "".join(out)


def _natural(name: str) -> List[Any]:
    return [int(tok) if tok.isdigit() else tok for tok in re.split(r"(\d+)", name)]


def _rowwise_max(series: List[SeriesData]) -> List[Optional[float]]:
    """Per-tick max across several tick-aligned series (None where every
    series has a gap) -- e.g. the worst FIFO across a switch's ports."""
    if not series:
        return []
    out: List[Optional[float]] = []
    for i in range(len(series[0])):
        best: Optional[float] = None
        for s in series:
            v = s.values[i]
            if v is not None and (best is None or v > best):
                best = v
        out.append(best)
    return out


def switch_names(ts: TimeSeries) -> List[str]:
    """Every switch the sampler recorded, in natural order."""
    names = {s.labels.get("switch") for s in ts.select("epoch")}
    return sorted((n for n in names if n), key=_natural)


def fmt_t(t_ns: int) -> str:
    return f"+{t_ns / 1e9:.3f}s"


def congestion_rows(
    inband_doc: Dict[str, Any],
    width: int = 32,
    top: int = 6,
) -> List[str]:
    """Per-link congestion heat rows from a ``repro.obs.inband/1`` doc:
    the hottest links by mean FIFO depth at forwarding time, each with a
    heat bar scaled against the hottest link in the document."""
    links = sorted(
        inband_doc.get("links", []),
        key=lambda entry: (-entry["mean_depth"], entry["link"]),
    )[:top]
    if not links:
        return []
    hottest = max(entry["mean_depth"] for entry in links) or 1.0
    label_w = max(len(entry["link"]) for entry in links)
    rows = ["link congestion (in-band):"]
    for entry in links:
        filled = int(round(entry["mean_depth"] / hottest * width))
        bar = SPARK_CHARS[-1] * filled + SPARK_CHARS[1] * (width - filled)
        drops = f"  drops {int(entry['drops'])}" if entry["drops"] else ""
        rows.append(
            f"  {entry['link']:<{label_w}} |{bar}| "
            f"mean {entry['mean_depth']:.0f}B max {entry['max_depth']:.0f}B"
            f"{drops}"
        )
    return rows


def _rate_window(counter: SeriesData) -> List[Optional[float]]:
    """Per-tick deltas of a cumulative counter series (rate shape)."""
    out: List[Optional[float]] = []
    prev: Optional[float] = None
    for v in counter.values:
        if v is None or prev is None:
            out.append(None if v is None else 0.0)
        else:
            out.append(max(0.0, v - prev))
        if v is not None:
            prev = v
    return out


def traffic_rows(ts: TimeSeries, width: int = 32) -> List[str]:
    """Workload SLO rows from the traffic engine's collectors: active /
    unrouted flow counts, per-tick delivered-byte rate, and the
    cumulative blackout cost.  Empty when no traffic engine sampled."""
    active = ts.series("traffic_active_flows")
    if active is None:
        return []
    unrouted = ts.series("traffic_unrouted_flows")
    completed = ts.series("traffic_completed_flows")
    delivered = ts.series("traffic_delivered_bytes")
    blackout = ts.series("traffic_blackout_cost_bytes")
    rows = ["traffic SLO:"]
    last_active = active.last() or 0
    last_unrouted = (unrouted.last() or 0) if unrouted else 0
    last_completed = (completed.last() or 0) if completed else 0
    rows.append(
        f"  flows  active {int(last_active):>4} "
        f"(unrouted {int(last_unrouted)}) "
        f"done {int(last_completed):>4} |{sparkline(active.values, width)}|"
    )
    if delivered is not None:
        rate = _rate_window(delivered)
        tail = next((v for v in reversed(rate) if v is not None), 0.0)
        per_sec = tail / (ts.interval_ns / 1e9) if ts.interval_ns else 0.0
        rows.append(
            f"  goodput {per_sec / 1024:>9.1f} KiB/s       "
            f"|{sparkline(rate, width)}|"
        )
    if blackout is not None:
        cost = blackout.last() or 0.0
        rows.append(
            f"  blackout cost {cost / 1024:>8.1f} KiB    "
            f"|{sparkline(_rate_window(blackout), width)}|"
        )
    return rows


def render_frame(
    ts: TimeSeries,
    now_ns: Optional[int] = None,
    width: int = 32,
    mark_tail: int = 6,
    title: str = "",
    inband_doc: Optional[Dict[str, Any]] = None,
) -> str:
    """One dashboard frame as plain text (no escapes, no I/O)."""
    ticks = ts.ticks
    now = now_ns if now_ns is not None else (ticks[-1] if ticks else 0)
    header = (
        f"{title or 'repro.obs watch'}  t={fmt_t(now)}  "
        f"ticks={len(ticks)}  interval={ts.interval_ns / 1e6:g}ms"
    )
    lines = [header, ""]

    names = switch_names(ts)
    label_w = max((len(n) for n in names), default=6)
    for name in names:
        epoch_s = ts.series("epoch", switch=name)
        dark_s = ts.series("blackout_in_progress", switch=name)
        good_s = ts.series("ports_in_state", switch=name, state=GOOD_STATE)
        fifo = _rowwise_max(ts.select("fifo_highwater_bytes", switch=name))

        epoch = epoch_s.last() if epoch_s else None
        dark = dark_s.last() if dark_s else None
        good = good_s.last() if good_s else None
        alive = epoch_s is not None and epoch_s.values and \
            epoch_s.values[-1] is not None
        if not alive:
            status = "DOWN"
        elif dark:
            status = "DARK"
        else:
            status = "ok"
        good_bar = sparkline(good_s.values if good_s else [], width)
        fifo_bar = sparkline(fifo, width)
        lines.append(
            f"{name:<{label_w}}  epoch {int(epoch) if epoch is not None else '-':>3}"
            f"  {status:<4}"
            f"  good {int(good) if good is not None else 0:>2} |{good_bar}|"
            f"  fifo^ |{fifo_bar}|"
        )

    if inband_doc is not None:
        heat = congestion_rows(inband_doc, width=width)
        if heat:
            lines.append("")
            lines.extend(heat)

    slo = traffic_rows(ts, width=width)
    if slo:
        lines.append("")
        lines.extend(slo)

    marks = ts.marks()
    if now_ns is not None:
        marks = [m for m in marks if m["t_ns"] <= now_ns]
    if marks:
        lines.append("")
        lines.append("recent reconfiguration events:")
        for m in marks[-mark_tail:]:
            lines.append(f"  {fmt_t(m['t_ns']):>10}  {m['component']:<10} {m['event']}")
    return "\n".join(lines) + "\n"


def truncate_document(doc: Dict[str, Any], upto_tick: int) -> Dict[str, Any]:
    """The artifact as it would have looked after ``upto_tick`` samples
    (replay's stepping primitive)."""
    ticks = doc["ticks"][:upto_tick]
    horizon = ticks[-1] if ticks else 0
    return {
        **doc,
        "samples_taken": min(doc["samples_taken"], upto_tick),
        "ticks": ticks,
        "series": [
            {**entry, "values": entry["values"][:upto_tick]}
            for entry in doc["series"]
        ],
        "marks": [m for m in doc["marks"] if m["t_ns"] <= horizon],
    }


# -- the two drivers (I/O lives here, not in render_frame) -----------------------------


def watch_live(
    net,
    duration_ns: int,
    fps: float = 10.0,
    width: int = 32,
    stream: Optional[TextIO] = None,
    sleep: bool = True,
) -> None:
    """Race ``net``'s simulator against the wall clock, one slice of
    simulated time per frame, redrawing the dashboard in place."""
    if net.sampler is None:
        raise RuntimeError("watch_live needs Network(timeseries=...)")
    out = stream if stream is not None else sys.stdout
    slice_ns = max(net.sampler.config.interval_ns, int(duration_ns / 240) or 1)
    end = net.sim.now + duration_ns
    title = f"watch {net.spec.name}"
    inband = getattr(net, "inband", None)
    while net.sim.now < end:
        net.sim.run(until=min(end, net.sim.now + slice_ns))
        frame = render_frame(
            net.sampler.view(),
            now_ns=net.sim.now,
            width=width,
            title=title,
            inband_doc=inband.document() if inband is not None else None,
        )
        out.write(ANSI_HOME_CLEAR + frame)
        out.flush()
        if sleep and fps > 0:
            time.sleep(1.0 / fps)


def watch_replay(
    ts: TimeSeries,
    fps: float = 10.0,
    width: int = 32,
    step: int = 1,
    stream: Optional[TextIO] = None,
    sleep: bool = True,
) -> None:
    """Step through a recorded artifact tick by tick, redrawing in place."""
    out = stream if stream is not None else sys.stdout
    total = len(ts.ticks)
    title = f"replay {ts.doc.get('name') or 'timeseries'}"
    for upto in range(1, total + 1, max(1, step)):
        view = TimeSeries(truncate_document(ts.doc, upto))
        now = view.ticks[-1] if view.ticks else 0
        frame = render_frame(view, now_ns=now, width=width, title=title)
        out.write(ANSI_HOME_CLEAR + frame)
        out.flush()
        if sleep and fps > 0:
            time.sleep(1.0 / fps)
