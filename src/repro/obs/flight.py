"""The flight recorder: causally-linked simulation events (§6.7, mechanized).

PR 1's spans say *what* phases an epoch went through; this module records
*why*: every interesting event -- a control-message send or receive, a
port-state transition, a timer arm/fire/cancel, an epoch phase mark, a
forwarding-table load -- carries the id of the event that caused it, so a
table load can be walked back, hop by hop and switch by switch, to the
port death that triggered the epoch.

Causality is maintained two ways, with no cooperation needed from most of
the code:

* **Through the event loop.**  :class:`~repro.sim.engine.Simulator`
  stamps every scheduled :class:`EventHandle` with the recorder's current
  context and restores it at dispatch, so an event recorded inside a
  deferred task (a CPU-cost-modeled table computation, a retransmission
  timer) inherits the context of whatever scheduled it.
* **Through packets.**  A control-message send records an event and
  stamps its id onto the :class:`~repro.net.packet.Packet`; the receive
  on the far switch records an event whose parent is the send, crossing
  the wire.  The Perfetto exporter renders these pairs as flow arrows.

Events live in bounded per-component ring buffers (the paper's per-switch
circular logs, section 6.7): overflow keeps the newest events and counts
the drops.  When no recorder is attached (``Simulator.recorder is None``,
the default) every hook site is a single attribute load plus a ``None``
test and **no event objects are allocated** -- the same null fast path as
the PR 1 instruments.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: event categories (the ``cat`` field of the Perfetto export)
CAT_MESSAGE = "msg"
CAT_PORT = "port"
CAT_TIMER = "timer"
CAT_EPOCH = "epoch"
CAT_TABLE = "table"
CAT_LOG = "log"  # bridged §6.7 TraceLog records


class FlightEvent:
    """One recorded event with a causal parent link."""

    __slots__ = ("eid", "t_ns", "component", "category", "name", "parent", "attrs")

    def __init__(
        self,
        eid: int,
        t_ns: int,
        component: str,
        category: str,
        name: str,
        parent: Optional[int],
        attrs: Dict[str, Any],
    ) -> None:
        self.eid = eid
        self.t_ns = t_ns
        self.component = component
        self.category = category
        self.name = name
        self.parent = parent
        self.attrs = attrs

    def to_dict(self) -> Dict[str, Any]:
        return {
            "eid": self.eid,
            "t_ns": self.t_ns,
            "component": self.component,
            "cat": self.category,
            "name": self.name,
            "parent": self.parent,
            "attrs": {k: _jsonable(v) for k, v in self.attrs.items()},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlightEvent #{self.eid} t={self.t_ns} {self.component} "
            f"{self.category}/{self.name} parent={self.parent}>"
        )


class ComponentRing:
    """Bounded circular buffer of events for one component.

    Like the paper's per-switch circular logs: overflow silently evicts
    the *oldest* record but keeps counting, so ``dropped`` reports how
    much history was lost.
    """

    def __init__(self, component: str, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive: {capacity}")
        self.component = component
        self.capacity = capacity
        self._buf: List[Optional[FlightEvent]] = [None] * capacity
        self._next = 0
        #: total events ever appended (>= len(self))
        self.total = 0

    def append(self, event: FlightEvent) -> Optional[FlightEvent]:
        """Append; returns the evicted event when the ring was full."""
        evicted = self._buf[self._next] if self.total >= self.capacity else None
        self._buf[self._next] = event
        self._next = (self._next + 1) % self.capacity
        self.total += 1
        return evicted

    @property
    def dropped(self) -> int:
        return max(0, self.total - self.capacity)

    def events(self) -> List[FlightEvent]:
        """Retained events, oldest first."""
        if self.total < self.capacity:
            return [e for e in self._buf[: self.total] if e is not None]
        return [
            e
            for e in self._buf[self._next :] + self._buf[: self._next]
            if e is not None
        ]

    def __len__(self) -> int:
        return min(self.total, self.capacity)


class FlightRecorder:
    """Captures causally-linked events into per-component rings.

    Attach to a simulator (``sim.recorder = recorder``) *before* building
    components so boot-time events are captured; ``Network(...,
    flight=True)`` does this.  ``current`` is the causal context: the id
    of the most recent context-advancing event recorded inside the
    simulation event being dispatched right now.  The simulator saves it
    on every scheduled event handle and restores it at dispatch.
    """

    def __init__(self, capacity_per_component: int = 65536) -> None:
        self.capacity_per_component = capacity_per_component
        self._rings: Dict[str, ComponentRing] = {}
        #: eid -> event, for retained events only (evictions de-index)
        self._index: Dict[int, FlightEvent] = {}
        self._next_eid = 1
        #: causal context: parent for events recorded without an explicit one
        self.current: Optional[int] = None

    # -- recording -----------------------------------------------------------------

    def record(
        self,
        t_ns: int,
        component: str,
        category: str,
        name: str,
        parent: Optional[int] = None,
        advance: bool = True,
        **attrs: Any,
    ) -> int:
        """Record one event; returns its id.

        ``parent`` defaults to the current causal context.  ``advance``
        makes this event the new context, so later events in the same
        handler (and in anything it schedules) chain to it; sends and
        timer bookkeeping pass ``advance=False`` because the causal story
        continues elsewhere (on the receiving switch, at the firing).
        """
        eid = self._next_eid
        self._next_eid += 1
        if parent is None:
            parent = self.current
        event = FlightEvent(eid, t_ns, component, category, name, parent, attrs)
        ring = self._rings.get(component)
        if ring is None:
            ring = self._rings[component] = ComponentRing(
                component, self.capacity_per_component
            )
        evicted = ring.append(event)
        if evicted is not None:
            self._index.pop(evicted.eid, None)
        self._index[eid] = event
        if advance:
            self.current = eid
        return eid

    # -- bookkeeping queries ----------------------------------------------------------

    def components(self) -> List[str]:
        return sorted(self._rings)

    def ring(self, component: str) -> Optional[ComponentRing]:
        return self._rings.get(component)

    @property
    def total_recorded(self) -> int:
        return sum(ring.total for ring in self._rings.values())

    @property
    def total_dropped(self) -> int:
        return sum(ring.dropped for ring in self._rings.values())

    def dropped_by_component(self) -> Dict[str, int]:
        return {
            name: ring.dropped
            for name, ring in sorted(self._rings.items())
            if ring.dropped
        }

    def get(self, eid: int) -> Optional[FlightEvent]:
        return self._index.get(eid)

    def events(
        self,
        component: Optional[str] = None,
        category: Optional[str] = None,
        name: Optional[str] = None,
        epoch: Optional[int] = None,
    ) -> List[FlightEvent]:
        """Retained events matching every given filter, in record order.

        Event ids are assigned in record order and the simulation is
        single-threaded, so sorting by eid is a global causal order.
        """
        rings = (
            [self._rings[component]]
            if component is not None and component in self._rings
            else ([] if component is not None else list(self._rings.values()))
        )
        out = []
        for ring in rings:
            for event in ring.events():
                if category is not None and event.category != category:
                    continue
                if name is not None and event.name != name:
                    continue
                if epoch is not None and event.attrs.get("epoch") != epoch:
                    continue
                out.append(event)
        out.sort(key=lambda e: e.eid)
        return out

    def last(self, **filters: Any) -> Optional[FlightEvent]:
        matches = self.events(**filters)
        return matches[-1] if matches else None

    # -- the causal query API ----------------------------------------------------------

    def why(self, event: "FlightEvent | int") -> List[FlightEvent]:
        """The causal chain of an event, root first.

        Walks the parent links from ``event`` back as far as retained
        history allows (an evicted ancestor truncates the chain there).
        Parent ids are always smaller than child ids, so the walk cannot
        cycle.
        """
        if isinstance(event, int):
            found = self.get(event)
            if found is None:
                return []
            event = found
        chain = [event]
        while event.parent is not None:
            parent = self._index.get(event.parent)
            if parent is None:
                break  # evicted from its ring: history ends here
            chain.append(parent)
            event = parent
        chain.reverse()
        return chain

    def wave(self, epoch: int) -> List[Dict[str, Any]]:
        """The propagation front of an epoch: when its first event
        (message arrival or phase mark) reached each component, in order
        of arrival.  This is the "message wave" view of a
        reconfiguration: the initiating switch first, then its
        neighbors, then theirs."""
        first: Dict[str, FlightEvent] = {}
        for event in self.events(epoch=epoch):
            if event.category not in (CAT_MESSAGE, CAT_EPOCH):
                continue
            seen = first.get(event.component)
            if seen is None or event.t_ns < seen.t_ns or (
                event.t_ns == seen.t_ns and event.eid < seen.eid
            ):
                first[event.component] = event
        front = sorted(first.values(), key=lambda e: (e.t_ns, e.eid))
        return [
            {
                "component": e.component,
                "t_ns": e.t_ns,
                "eid": e.eid,
                "event": e.name,
            }
            for e in front
        ]

    def deepest_chain(self, epoch: Optional[int] = None) -> List[FlightEvent]:
        """The longest retained causal chain ending at an epoch-category
        event (of one epoch, if given).  The doctor prints this as the
        "story" of the last reconfiguration."""
        best: List[FlightEvent] = []
        for event in self.events(category=CAT_EPOCH, epoch=epoch):
            chain = self.why(event)
            if len(chain) > len(best):
                best = chain
        return best

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [event.to_dict() for event in self.events()]


def _jsonable(value: Any) -> Any:
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def render_chain(chain: List[FlightEvent]) -> str:
    """A causal chain as indented text, root first."""
    lines = []
    for depth, event in enumerate(chain):
        attrs = ", ".join(
            f"{k}={v}" for k, v in sorted(event.attrs.items()) if v is not None
        )
        lines.append(
            f"{'  ' * depth}{event.t_ns / 1e6:>10.3f} ms  "
            f"[{event.component}] {event.name}" + (f" ({attrs})" if attrs else "")
        )
    return "\n".join(lines)
