"""Control-plane cost accounting: what reconfiguration itself costs.

The paper reports reconfiguration *time*; it never accounts for the
control traffic a reconfiguration injects -- the TreePosition floods,
acks, stable reports, and ConfigMsg topology payloads that all ride the
same links as host data.  :class:`ControlAccounting` counts every
control-packet send at the Autopilot transport layer, keyed by

* **epoch** -- the 64-bit epoch stamped on the sending engine at send
  time, so the volume of one reconfiguration is one slice;
* **message type** -- the ``ControlMessage`` subclass name; and
* **phase** -- the sending switch's reconfiguration phase (see
  :meth:`~repro.core.reconfig.ReconfigEngine.phase`): ``election``
  (steps 1-3: table cleared, tree forming), ``loading`` (step 5:
  configuration adopted, forwarding table not yet loaded), or
  ``steady`` (configured and carrying traffic).

Retransmissions (the reliable-delivery retry path in
``core/reconfig.py``) and SRP forwarding/serving (``core/srp.py``) are
counted separately so the overhead of loss recovery and of the
debugging plane are distinguishable from first-transmission volume.

The layer follows the repro.obs null fast path: ``sim.control`` is
``None`` unless a :class:`ControlAccounting` is attached
(``Network(..., control=True)``), and every hot-path hook is one
attribute load plus a ``None`` test (staticcheck rule RS306).  Enabled,
it is purely observational -- counting allocates no simulator events and
never perturbs schedule order, so enabling it cannot change a run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: control-message phases an engine can report (see ReconfigEngine.phase)
PHASES = ("election", "loading", "steady")


class ControlAccounting:
    """Per-epoch control-packet counters, keyed (epoch, type, phase)."""

    __slots__ = ("_cells", "_retx", "_srp", "packets", "bytes")

    def __init__(self) -> None:
        #: (epoch, message type, phase) -> [packets, wire bytes]
        self._cells: Dict[Tuple[int, str, str], List[int]] = {}
        #: (epoch, message type) -> retransmitted packets
        self._retx: Dict[Tuple[int, str], int] = {}
        #: (command, event) -> SRP occurrences (event: hop/served/reply)
        self._srp: Dict[Tuple[str, str], int] = {}
        self.packets = 0
        self.bytes = 0

    # -- hot-path hooks (see RS306: call via one-load + None-test) ------------------

    def record_send(
        self, epoch: int, msg_type: str, phase: str, wire_bytes: int
    ) -> None:
        """One control packet handed to the switch for transmission."""
        self.packets += 1
        self.bytes += wire_bytes
        cell = self._cells.get((epoch, msg_type, phase))
        if cell is None:
            self._cells[(epoch, msg_type, phase)] = [1, wire_bytes]
        else:
            cell[0] += 1
            cell[1] += wire_bytes

    def record_retx(self, epoch: int, msg_type: str) -> None:
        """A reliable-delivery retransmission (attempt > 1)."""
        key = (epoch, msg_type)
        self._retx[key] = self._retx.get(key, 0) + 1

    def record_srp(self, command: str, event: str) -> None:
        """One SRP processing step: ``hop``, ``served``, or ``reply``."""
        key = (command, event)
        self._srp[key] = self._srp.get(key, 0) + 1

    # -- queries ---------------------------------------------------------------------

    def epochs(self) -> List[int]:
        return sorted({epoch for epoch, _t, _p in self._cells})

    def epoch_packets(self, epoch: int) -> int:
        return sum(
            cell[0] for key, cell in self._cells.items() if key[0] == epoch
        )

    def epoch_bytes(self, epoch: int) -> int:
        return sum(
            cell[1] for key, cell in self._cells.items() if key[0] == epoch
        )

    def retransmissions(self, epoch: Optional[int] = None) -> int:
        if epoch is None:
            return sum(self._retx.values())
        return sum(
            count for key, count in self._retx.items() if key[0] == epoch
        )

    def by_type(self, epoch: Optional[int] = None) -> Dict[str, Dict[str, int]]:
        """``{message type: {"packets": n, "bytes": b}}`` for one epoch
        (or all epochs summed when ``epoch`` is None)."""
        out: Dict[str, Dict[str, int]] = {}
        for (cell_epoch, msg_type, _phase), cell in self._cells.items():
            if epoch is not None and cell_epoch != epoch:
                continue
            entry = out.setdefault(msg_type, {"packets": 0, "bytes": 0})
            entry["packets"] += cell[0]
            entry["bytes"] += cell[1]
        return dict(sorted(out.items()))

    def by_phase(self, epoch: Optional[int] = None) -> Dict[str, Dict[str, int]]:
        """``{phase: {"packets": n, "bytes": b}}``, same slicing rules."""
        out: Dict[str, Dict[str, int]] = {}
        for (cell_epoch, _msg_type, phase), cell in self._cells.items():
            if epoch is not None and cell_epoch != epoch:
                continue
            entry = out.setdefault(phase, {"packets": 0, "bytes": 0})
            entry["packets"] += cell[0]
            entry["bytes"] += cell[1]
        return dict(sorted(out.items()))

    def summary(self) -> Dict[str, Any]:
        """The JSON-ready rollup embedded in ``Network.telemetry()``."""
        return {
            "packets": self.packets,
            "bytes": self.bytes,
            "retransmissions": self.retransmissions(),
            "by_type": self.by_type(),
            "by_phase": self.by_phase(),
            "epochs": {
                str(epoch): {
                    "packets": self.epoch_packets(epoch),
                    "bytes": self.epoch_bytes(epoch),
                    "retransmissions": self.retransmissions(epoch),
                    "by_type": self.by_type(epoch),
                    "by_phase": self.by_phase(epoch),
                }
                for epoch in self.epochs()
            },
            "srp": {
                f"{command}/{event}": count
                for (command, event), count in sorted(self._srp.items())
            },
        }
