"""Scaling sweeps: how reconfiguration cost grows with network size.

The paper closes by asking about "the performance characteristics of
different topologies" -- a question its authors could not answer beyond
their 30-switch SRC LAN.  This module is the instrument: it runs one
seeded fault scenario (converge from cold boot, cut the first cable,
reconverge) across a ladder of topologies and records, per point,

* ``converge_ns``          -- sim time until every switch is configured
  with its forwarding table loaded after cold boot;
* ``reconfig_ns``          -- duration of the fault-triggered
  reconfiguration epoch (the paper's table 1 metric);
* ``blackout_ns``          -- the worst per-switch data blackout of that
  epoch (shutter close -> reopen, §6.4);
* ``control_packets`` / ``control_bytes`` / ``control_retx`` -- the
  control-plane volume the fault injected (repro.obs.control);
* ``fifo_highwater_bytes`` -- the deepest any receive FIFO got;
* ``events_per_sec``       -- simulator throughput (wall-clock; excluded
  from deterministic comparisons).

Results go into a versioned ``repro.obs.sweep/1`` artifact together
with log-log least-squares slope fits per metric, so "blackout grows
with exponent 1.4 in switch count" is a number a CI gate can hold.

Points whose switch count exceeds the 126-switch short-address ceiling
(``MAX_SWITCH_NUMBER``, §3: 11 bits of short address minus the
four port bits) are recorded explicitly as ``skipped`` -- the ceiling
is itself a scaling finding, not something to silently truncate.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.types import MAX_SWITCH_NUMBER

SWEEP_SCHEMA = "repro.obs.sweep/1"

#: every metric a sweep point may carry (RS307: set_metric takes these
#: as literal strings so the set stays greppable)
SWEEP_METRICS = (
    "converge_ns",
    "reconfig_ns",
    "blackout_ns",
    "control_packets",
    "control_bytes",
    "control_retx",
    "fifo_highwater_bytes",
    "events_per_sec",
    # workload SLO metrics; present only when the sweep ran with traffic
    "traffic_blackout_cost_bytes",
    "traffic_p99_latency_ns",
    "traffic_goodput_bytes_per_sec",
)

#: metrics every simulated ("ok") point must report
REQUIRED_METRICS = (
    "converge_ns",
    "reconfig_ns",
    "blackout_ns",
    "control_packets",
    "control_bytes",
)

#: metrics that depend on wall-clock time: real but not deterministic,
#: so regression gates treat them as telemetry, never as exact rows
WALL_CLOCK_METRICS = ("events_per_sec",)

#: named topology ladders.  ``smoke`` is the CI-sized rung set; ``full``
#: climbs to the largest simulable sizes; ``scale`` adds the points the
#: ISSUE asks about that sit beyond the 126-switch address ceiling --
#: they appear in the artifact as explicit skips.
LADDERS: Dict[str, Tuple[str, ...]] = {
    "smoke": ("torus-3x4", "torus-4x4", "fat-tree-4", "dcell-3l1"),
    "full": (
        "torus-3x4",
        "torus-4x4",
        "torus-5x5",
        "torus-6x6",
        "torus-8x8",
        "torus-10x10",
        "torus-11x11",
        "fat-tree-4",
        "fat-tree-6",
        "fat-tree-8",
        "dcell-3l1",
        "dcell-4l1",
        "dcell-2l2",
    ),
    "scale": (
        "torus-3x4",
        "torus-4x4",
        "torus-5x5",
        "torus-6x6",
        "torus-8x8",
        "torus-10x10",
        "torus-11x11",
        "torus-16x16",
        "torus-32x32",
        "fat-tree-4",
        "fat-tree-6",
        "fat-tree-8",
        "dcell-3l1",
        "dcell-4l1",
        "dcell-2l2",
        "dcell-3l2",
    ),
}

#: sim-time budget per convergence wait (Network.run_until_converged
#: steps deterministically and demands oracle agreement, §6.6)
CONVERGE_LIMIT_NS = 60_000_000_000

#: traffic-enabled rungs: workload size scales with the rung and each
#: side of the cut runs one arrival window of load
TRAFFIC_FLOWS_PER_SWITCH = 8
TRAFFIC_HOSTS_PER_SWITCH = 4
TRAFFIC_WINDOW_NS = 500_000_000


class SweepSchemaError(ValueError):
    """A document does not conform to ``repro.obs.sweep/1``."""


class SweepPoint:
    """One topology rung of a sweep: identity plus validated metrics."""

    __slots__ = ("name", "switches", "links", "status", "skip_reason", "metrics")

    def __init__(self, name: str, switches: int, links: int) -> None:
        self.name = name
        self.switches = switches
        self.links = links
        self.status = "ok"
        self.skip_reason: Optional[str] = None
        self.metrics: Dict[str, float] = {}

    def skip(self, reason: str) -> None:
        self.status = "skipped"
        self.skip_reason = reason

    def set_metric(self, name: str, value: float) -> None:
        """Record one metric; the name must be a known sweep series."""
        if name not in SWEEP_METRICS:
            raise ValueError(
                f"unknown sweep metric {name!r} (known: {', '.join(SWEEP_METRICS)})"
            )
        self.metrics[name] = value

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "switches": self.switches,
            "links": self.links,
            "status": self.status,
            "metrics": dict(self.metrics),
        }
        if self.skip_reason is not None:
            out["skip_reason"] = self.skip_reason
        return out


def run_point(name: str, seed: int, traffic: bool = False) -> SweepPoint:
    """Run the seeded fault scenario on one topology rung.

    ``traffic=True`` additionally drives a small deterministic hotspot
    workload through the cut (fluid model) and reports its SLO metrics;
    the default keeps rungs workload-free so existing curves and their
    baselines stay comparable.
    """
    from repro.network import Network
    from repro.sim.rng import RngRegistry
    from repro.topology.generators import resolve_topology

    spec = resolve_topology(name)
    point = SweepPoint(name, switches=len(spec.uids), links=len(spec.cables))
    if point.switches > MAX_SWITCH_NUMBER:
        point.skip(
            f"{point.switches} switches exceed the {MAX_SWITCH_NUMBER}-switch "
            "short-address ceiling (11-bit address minus 4 port bits, §3)"
        )
        return point

    child = RngRegistry(seed).child_seed(f"sweep/{name}")
    traffic_config = None
    if traffic:
        from repro.traffic.workload import TrafficConfig

        traffic_config = TrafficConfig(
            pattern="hotspot",
            flows=TRAFFIC_FLOWS_PER_SWITCH * point.switches,
            hosts=TRAFFIC_HOSTS_PER_SWITCH * point.switches,
            mean_flow_bytes=65_536,
            duration_ns=TRAFFIC_WINDOW_NS,
        )
    net = Network(spec, seed=child, control=True, profile=True, traffic=traffic_config)
    if not net.run_until_converged(timeout_ns=CONVERGE_LIMIT_NS):
        point.skip(f"did not converge within {CONVERGE_LIMIT_NS} ns of boot")
        return point
    tracer = net.tracer
    assert tracer is not None and net.control is not None
    boot_spans = [s for s in tracer.all_spans() if s.closed]
    point.set_metric("converge_ns", max(s.end_ns for s in boot_spans))
    boot_epochs = {s.key for s in tracer.all_spans()}

    if net.traffic is not None:
        net.traffic.launch()
        net.run_for(TRAFFIC_WINDOW_NS)

    packets_before = net.control.packets
    bytes_before = net.control.bytes
    retx_before = net.control.retransmissions()
    cut_a, _pa, cut_b, _pb = spec.cables[0]
    net.cut_link(cut_a, cut_b)
    if not net.run_until_converged(timeout_ns=CONVERGE_LIMIT_NS):
        point.skip(f"did not reconverge within {CONVERGE_LIMIT_NS} ns of the cut")
        return point
    if net.traffic is not None:
        net.run_for(TRAFFIC_WINDOW_NS)

    fault_spans = [
        s for s in tracer.all_spans() if s.key not in boot_epochs and s.closed
    ]
    if not fault_spans:
        point.skip("link cut triggered no reconfiguration span")
        return point
    last = max(fault_spans, key=lambda s: s.key)
    point.set_metric("reconfig_ns", last.end_ns - min(s.start_ns for s in fault_spans))
    blackouts = [
        b["blackout_ns"]
        for s in fault_spans
        for b in tracer.blackouts(s.key).values()
        if b["blackout_ns"] is not None
    ]
    point.set_metric("blackout_ns", max(blackouts) if blackouts else 0)
    point.set_metric("control_packets", net.control.packets - packets_before)
    point.set_metric("control_bytes", net.control.bytes - bytes_before)
    point.set_metric("control_retx", net.control.retransmissions() - retx_before)
    point.set_metric(
        "fifo_highwater_bytes",
        max(
            unit.fifo.max_level
            for switch in net.switches
            for unit in switch.ports.values()
        ),
    )
    profiler = net.profiler
    if profiler is not None:
        point.set_metric("events_per_sec", round(profiler.events_per_sec(), 1))
    if net.traffic is not None:
        slo = net.traffic.document()
        point.set_metric("traffic_blackout_cost_bytes", slo["blackout_cost_bytes"])
        p99 = slo["latency"]["p99_ns"]
        if p99 is not None:
            point.set_metric("traffic_p99_latency_ns", p99)
        goodput = slo["goodput_bytes_per_sec"]
        if goodput is not None:
            point.set_metric("traffic_goodput_bytes_per_sec", round(goodput, 1))
    return point


def fit_slope(points: Sequence[Tuple[float, float]]) -> Optional[Dict[str, float]]:
    """Least-squares slope of log(y) against log(x).

    The slope is the scaling exponent: 1.0 means the metric grows
    linearly in switch count, 2.0 quadratically.  Returns None when
    fewer than two strictly positive samples exist.
    """
    usable = [(x, y) for x, y in points if x > 0 and y > 0]
    if len(usable) < 2:
        return None
    logs = [(math.log(x), math.log(y)) for x, y in usable]
    n = len(logs)
    mean_x = sum(lx for lx, _ in logs) / n
    mean_y = sum(ly for _, ly in logs) / n
    var_x = sum((lx - mean_x) ** 2 for lx, _ in logs)
    if var_x == 0.0:
        return None
    cov = sum((lx - mean_x) * (ly - mean_y) for lx, ly in logs)
    slope = cov / var_x
    var_y = sum((ly - mean_y) ** 2 for _, ly in logs)
    r2 = 0.0 if var_y == 0.0 else (cov * cov) / (var_x * var_y)
    return {"slope": round(slope, 4), "r2": round(r2, 4), "points": n}


def fit_slopes(points: Sequence[SweepPoint]) -> Dict[str, Dict[str, float]]:
    """Per-metric scaling exponents over the simulated points."""
    out: Dict[str, Dict[str, float]] = {}
    for metric in SWEEP_METRICS:
        samples = [
            (float(p.switches), float(p.metrics[metric]))
            for p in points
            if p.status == "ok" and metric in p.metrics
        ]
        fit = fit_slope(samples)
        if fit is not None:
            out[metric] = fit
    return out


def run_sweep(
    ladder: str = "smoke",
    seed: int = 0,
    topologies: Optional[Sequence[str]] = None,
    progress=None,
    traffic: bool = False,
) -> Dict[str, Any]:
    """Run every rung of a ladder and assemble the sweep document.

    ``topologies`` overrides the named ladder with an explicit rung
    list; ``progress`` (if given) is called with each finished
    :class:`SweepPoint`; ``traffic=True`` drives the fluid workload
    through every rung and adds the ``traffic_*`` SLO metrics.
    """
    if topologies is None:
        if ladder not in LADDERS:
            raise ValueError(
                f"unknown ladder {ladder!r} (known: {', '.join(sorted(LADDERS))})"
            )
        topologies = LADDERS[ladder]
    points: List[SweepPoint] = []
    for name in topologies:
        point = run_point(name, seed, traffic=traffic)
        points.append(point)
        if progress is not None:
            progress(point)
    scenario = "boot-converge, cut first cable, reconverge"
    if traffic:
        scenario += ", hotspot fluid workload through the cut"
    doc = {
        "schema": SWEEP_SCHEMA,
        "ladder": ladder,
        "seed": seed,
        "scenario": scenario,
        "metrics": list(SWEEP_METRICS),
        "points": [p.to_dict() for p in points],
        "slopes": fit_slopes(points),
    }
    return validate_sweep(doc)


# -- the repro.obs.sweep/1 artifact ---------------------------------------------------


def _fail(path: str, why: str) -> None:
    raise SweepSchemaError(f"{path}: {why}")


def validate_sweep(doc: Any) -> Dict[str, Any]:
    """Validate a ``repro.obs.sweep/1`` document; returns it unchanged."""
    if not isinstance(doc, dict):
        _fail("$", "document must be an object")
    if doc.get("schema") != SWEEP_SCHEMA:
        _fail("$.schema", f"must be {SWEEP_SCHEMA!r}, got {doc.get('schema')!r}")
    if not isinstance(doc.get("ladder"), str) or not doc["ladder"]:
        _fail("$.ladder", "must be a non-empty string")
    if not isinstance(doc.get("seed"), int) or isinstance(doc.get("seed"), bool):
        _fail("$.seed", "must be an integer")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list) or not all(
        isinstance(m, str) for m in metrics
    ):
        _fail("$.metrics", "must be a list of metric-name strings")
    unknown = [m for m in metrics if m not in SWEEP_METRICS]
    if unknown:
        _fail("$.metrics", f"unknown metric names: {unknown}")
    points = doc.get("points")
    if not isinstance(points, list) or not points:
        _fail("$.points", "must be a non-empty list")
    for i, point in enumerate(points):
        where = f"$.points[{i}]"
        if not isinstance(point, dict):
            _fail(where, "must be an object")
        if not isinstance(point.get("name"), str) or not point["name"]:
            _fail(f"{where}.name", "must be a non-empty string")
        for field in ("switches", "links"):
            value = point.get(field)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                _fail(f"{where}.{field}", "must be a non-negative integer")
        status = point.get("status")
        if status not in ("ok", "skipped"):
            _fail(f"{where}.status", f"must be 'ok' or 'skipped', got {status!r}")
        if status == "skipped" and not isinstance(point.get("skip_reason"), str):
            _fail(f"{where}.skip_reason", "skipped points must say why")
        pmetrics = point.get("metrics")
        if not isinstance(pmetrics, dict):
            _fail(f"{where}.metrics", "must be an object")
        for key, value in pmetrics.items():
            if key not in SWEEP_METRICS:
                _fail(f"{where}.metrics", f"unknown metric {key!r}")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                _fail(f"{where}.metrics.{key}", "must be a number")
        if status == "ok":
            missing = [m for m in REQUIRED_METRICS if m not in pmetrics]
            if missing:
                _fail(f"{where}.metrics", f"ok point missing {missing}")
    slopes = doc.get("slopes")
    if not isinstance(slopes, dict):
        _fail("$.slopes", "must be an object")
    for metric, fit in slopes.items():
        where = f"$.slopes.{metric}"
        if metric not in SWEEP_METRICS:
            _fail(where, f"unknown metric {metric!r}")
        if not isinstance(fit, dict):
            _fail(where, "must be an object")
        for field in ("slope", "r2"):
            value = fit.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                _fail(f"{where}.{field}", "must be a number")
        count = fit.get("points")
        if not isinstance(count, int) or isinstance(count, bool) or count < 2:
            _fail(f"{where}.points", "must be an integer >= 2")
    return doc


def write_sweep(path: str, doc: Dict[str, Any]) -> Dict[str, Any]:
    """Validate and write the artifact; returns the doc."""
    validate_sweep(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return doc


def read_sweep(path: str) -> Dict[str, Any]:
    """Read and validate a sweep artifact."""
    with open(path, "r", encoding="utf-8") as fh:
        return validate_sweep(json.load(fh))


def render_sweep(doc: Dict[str, Any]) -> str:
    """Human-readable table of one sweep document."""
    lines = [
        f"scaling sweep: ladder={doc['ladder']} seed={doc['seed']} "
        f"({doc.get('scenario', '')})"
    ]
    header = (
        f"  {'topology':<14} {'sw':>5} {'links':>6} {'converge ms':>12} "
        f"{'reconfig ms':>12} {'blackout ms':>12} {'ctl pkts':>9} {'ctl KiB':>8}"
    )
    lines.append(header)
    for point in doc["points"]:
        if point["status"] == "skipped":
            lines.append(
                f"  {point['name']:<14} {point['switches']:>5} "
                f"{point['links']:>6}  skipped: {point.get('skip_reason', '')}"
            )
            continue
        m = point["metrics"]
        lines.append(
            f"  {point['name']:<14} {point['switches']:>5} {point['links']:>6} "
            f"{m['converge_ns'] / 1e6:>12.2f} {m['reconfig_ns'] / 1e6:>12.2f} "
            f"{m['blackout_ns'] / 1e6:>12.2f} {m['control_packets']:>9.0f} "
            f"{m['control_bytes'] / 1024:>8.1f}"
        )
    slopes = doc.get("slopes", {})
    if slopes:
        lines.append("  scaling exponents (log-log slope vs switches):")
        for metric, fit in slopes.items():
            lines.append(
                f"    {metric:<22} slope={fit['slope']:+.3f}  "
                f"r2={fit['r2']:.3f}  n={fit['points']}"
            )
    return "\n".join(lines)
