"""Span-style reconfiguration tracing (the §6.7 merged log, structured).

The paper's debugging workflow retrieved per-switch circular logs over SRP
and merged them into one clock-normalized timeline.  This module builds
the quantitative counterpart while the simulation runs: every epoch
becomes a :class:`Span` whose events mark the phases of a reconfiguration

    trigger (port death) -> epoch start -> tree stable (termination)
    -> topology at root -> tables loaded -> reopen

and whose per-switch close/reopen intervals yield the *blackout*: the time
a switch could not carry host traffic because its forwarding table held
only one-hop entries (step 1 of the algorithm) until its step-5 load.

The generic :class:`SpanTracer` is reusable for any keyed span; the
:class:`ReconfigTracer` understands the Autopilot event feed wired up by
:class:`repro.network.Network`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class SpanEvent:
    """One timestamped point inside a span."""

    time_ns: int
    name: str
    component: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out = {"t_ns": self.time_ns, "event": self.name}
        if self.component:
            out["component"] = self.component
        if self.attrs:
            out["attrs"] = {k: _jsonable(v) for k, v in self.attrs.items()}
        return out


@dataclass
class Span:
    """A named interval with attached events and attributes."""

    name: str
    key: Any
    start_ns: int
    end_ns: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)

    @property
    def closed(self) -> bool:
        return self.end_ns is not None

    @property
    def duration_ns(self) -> Optional[int]:
        if self.end_ns is None:
            return None
        return self.end_ns - self.start_ns

    def event(self, time_ns: int, name: str, component: str = "", **attrs: Any) -> None:
        self.events.append(SpanEvent(time_ns, name, component, attrs))

    def first_event(self, name: str) -> Optional[SpanEvent]:
        for ev in self.events:
            if ev.name == name:
                return ev
        return None

    def last_event(self, name: str) -> Optional[SpanEvent]:
        found = None
        for ev in self.events:
            if ev.name == name:
                found = ev
        return found

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "key": _jsonable(self.key),
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "attrs": {k: _jsonable(v) for k, v in self.attrs.items()},
            "events": [ev.to_dict() for ev in self.events],
        }


class SpanTracer:
    """Keyed span store: begin/event/end plus unclosed-span detection."""

    def __init__(self, max_spans: int = 10_000) -> None:
        self.max_spans = max_spans
        self._open: Dict[Any, Span] = {}
        self._finished: List[Span] = []
        #: spans dropped because the store was full
        self.dropped = 0

    def begin(self, name: str, key: Any, time_ns: int, **attrs: Any) -> Span:
        """Open a span.  Re-opening a live key is an error in the caller;
        the old span is force-closed and flagged, not silently lost."""
        stale = self._open.pop(key, None)
        if stale is not None:
            stale.attrs["unclosed"] = True
            self._finish(stale)
        span = Span(name=name, key=key, start_ns=time_ns, attrs=dict(attrs))
        if len(self._open) + len(self._finished) >= self.max_spans:
            self.dropped += 1
        else:
            self._open[key] = span
        return span

    def get(self, key: Any) -> Optional[Span]:
        return self._open.get(key)

    def event(self, key: Any, time_ns: int, name: str, component: str = "",
              **attrs: Any) -> None:
        span = self._open.get(key)
        if span is not None:
            span.event(time_ns, name, component, **attrs)

    def end(self, key: Any, time_ns: int, **attrs: Any) -> Optional[Span]:
        span = self._open.pop(key, None)
        if span is None:
            return None
        span.end_ns = time_ns
        span.attrs.update(attrs)
        self._finish(span)
        return span

    def _finish(self, span: Span) -> None:
        self._finished.append(span)

    # -- queries --------------------------------------------------------------

    def open_spans(self) -> List[Span]:
        return list(self._open.values())

    def finished_spans(self) -> List[Span]:
        return list(self._finished)

    def all_spans(self) -> List[Span]:
        return self._finished + list(self._open.values())

    def unclosed(self) -> List[Span]:
        """Spans never ended (still open, or force-closed by a re-begin):
        in a converged network every reconfiguration span must be closed,
        so anything here is a protocol stall worth investigating."""
        flagged = [s for s in self._finished if s.attrs.get("unclosed")]
        return flagged + list(self._open.values())

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.all_spans()]


class ReconfigTracer(SpanTracer):
    """Turns the Autopilot event feed into per-epoch reconfiguration spans.

    One span per epoch (key = epoch number).  Feed events, per switch:

    * ``trigger``       -- a port-state change demanded a reconfiguration
    * ``epoch-start``   -- the switch entered the epoch (step 1: its table
                           drops to one-hop entries; the switch *closes*)
    * ``unconfigure``   -- a stale (false-root) configuration was dropped;
                           the switch closes again
    * ``termination``   -- the root's unstable->stable transition (§4.1):
                           the tree is stable and the topology is at root
    * ``table-loaded``  -- step 5 finished at one switch (it *reopens*)

    The span ends when every switch that entered the epoch has reopened.
    """

    SPAN_NAME = "reconfiguration"

    def __init__(self, max_spans: int = 10_000) -> None:
        super().__init__(max_spans=max_spans)
        #: epoch -> {switch name -> [closed_ns, reopened_ns|None]}
        self._shutters: Dict[int, Dict[str, List[Optional[int]]]] = {}
        #: external observers of the raw event feed, fn(time_ns,
        #: component, event, attrs).  The chaos injector uses this to
        #: trigger faults on mid-reconfiguration phase transitions.
        self._listeners: List[Any] = []

    def add_listener(self, fn) -> None:
        """Subscribe to every switch event as it is fed to the tracer."""
        self._listeners.append(fn)

    def remove_listener(self, fn) -> None:
        self._listeners.remove(fn)

    # -- the feed (called via Autopilot.on_obs_event) -----------------------------

    def switch_event(self, time_ns: int, component: str, event: str,
                     attrs: Dict[str, Any]) -> None:
        for listener in self._listeners:
            listener(time_ns, component, event, attrs)
        epoch = attrs.get("epoch")
        if event == "trigger":
            # recorded onto the *next* epoch once it starts; keep the most
            # recent trigger so the span can name its cause
            self._last_trigger = (time_ns, component, dict(attrs))
            return
        if epoch is None:
            return
        if event == "epoch-start":
            span = self.get(epoch)
            if span is None:
                span = self.begin(self.SPAN_NAME, epoch, time_ns, epoch=epoch)
                trigger = getattr(self, "_last_trigger", None)
                if trigger is not None and trigger[0] <= time_ns:
                    t, comp, tattrs = trigger
                    span.event(t, "trigger", comp, **tattrs)
                    self._last_trigger = None
            span.event(time_ns, "epoch-start", component, **attrs)
            self._close_shutter(epoch, component, time_ns)
        elif event == "unconfigure":
            self.event(epoch, time_ns, "unconfigure", component, **attrs)
            self._close_shutter(epoch, component, time_ns)
        elif event == "termination":
            span = self.get(epoch)
            if span is not None and span.first_event("tree-stable") is None:
                span.event(time_ns, "tree-stable", component, **attrs)
                span.event(time_ns, "topology-at-root", component,
                           switches=attrs.get("switches"))
        elif event == "table-loaded":
            self.event(epoch, time_ns, "table-loaded", component, **attrs)
            self._open_shutter(epoch, component, time_ns)
        elif event == "config-timeout":
            self.event(epoch, time_ns, "config-timeout", component, **attrs)

    _last_trigger = None

    # -- blackout accounting ----------------------------------------------------

    def _close_shutter(self, epoch: int, component: str, time_ns: int) -> None:
        shutters = self._shutters.setdefault(epoch, {})
        entry = shutters.get(component)
        if entry is None or entry[1] is not None:
            # first closure, or closing again after a premature reopen
            shutters[component] = [time_ns, None]

    def _open_shutter(self, epoch: int, component: str, time_ns: int) -> None:
        shutters = self._shutters.setdefault(epoch, {})
        entry = shutters.get(component)
        if entry is None:
            shutters[component] = [time_ns, time_ns]
            entry = shutters[component]
        if entry[1] is None:
            entry[1] = time_ns
        if all(e[1] is not None for e in shutters.values()):
            span = self.get(epoch)
            if span is not None:
                reopen = max(e[1] for e in shutters.values())
                span.event(reopen, "reopen", component)
                self.end(epoch, reopen)

    def blackouts(self, epoch: int) -> Dict[str, Dict[str, Optional[int]]]:
        """Per-switch blackout intervals for one epoch."""
        out: Dict[str, Dict[str, Optional[int]]] = {}
        for component, (closed, reopened) in sorted(
            self._shutters.get(epoch, {}).items()
        ):
            out[component] = {
                "closed_ns": closed,
                "reopened_ns": reopened,
                "blackout_ns": None if reopened is None else reopened - closed,
            }
        return out

    def epochs(self) -> List[int]:
        return sorted(self._shutters)

    def span_summary(self) -> List[Dict[str, Any]]:
        """One dict per epoch span, blackouts included."""
        out = []
        for span in self.all_spans():
            doc = span.to_dict()
            doc["blackouts"] = self.blackouts(span.key)
            durations = [
                b["blackout_ns"] for b in doc["blackouts"].values()
                if b["blackout_ns"] is not None
            ]
            doc["max_blackout_ns"] = max(durations) if durations else None
            stable = span.first_event("tree-stable")
            doc["tree_stable_ns"] = stable.time_ns if stable else None
            out.append(doc)
        return out


def _jsonable(value: Any) -> Any:
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)
