"""repro.obs -- the simulation-wide telemetry layer.

Three pieces, built for the debugging story of section 6.7 and the
bench-trajectory needs of ROADMAP.md:

* :mod:`repro.obs.registry` -- a metrics registry (counters, gauges,
  histograms, high-water marks) with per-component labels and near-zero
  overhead when disabled.  Hot paths keep plain integer attributes and the
  registry *collects* them lazily at snapshot time, so the data plane pays
  nothing per packet for observability.
* :mod:`repro.obs.spans` -- span-style reconfiguration tracing: the §6.7
  merged log turned into structured spans (trigger -> epoch start -> tree
  stable -> topology at root -> tables loaded -> reopen) with per-switch
  and per-host blackout intervals.
* :mod:`repro.obs.export` -- the stable JSON schema every benchmark emits
  through ``benchmarks/bench_util.py``, so runs are machine-readable.
* :mod:`repro.obs.flight` -- the flight recorder: causally-linked events
  (message sends/receives, port transitions, timers, epoch phases, table
  loads) in bounded per-component rings, with ``why``/``wave`` queries.
* :mod:`repro.obs.perfetto` -- Chrome ``trace_event`` / Perfetto export
  of a flight recording (``repro.obs.flight/1``), plus its validator.
* :mod:`repro.obs.profiler` -- the event-loop profiler: wall-clock and
  event counts per handler category, and the ``events_per_sec`` baseline.
* :mod:`repro.obs.timeseries` -- the longitudinal sampler: periodic
  in-sim sampling of every gauge/counter/high-water plus FIFO occupancy,
  port states, epochs, and blackout flags into bounded rings, exported
  as ``repro.obs.timeseries/1`` with a window/delta/resample query API.
* :mod:`repro.obs.watch` -- the live dashboard: sampler rings rendered
  as per-switch terminal sparklines, live or replayed from an artifact.
* :mod:`repro.obs.regress` -- the bench-regression trajectory: per-bench
  history archives and the baseline comparator whose
  ``repro.obs.regress/1`` verdict CI gates on.
* :mod:`repro.obs.inband` -- in-band path telemetry: enabled data packets
  carry a bounded per-hop record stack (switch, ports, FIFO depth,
  timestamp); the host side folds delivered stacks into per-flow path
  records, link congestion tables, and delivery-SLO windows aligned to
  reconfiguration epochs, exported as ``repro.obs.inband/1``.
* :mod:`repro.obs.control` -- control-plane cost accounting: per-epoch
  counters of control-packet volume by message type and reconfiguration
  phase (election / loading / steady), plus retransmission and SRP
  tallies, behind the ``sim.control`` null fast path.
* :mod:`repro.obs.sweep` -- the scaling observatory: one seeded fault
  scenario run across a topology ladder (tori, fat-trees, DCells),
  recording convergence, blackout, control volume, FIFO depth and
  simulator throughput per rung into ``repro.obs.sweep/1`` with
  log-log slope fits per metric.

``python -m repro.obs`` exposes ``export``, ``why``, ``profile``,
``watch``, ``paths``, ``regress``, and ``sweep``.
"""

from repro.obs.control import PHASES, ControlAccounting
from repro.obs.export import (
    SCHEMA,
    bench_document,
    bench_result,
    validate_document,
    write_document,
)
from repro.obs.inband import (
    INBAND_SCHEMA,
    InbandConfig,
    InbandSchemaError,
    InbandTelemetry,
    PathCollector,
    SloTracker,
    exact_quantile,
    read_inband,
    validate_inband,
    write_inband,
)
from repro.obs.flight import (
    ComponentRing,
    FlightEvent,
    FlightRecorder,
    render_chain,
)
from repro.obs.perfetto import (
    FLIGHT_SCHEMA,
    path_trace_document,
    read_trace,
    trace_event_document,
    validate_trace,
    write_trace,
)
from repro.obs.profiler import EventLoopProfiler
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    HighWater,
    MetricsRegistry,
    NULL_COUNTER,
)
from repro.obs.regress import (
    REGRESS_SCHEMA,
    Tolerance,
    archive_document,
    baseline_window,
    compare,
    read_regress,
    validate_regress,
    write_regress,
)
from repro.obs.spans import ReconfigTracer, Span, SpanTracer
from repro.obs.sweep import (
    LADDERS,
    SWEEP_METRICS,
    SWEEP_SCHEMA,
    SweepPoint,
    SweepSchemaError,
    fit_slope,
    fit_slopes,
    read_sweep,
    render_sweep,
    run_point,
    run_sweep,
    validate_sweep,
    write_sweep,
)
from repro.obs.timeseries import (
    TIMESERIES_SCHEMA,
    SeriesData,
    TimeSeries,
    TimeSeriesConfig,
    TimeSeriesSampler,
    read_timeseries,
    validate_timeseries,
    write_timeseries,
)

__all__ = [
    "SCHEMA",
    "bench_document",
    "bench_result",
    "validate_document",
    "write_document",
    "Counter",
    "Gauge",
    "Histogram",
    "HighWater",
    "MetricsRegistry",
    "NULL_COUNTER",
    "ReconfigTracer",
    "Span",
    "SpanTracer",
    "ComponentRing",
    "FlightEvent",
    "FlightRecorder",
    "render_chain",
    "FLIGHT_SCHEMA",
    "path_trace_document",
    "read_trace",
    "trace_event_document",
    "validate_trace",
    "write_trace",
    "INBAND_SCHEMA",
    "InbandConfig",
    "InbandSchemaError",
    "InbandTelemetry",
    "PathCollector",
    "SloTracker",
    "exact_quantile",
    "read_inband",
    "validate_inband",
    "write_inband",
    "EventLoopProfiler",
    "TIMESERIES_SCHEMA",
    "SeriesData",
    "TimeSeries",
    "TimeSeriesConfig",
    "TimeSeriesSampler",
    "read_timeseries",
    "validate_timeseries",
    "write_timeseries",
    "REGRESS_SCHEMA",
    "Tolerance",
    "archive_document",
    "baseline_window",
    "compare",
    "read_regress",
    "validate_regress",
    "write_regress",
    "PHASES",
    "ControlAccounting",
    "LADDERS",
    "SWEEP_METRICS",
    "SWEEP_SCHEMA",
    "SweepPoint",
    "SweepSchemaError",
    "fit_slope",
    "fit_slopes",
    "read_sweep",
    "render_sweep",
    "run_point",
    "run_sweep",
    "validate_sweep",
    "write_sweep",
]
