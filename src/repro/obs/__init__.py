"""repro.obs -- the simulation-wide telemetry layer.

Three pieces, built for the debugging story of section 6.7 and the
bench-trajectory needs of ROADMAP.md:

* :mod:`repro.obs.registry` -- a metrics registry (counters, gauges,
  histograms, high-water marks) with per-component labels and near-zero
  overhead when disabled.  Hot paths keep plain integer attributes and the
  registry *collects* them lazily at snapshot time, so the data plane pays
  nothing per packet for observability.
* :mod:`repro.obs.spans` -- span-style reconfiguration tracing: the §6.7
  merged log turned into structured spans (trigger -> epoch start -> tree
  stable -> topology at root -> tables loaded -> reopen) with per-switch
  and per-host blackout intervals.
* :mod:`repro.obs.export` -- the stable JSON schema every benchmark emits
  through ``benchmarks/bench_util.py``, so runs are machine-readable.
"""

from repro.obs.export import (
    SCHEMA,
    bench_document,
    bench_result,
    validate_document,
    write_document,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    HighWater,
    MetricsRegistry,
    NULL_COUNTER,
)
from repro.obs.spans import ReconfigTracer, Span, SpanTracer

__all__ = [
    "SCHEMA",
    "bench_document",
    "bench_result",
    "validate_document",
    "write_document",
    "Counter",
    "Gauge",
    "Histogram",
    "HighWater",
    "MetricsRegistry",
    "NULL_COUNTER",
    "ReconfigTracer",
    "Span",
    "SpanTracer",
]
