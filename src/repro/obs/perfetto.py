"""Chrome ``trace_event`` / Perfetto export of a flight recording.

Renders a whole reconfiguration as a timeline: one track (thread) per
switch, epochs as slices between that switch's ``epoch-start`` (its
forwarding table drops to one-hop entries) and its ``table-loaded``
(step 5 finished, the switch reopens), phase marks and port transitions
as instants, and every control-message hop as a flow arrow from the send
on the sender's track to the receive on the receiver's track.  The §6.7
merged circular log, when provided, appears as its own track instead of
living in a parallel, export-less world.

The emitted document is simultaneously

* a valid Chrome/Perfetto trace -- load it at https://ui.perfetto.dev or
  ``chrome://tracing`` (both ignore unknown top-level keys), and
* a ``repro.obs.flight/1`` artifact: the ``schema`` key, per-component
  drop counts under ``otherData``, and ``eid``/``parent`` in every
  event's ``args`` so the causal chains survive the export and can be
  walked offline.

``validate_trace`` is a hand-rolled structural check (the container has
no ``jsonschema``): field presence/types per phase, matched B/E slice
nesting per track, and flow bind-id resolution (every flow finish has an
earlier flow start with the same id).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.obs.export import SchemaError
from repro.obs.flight import (
    CAT_EPOCH,
    CAT_LOG,
    CAT_MESSAGE,
    FlightRecorder,
)

#: bump when the trace document layout changes incompatibly
FLIGHT_SCHEMA = "repro.obs.flight/1"

#: single simulated process; tracks are threads within it
PID = 1

#: tid reserved for the bridged §6.7 merged log track
MERGED_LOG_TID = 1000


def _us(t_ns: int) -> float:
    """trace_event timestamps are microseconds."""
    return t_ns / 1000.0


def _args(event) -> Dict[str, Any]:
    out: Dict[str, Any] = {"eid": event.eid}
    if event.parent is not None:
        out["parent"] = event.parent
    for key, value in event.attrs.items():
        if value is None:
            continue
        out[key] = (
            value if isinstance(value, (int, float, str, bool)) else str(value)
        )
    return out


def trace_event_document(
    recorder: FlightRecorder,
    merged_log=None,
    name: str = "autonet",
) -> Dict[str, Any]:
    """Build the ``repro.obs.flight/1`` / Chrome trace_event document.

    ``merged_log`` is an optional :class:`repro.sim.trace.MergedLog`;
    its clock-normalized entries become instants on a dedicated track.
    """
    events: List[Dict[str, Any]] = []
    components = recorder.components()
    tids = {component: tid for tid, component in enumerate(components, start=1)}

    events.append(
        {
            "ph": "M",
            "name": "process_name",
            "pid": PID,
            "tid": 0,
            "args": {"name": name},
        }
    )
    for component, tid in tids.items():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": PID,
                "tid": tid,
                "args": {"name": component},
            }
        )

    #: per-tid stack of open epoch slices, for matched B/E emission
    open_slices: Dict[int, List[int]] = {tid: [] for tid in tids.values()}
    #: flow-start ids already emitted (binds must resolve)
    flow_started: set = set()
    last_ts = 0

    def close_slices(tid: int, t_ns: int, down_to: int = 0) -> None:
        while len(open_slices[tid]) > down_to:
            epoch = open_slices[tid].pop()
            events.append(
                {
                    "ph": "E",
                    "name": f"epoch {epoch}",
                    "cat": CAT_EPOCH,
                    "ts": _us(t_ns),
                    "pid": PID,
                    "tid": tid,
                }
            )

    for event in recorder.events():
        tid = tids[event.component]
        ts = _us(event.t_ns)
        last_ts = max(last_ts, event.t_ns)

        if event.category == CAT_EPOCH and event.name == "epoch-start":
            # a new epoch preempts anything still open on this track
            close_slices(tid, event.t_ns)
            open_slices[tid].append(event.attrs.get("epoch"))
            events.append(
                {
                    "ph": "B",
                    "name": f"epoch {event.attrs.get('epoch')}",
                    "cat": CAT_EPOCH,
                    "ts": ts,
                    "pid": PID,
                    "tid": tid,
                    "args": _args(event),
                }
            )
            continue
        if event.category == CAT_EPOCH and event.name == "table-loaded":
            events.append(
                {
                    "ph": "i",
                    "name": "table-loaded",
                    "cat": CAT_EPOCH,
                    "s": "t",
                    "ts": ts,
                    "pid": PID,
                    "tid": tid,
                    "args": _args(event),
                }
            )
            close_slices(tid, event.t_ns)
            continue

        if event.category == CAT_MESSAGE:
            msg = str(event.attrs.get("msg", "msg"))
            if event.name == "msg-send":
                # a zero-width slice anchors the flow arrow's tail
                events.append(
                    {
                        "ph": "X",
                        "name": msg,
                        "cat": CAT_MESSAGE,
                        "ts": ts,
                        "dur": 1,
                        "pid": PID,
                        "tid": tid,
                        "args": _args(event),
                    }
                )
                events.append(
                    {
                        "ph": "s",
                        "name": msg,
                        "cat": CAT_MESSAGE,
                        "id": event.eid,
                        "ts": ts,
                        "pid": PID,
                        "tid": tid,
                    }
                )
                flow_started.add(event.eid)
            else:  # msg-recv
                events.append(
                    {
                        "ph": "X",
                        "name": msg,
                        "cat": CAT_MESSAGE,
                        "ts": ts,
                        "dur": 1,
                        "pid": PID,
                        "tid": tid,
                        "args": _args(event),
                    }
                )
                flow = event.attrs.get("flow")
                if flow in flow_started:
                    events.append(
                        {
                            "ph": "f",
                            "bp": "e",
                            "name": msg,
                            "cat": CAT_MESSAGE,
                            "id": flow,
                            "ts": ts,
                            "pid": PID,
                            "tid": tid,
                        }
                    )
            continue

        # everything else (port transitions, timers, table loads, other
        # epoch phase marks) renders as a thread-scoped instant
        events.append(
            {
                "ph": "i",
                "name": event.name,
                "cat": event.category,
                "s": "t",
                "ts": ts,
                "pid": PID,
                "tid": tid,
                "args": _args(event),
            }
        )

    # epochs still in flight at export time: close them at the last
    # timestamp so every B has its E (the validator insists)
    for tid in tids.values():
        close_slices(tid, last_ts)

    if merged_log is not None:
        merged = merged_log.merged()
        if merged:
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": PID,
                    "tid": MERGED_LOG_TID,
                    "args": {"name": "merged-log (§6.7)"},
                }
            )
            for entry in merged:
                events.append(
                    {
                        "ph": "i",
                        "name": entry.event,
                        "cat": CAT_LOG,
                        "s": "t",
                        "ts": _us(entry.local_time),
                        "pid": PID,
                        "tid": MERGED_LOG_TID,
                        "args": {
                            "component": entry.component,
                            "detail": entry.detail,
                        },
                    }
                )

    return {
        "schema": FLIGHT_SCHEMA,
        "displayTimeUnit": "ms",
        "otherData": {
            "recorded": recorder.total_recorded,
            "dropped": recorder.total_dropped,
            "dropped_by_component": recorder.dropped_by_component(),
            "components": components,
        },
        "traceEvents": events,
    }


#: category for in-band hop records in a path trace
CAT_PATH = "path"


def path_trace_document(
    inband_doc: Dict[str, Any],
    name: str = "autonet-paths",
) -> Dict[str, Any]:
    """Render a ``repro.obs.inband/1`` document's retained hop stacks as
    flow arrows: one track per switch/host, one zero-width slice per hop,
    and an ``s``/``t``/``f`` chain (id = packet id) threading each
    packet's route from its first forwarding grant to its delivery.

    The result reuses the ``repro.obs.flight/1`` envelope so it passes
    :func:`validate_trace` and loads at https://ui.perfetto.dev.
    """
    stacks = [s for s in inband_doc.get("recent", []) if s.get("hops")]
    components: List[str] = []
    for stack in stacks:
        for hop in stack["hops"]:
            if hop[1] not in components:
                components.append(hop[1])
        if stack["host"] not in components:
            components.append(stack["host"])
    tids = {component: tid for tid, component in enumerate(components, start=1)}

    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": PID,
            "tid": 0,
            "args": {"name": name},
        }
    ]
    for component, tid in tids.items():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": PID,
                "tid": tid,
                "args": {"name": component},
            }
        )

    for stack in stacks:
        pkt = stack["packet_id"]
        label = f"pkt#{pkt}"
        hops = stack["hops"]
        for index, (t_ns, switch, in_port, outs, depth) in enumerate(hops):
            tid = tids[switch]
            ts = _us(t_ns)
            events.append(
                {
                    "ph": "X",
                    "name": label,
                    "cat": CAT_PATH,
                    "ts": ts,
                    "dur": 1,
                    "pid": PID,
                    "tid": tid,
                    "args": {
                        "hop": index,
                        "in_port": in_port,
                        "out_ports": ",".join(str(p) for p in outs),
                        "fifo_depth_bytes": depth,
                    },
                }
            )
            events.append(
                {
                    "ph": "s" if index == 0 else "t",
                    "name": label,
                    "cat": CAT_PATH,
                    "id": pkt,
                    "ts": ts,
                    "pid": PID,
                    "tid": tid,
                }
            )
        tid = tids[stack["host"]]
        ts = _us(stack["delivered_ns"])
        events.append(
            {
                "ph": "X",
                "name": label,
                "cat": CAT_PATH,
                "ts": ts,
                "dur": 1,
                "pid": PID,
                "tid": tid,
                "args": {
                    "latency_ns": stack["delivered_ns"] - stack["created_ns"],
                    "hops": len(hops),
                },
            }
        )
        events.append(
            {
                "ph": "f",
                "bp": "e",
                "name": label,
                "cat": CAT_PATH,
                "id": pkt,
                "ts": ts,
                "pid": PID,
                "tid": tid,
            }
        )

    return {
        "schema": FLIGHT_SCHEMA,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": inband_doc.get("schema"),
            "name": inband_doc.get("name"),
            "stacks": len(stacks),
            "components": components,
        },
        "traceEvents": events,
    }


# -- the structural validator ---------------------------------------------------------

#: phases this exporter emits; anything else is a validation error
_KNOWN_PH = frozenset({"M", "B", "E", "i", "I", "X", "s", "t", "f"})


def _fail(path: str, why: str) -> None:
    raise SchemaError(f"{path}: {why}")


def validate_trace(doc: Any) -> Dict[str, Any]:
    """Structurally validate a flight trace document; returns it.

    Checks, per event: ``ph``/``pid``/``tid`` presence and types, a
    numeric non-negative ``ts`` on every non-metadata event, a ``name``
    where the phase requires one, ``dur`` on complete events, ``id`` on
    flow events.  Globally: B/E events nest and match per track, and
    every flow finish binds to an earlier flow start with the same id.
    """
    if not isinstance(doc, dict):
        _fail("$", f"expected object, got {type(doc).__name__}")
    if doc.get("schema") != FLIGHT_SCHEMA:
        _fail("$.schema", f"expected {FLIGHT_SCHEMA!r}, got {doc.get('schema')!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        _fail("$.traceEvents", "expected array")

    slice_stacks: Dict[tuple, List[str]] = {}
    flow_starts: set = set()
    for i, event in enumerate(events):
        path = f"$.traceEvents[{i}]"
        if not isinstance(event, dict):
            _fail(path, "expected object")
        ph = event.get("ph")
        if ph not in _KNOWN_PH:
            _fail(f"{path}.ph", f"unknown phase {ph!r}")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                _fail(f"{path}.{field}", "expected int")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
                _fail(f"{path}.ts", f"expected non-negative number, got {ts!r}")
        if ph in ("M", "B", "i", "I", "X", "s", "f"):
            if not isinstance(event.get("name"), str) or not event["name"]:
                _fail(f"{path}.name", "expected non-empty string")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                _fail(f"{path}.dur", "complete event needs a non-negative dur")
        track = (event.get("pid"), event.get("tid"))
        if ph == "B":
            slice_stacks.setdefault(track, []).append(event["name"])
        elif ph == "E":
            stack = slice_stacks.get(track)
            if not stack:
                _fail(path, f"slice end with no open slice on track {track}")
            opened = stack.pop()
            ended = event.get("name")
            if ended is not None and ended != opened:
                _fail(path, f"slice end {ended!r} does not match open {opened!r}")
        elif ph in ("s", "f"):
            flow_id = event.get("id")
            if not isinstance(flow_id, (int, str)):
                _fail(f"{path}.id", "flow event needs an id")
            if ph == "s":
                flow_starts.add(flow_id)
            elif flow_id not in flow_starts:
                _fail(f"{path}.id", f"flow finish {flow_id!r} has no earlier start")
    for track, stack in slice_stacks.items():
        if stack:
            _fail("$", f"track {track} ends with unclosed slices: {stack}")
    return doc


# -- file I/O ---------------------------------------------------------------------------


def write_trace(path: str, doc: Dict[str, Any]) -> None:
    """Validate and write a flight trace document as JSON."""
    validate_trace(doc)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")


def read_trace(path: str) -> Dict[str, Any]:
    """Load and validate a flight trace document from disk."""
    with open(path) as fh:
        return validate_trace(json.load(fh))


def chains_from_trace(doc: Dict[str, Any]) -> Dict[int, Optional[int]]:
    """Offline parent map (eid -> parent) recovered from a trace file's
    ``args``, so ``why``-style walks work without the live recorder."""
    parents: Dict[int, Optional[int]] = {}
    for event in doc.get("traceEvents", []):
        args = event.get("args") or {}
        eid = args.get("eid")
        if isinstance(eid, int):
            parents[eid] = args.get("parent")
    return parents
