"""The metrics registry: counters, gauges, histograms, high-water marks.

Design constraints (see ISSUE 1 and the in-band-telemetry shape of the
related P4/MRI work):

* **Labels.**  Every instrument carries a ``(name, labels)`` identity, so
  one logical metric ("packets forwarded") fans out into one series per
  switch/port/cause without the callers inventing name suffixes.
* **Near-zero overhead when disabled.**  A disabled registry hands out
  shared null instruments whose mutators are no-ops and allocates no
  series.  Hot paths capture instrument references once, at component
  init, so the steady-state cost of a disabled metric is a single no-op
  method call -- and components that already keep plain integer statistics
  can instead register a *collector*, sampled only at snapshot time, which
  costs literally nothing on the hot path.
* **Bounded cardinality.**  A per-name series cap guards against label
  explosions; overflowing series are dropped and counted rather than
  silently growing without bound.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, Any], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: Dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot_value(self) -> Any:
        return self.value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: Dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount

    def snapshot_value(self) -> Any:
        return self.value


class HighWater:
    """Remembers the largest value ever observed."""

    __slots__ = ("name", "labels", "value")
    kind = "highwater"

    def __init__(self, name: str, labels: Dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def observe(self, value: float) -> None:
        if value > self.value:
            self.value = value

    def snapshot_value(self) -> Any:
        return self.value


#: default histogram bucket upper bounds, in the unit of the observation
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9,
)


class Histogram:
    """Cumulative-bucket histogram plus count/sum/min/max."""

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "total",
                 "min", "max")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Dict[str, Any],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +overflow
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the q-quantile (0 < q <= 1) from the cumulative
        bucket counts, linearly interpolating inside the bucket that
        crosses rank ``q * count``.  The estimate is clamped to the
        observed [min, max], so with all observations in one bucket the
        answer stays within the data rather than the bucket bounds --
        what the regress tolerance bands need from tail latencies.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1]: {q}")
        if self.count == 0 or self.min is None or self.max is None:
            return None
        rank = q * self.count
        cumulative = 0
        lower = self.min
        for i, bound in enumerate(self.bounds):
            in_bucket = self.bucket_counts[i]
            if in_bucket and cumulative + in_bucket >= rank:
                fraction = (rank - cumulative) / in_bucket
                lo = max(lower, self.min)
                hi = min(bound, self.max)
                value = lo + max(0.0, hi - lo) * fraction
                return min(max(value, self.min), self.max)
            cumulative += in_bucket
            lower = bound
        # rank falls in the overflow bucket: interpolate toward max
        in_bucket = self.bucket_counts[-1]
        if in_bucket:
            fraction = (rank - cumulative) / in_bucket
            lo = max(self.min, self.bounds[-1]) if self.bounds else self.min
            value = lo + max(0.0, self.max - lo) * fraction
            return min(max(value, self.min), self.max)
        return self.max

    def snapshot_value(self) -> Any:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "buckets": {
                **{str(b): c for b, c in zip(self.bounds, self.bucket_counts)},
                "+Inf": self.bucket_counts[-1],
            },
        }


class _NullInstrument:
    """Shared no-op instrument handed out by a disabled registry."""

    __slots__ = ()
    name = ""
    labels: Dict[str, Any] = {}
    value = 0
    count = 0
    total = 0.0
    mean = 0.0
    kind = "null"

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot_value(self) -> Any:
        return None


NULL_COUNTER = _NullInstrument()
#: all instrument kinds share one null implementation
NULL_GAUGE = NULL_COUNTER
NULL_HISTOGRAM = NULL_COUNTER
NULL_HIGHWATER = NULL_COUNTER


class MetricsRegistry:
    """Series store keyed by ``(name, labels)`` plus lazy collectors."""

    def __init__(self, enabled: bool = True, max_series_per_name: int = 8192) -> None:
        self.enabled = enabled
        self.max_series_per_name = max_series_per_name
        self._series: Dict[str, Dict[LabelKey, Any]] = {}
        #: (name, labels, fn) triples sampled only at snapshot time
        self._collectors: List[Tuple[str, Dict[str, Any], Callable[[], Any]]] = []
        #: series refused because a name hit the cardinality cap
        self.dropped_series = 0

    # -- lifecycle -------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        """Stop recording.  Instruments already handed out keep working
        (they are plain objects); new requests return null instruments and
        snapshots report nothing."""
        self.enabled = False

    # -- instrument factories -----------------------------------------------------

    def _get(self, factory, null, name: str, labels: Dict[str, Any], **kwargs):
        if not self.enabled:
            return null
        per_name = self._series.setdefault(name, {})
        key = _label_key(labels)
        instrument = per_name.get(key)
        if instrument is None:
            if len(per_name) >= self.max_series_per_name:
                self.dropped_series += 1
                return null
            instrument = factory(name, labels, **kwargs)
            per_name[key] = instrument
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, NULL_COUNTER, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, NULL_GAUGE, name, labels)

    def highwater(self, name: str, **labels: Any) -> HighWater:
        return self._get(HighWater, NULL_HIGHWATER, name, labels)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS, **labels: Any
    ) -> Histogram:
        return self._get(Histogram, NULL_HISTOGRAM, name, labels, buckets=buckets)

    def collect(self, name: str, fn: Callable[[], Any], **labels: Any) -> None:
        """Register a zero-hot-path-cost series: ``fn`` is called only when
        a snapshot is taken and should return a number (or None to skip)."""
        if not self.enabled:
            return
        self._collectors.append((name, labels, fn))

    # -- queries ---------------------------------------------------------------------

    def value(self, name: str, **labels: Any) -> Any:
        """Current value of one series (None when absent)."""
        per_name = self._series.get(name)
        if per_name is not None:
            instrument = per_name.get(_label_key(labels))
            if instrument is not None:
                return instrument.snapshot_value()
        key = _label_key(labels)
        for cname, clabels, fn in self._collectors:
            if cname == name and _label_key(clabels) == key:
                return fn()
        return None

    def series_count(self, name: Optional[str] = None) -> int:
        if name is not None:
            return len(self._series.get(name, {}))
        return sum(len(v) for v in self._series.values())

    def snapshot(self) -> Dict[str, Any]:
        """All series, collectors included, as a JSON-ready dict."""
        out: Dict[str, Any] = {
            "enabled": self.enabled,
            "dropped_series": self.dropped_series,
            "series": {},
        }
        if not self.enabled:
            return out
        series = out["series"]
        for name in sorted(self._series):
            rows = []
            for key in sorted(self._series[name], key=repr):
                instrument = self._series[name][key]
                rows.append(
                    {
                        "labels": {k: _jsonable(v) for k, v in key},
                        "type": instrument.kind,
                        "value": instrument.snapshot_value(),
                    }
                )
            series[name] = rows
        for name, labels, fn in self._collectors:
            value = fn()
            if value is None:
                continue
            series.setdefault(name, []).append(
                {
                    "labels": {k: _jsonable(v) for k, v in _label_key(labels)},
                    "type": "collected",
                    "value": _jsonable(value),
                }
            )
        return out

    def total(self, name: str) -> float:
        """Sum a numeric series across all labels (collectors included)."""
        result = 0.0
        for instrument in self._series.get(name, {}).values():
            value = instrument.snapshot_value()
            if isinstance(value, (int, float)):
                result += value
        for cname, _labels, fn in self._collectors:
            if cname == name:
                value = fn()
                if isinstance(value, (int, float)):
                    result += value
        return result


def _jsonable(value: Any) -> Any:
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)
