"""The benchmark-regression trajectory: archive, compare, gate.

Autonet's reconfiguration-time tables are longitudinal claims -- "a
failed link is configured around in about a second" stays true only if
someone keeps measuring.  This module closes that loop over the
``repro.bench/1`` documents every bench emits:

* **Archive.**  ``bench_util --archive DIR`` (and :func:`archive_document`
  here) appends each document to ``<dir>/<bench>.history.jsonl``, one
  line per run keyed by git SHA, seed, and topology, so the trajectory
  of every metric is a greppable file instead of CI-artifact archaeology.
* **Compare.**  :func:`compare` flattens the newest document into
  ``result/row/metric`` scalars and checks each against a *baseline
  window* (one committed document, a directory of them, or a history
  file) with per-metric tolerance bands: ``max(rel * |mean|, abs,
  sigma * stdev)`` around the baseline mean, where the stdev comes from
  the window itself or from ``--repeat`` statistics embedded in the
  baseline document.
* **Gate.**  ``python -m repro.obs regress`` emits the verdict as a
  ``repro.obs.regress/1`` document and exits non-zero on any
  out-of-band metric -- the CI ``bench-regress`` job blocks on it.

Both directions of the band fail: a metric that *improved* past the band
means the baseline is stale and must be re-committed deliberately, not
silently absorbed.
"""

from __future__ import annotations

import fnmatch
import json
import math
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.export import validate_document

#: bump the suffix when the verdict layout changes incompatibly
REGRESS_SCHEMA = "repro.obs.regress/1"

#: statuses a comparison can land on (``out-of-band`` fails the gate)
STATUSES = ("ok", "out-of-band", "new", "missing")


# -- the archive ----------------------------------------------------------------------


def archive_document(
    archive_dir: str,
    doc: Dict[str, Any],
    sha: str = "",
    topology: str = "",
) -> str:
    """Append one validated bench document to its per-bench history.

    Returns the history path.  Entries carry the identity triple the
    comparator keys on: git SHA (``sha`` argument, ``REPRO_GIT_SHA``, or
    ``unknown``), the document's seed, and the topology (argument or
    best-effort from the first result row).
    """
    validate_document(doc)
    os.makedirs(archive_dir, exist_ok=True)
    path = os.path.join(archive_dir, f"{doc['bench']}.history.jsonl")
    entry = {
        "sha": sha or os.environ.get("REPRO_GIT_SHA", "") or "unknown",
        "seed": doc.get("seed"),
        "topology": topology or _guess_topology(doc),
        "doc": doc,
    }
    with open(path, "a") as fh:
        json.dump(entry, fh, sort_keys=False)
        fh.write("\n")
    return path


def load_history(path: str) -> List[Dict[str, Any]]:
    """Read a history file back: one dict per archived run, in order."""
    entries = []
    with open(path) as fh:
        for i, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            if not isinstance(entry, dict) or "doc" not in entry:
                raise ValueError(f"{path}:{i + 1}: not a history entry")
            validate_document(entry["doc"])
            entries.append(entry)
    return entries


def _guess_topology(doc: Dict[str, Any]) -> str:
    """Best-effort topology key: the first row cell under a header that
    names a topology, else empty."""
    for result in doc.get("results", []):
        headers = [h.lower() for h in result.get("headers", [])]
        for i, header in enumerate(headers):
            if "topolog" in header or header == "network":
                for row in result.get("rows", []):
                    if i < len(row) and isinstance(row[i], str):
                        return row[i]
    return ""


# -- flattening a document into metrics ------------------------------------------------


def metrics_of(doc: Dict[str, Any]) -> Dict[str, float]:
    """Flatten a bench document into ``result/row/metric`` scalars.

    Row key is the first cell (stringified); numeric cells under the
    remaining headers become metrics.  Top-level numeric telemetry
    values join as ``result/telemetry/<key>``.
    """
    out: Dict[str, float] = {}
    for result in doc.get("results", []):
        rname = result["name"]
        headers = result["headers"]
        for row in result["rows"]:
            if not row:
                continue
            row_key = str(row[0])
            for header, cell in zip(headers[1:], row[1:]):
                value = _numeric(cell)
                if value is not None:
                    out[f"{rname}/{row_key}/{header}"] = value
        telemetry = result.get("telemetry") or {}
        for key in sorted(telemetry):
            value = _numeric(telemetry[key])
            if value is not None:
                out[f"{rname}/telemetry/{key}"] = value
    return out


def repeat_stats_of(doc: Dict[str, Any]) -> Dict[str, Tuple[float, float]]:
    """(mean, stdev) per metric from ``--repeat`` statistics embedded in
    the document's telemetry (see bench_util), empty if absent."""
    out: Dict[str, Tuple[float, float]] = {}
    for result in doc.get("results", []):
        repeat = (result.get("telemetry") or {}).get("repeat")
        if not isinstance(repeat, dict):
            continue
        for key, stats in (repeat.get("metrics") or {}).items():
            mean = _numeric(stats.get("mean"))
            stdev = _numeric(stats.get("stdev"))
            if mean is not None:
                out[f"{result['name']}/{key}"] = (mean, stdev or 0.0)
    return out


def _numeric(cell: Any) -> Optional[float]:
    if isinstance(cell, bool) or not isinstance(cell, (int, float)):
        # a numeric string cell ("287.3") still counts as a metric
        if isinstance(cell, str):
            try:
                return float(cell)
            except ValueError:
                return None
        return None
    if isinstance(cell, float) and not math.isfinite(cell):
        return None
    return float(cell)


# -- tolerance bands -------------------------------------------------------------------


#: which band edges fail the gate.  ``both`` (the default) fails on any
#: departure; ``floor`` fails only below the band (throughput metrics,
#: where an improvement past the band is welcome, not suspicious);
#: ``ceiling`` fails only above it (latency / wall-time metrics).
DIRECTIONS = ("both", "floor", "ceiling")


def _best_match(metric: str, patterns: Dict[str, Any]) -> Optional[str]:
    """The most specific fnmatch pattern matching ``metric``: longest
    pattern wins (so ``bench/telemetry/x`` beats ``*/telemetry/*``),
    lexicographic order breaks ties deterministically."""
    best = None
    for pattern in sorted(patterns):
        if fnmatch.fnmatchcase(metric, pattern):
            if best is None or len(pattern) > len(best):
                best = pattern
    return best


@dataclass
class Tolerance:
    """Band half-width around the baseline mean:
    ``max(rel * |mean|, abs, sigma * stdev)``."""

    rel: float = 0.25
    abs: float = 1e-9
    sigma: float = 4.0
    #: fnmatch pattern -> relative tolerance override (per-metric bands)
    overrides: Dict[str, float] = field(default_factory=dict)
    #: fnmatch pattern -> direction override (see DIRECTIONS)
    directions: Dict[str, str] = field(default_factory=dict)

    def rel_for(self, metric: str) -> float:
        match = _best_match(metric, self.overrides)
        return self.rel if match is None else self.overrides[match]

    def direction_for(self, metric: str) -> str:
        match = _best_match(metric, self.directions)
        return "both" if match is None else self.directions[match]

    def band(self, metric: str, mean: float, stdev: float) -> Tuple[float, float]:
        half = max(self.rel_for(metric) * abs(mean), self.abs, self.sigma * stdev)
        return (mean - half, mean + half)

    def in_band(self, metric: str, value: float, lo: float, hi: float) -> bool:
        direction = self.direction_for(metric)
        if direction == "floor":
            return value >= lo
        if direction == "ceiling":
            return value <= hi
        return lo <= value <= hi

    @classmethod
    def load_overrides(cls, path: str, **kwargs: Any) -> "Tolerance":
        """A Tolerance whose per-metric overrides come from a JSON file.

        Each entry maps an fnmatch pattern either to a relative tolerance
        (``{"pat": 0.5}``, both directions gate, the original form) or to
        an object ``{"rel": 0.5, "direction": "floor"}`` where
        ``direction`` picks which band edges fail (see DIRECTIONS).
        """
        with open(path) as fh:
            raw = json.load(fh)
        if not isinstance(raw, dict):
            raise ValueError(f"{path}: expected {{pattern: tolerance}}")
        overrides: Dict[str, float] = {}
        directions: Dict[str, str] = {}
        for key, value in raw.items():
            if not isinstance(key, str):
                raise ValueError(f"{path}: pattern must be a string, got {key!r}")
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                overrides[key] = float(value)
                continue
            if isinstance(value, dict):
                rel = value.get("rel")
                direction = value.get("direction", "both")
                if (
                    isinstance(rel, (int, float))
                    and not isinstance(rel, bool)
                    and direction in DIRECTIONS
                    and set(value) <= {"rel", "direction"}
                ):
                    overrides[key] = float(rel)
                    if direction != "both":
                        directions[key] = direction
                    continue
            raise ValueError(
                f"{path}: {key!r} must map to a relative tolerance or "
                f"{{'rel': <num>, 'direction': {DIRECTIONS}}}, got {value!r}"
            )
        return cls(overrides=overrides, directions=directions, **kwargs)


# -- the comparator --------------------------------------------------------------------


def baseline_window(path: str, bench: str) -> List[Dict[str, Any]]:
    """Resolve a baseline source into a window of documents for ``bench``.

    ``path`` may be a single ``repro.bench/1`` JSON file, a
    ``*.history.jsonl`` archive, or a directory searched for
    ``<bench>.json`` then ``<bench>.history.jsonl``.
    """
    if os.path.isdir(path):
        for candidate in (f"{bench}.json", f"{bench}.history.jsonl"):
            full = os.path.join(path, candidate)
            if os.path.exists(full):
                path = full
                break
        else:
            raise FileNotFoundError(
                f"no baseline for bench {bench!r} in {path} "
                f"(looked for {bench}.json and {bench}.history.jsonl)"
            )
    if path.endswith(".jsonl"):
        docs = [entry["doc"] for entry in load_history(path)]
    else:
        with open(path) as fh:
            docs = [validate_document(json.load(fh))]
    docs = [d for d in docs if d.get("bench") == bench]
    if not docs:
        raise ValueError(f"{path}: no documents for bench {bench!r}")
    return docs


def compare(
    current: Dict[str, Any],
    baseline_docs: List[Dict[str, Any]],
    tolerance: Optional[Tolerance] = None,
    strict: bool = False,
) -> Dict[str, Any]:
    """Diff one document against a baseline window; returns the
    ``repro.obs.regress/1`` verdict document.

    Per metric: baseline mean/stdev over the window (repeat statistics
    in a single-doc window supply the stdev), band from ``tolerance``,
    status ``ok`` / ``out-of-band`` / ``new`` / ``missing``.  ``strict``
    makes missing metrics fail too.
    """
    validate_document(current)
    tolerance = tolerance or Tolerance()
    now = metrics_of(current)
    windows: Dict[str, List[float]] = {}
    for doc in baseline_docs:
        for key, value in metrics_of(doc).items():
            windows.setdefault(key, []).append(value)
    embedded = repeat_stats_of(baseline_docs[-1]) if len(baseline_docs) == 1 else {}

    comparisons: List[Dict[str, Any]] = []
    failing = 0
    for key in sorted(set(now) | set(windows)):
        if key not in windows:
            comparisons.append({
                "metric": key, "status": "new",
                "current": now[key], "baseline_mean": None,
                "baseline_stdev": None, "band_lo": None, "band_hi": None,
            })
            continue
        if key not in now:
            comparisons.append({
                "metric": key, "status": "missing",
                "current": None, "baseline_mean": _mean(windows[key]),
                "baseline_stdev": None, "band_lo": None, "band_hi": None,
            })
            if strict:
                failing += 1
            continue
        values = windows[key]
        mean = _mean(values)
        stdev = _stdev(values)
        if key in embedded:
            mean, stdev = embedded[key]
        lo, hi = tolerance.band(key, mean, stdev)
        in_band = tolerance.in_band(key, now[key], lo, hi)
        if not in_band:
            failing += 1
        comparisons.append({
            "metric": key,
            "status": "ok" if in_band else "out-of-band",
            "direction": tolerance.direction_for(key),
            "current": now[key],
            "baseline_mean": mean,
            "baseline_stdev": stdev,
            "band_lo": lo,
            "band_hi": hi,
        })
    return {
        "schema": REGRESS_SCHEMA,
        "bench": current["bench"],
        "seed": current.get("seed"),
        "baseline_runs": len(baseline_docs),
        "tolerance": {
            "rel": tolerance.rel,
            "abs": tolerance.abs,
            "sigma": tolerance.sigma,
            "overrides": dict(tolerance.overrides),
            "directions": dict(tolerance.directions),
        },
        "strict": strict,
        "comparisons": comparisons,
        "out_of_band": failing,
        "verdict": "ok" if failing == 0 else "regression",
    }


def _mean(values: List[float]) -> float:
    return sum(values) / len(values)


def _stdev(values: List[float]) -> float:
    if len(values) < 2:
        return 0.0
    mean = _mean(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / (len(values) - 1))


# -- the verdict artifact --------------------------------------------------------------


class RegressSchemaError(ValueError):
    """Raised by :func:`validate_regress` on a malformed verdict."""


def _fail(path: str, why: str) -> None:
    raise RegressSchemaError(f"{path}: {why}")


def validate_regress(doc: Any) -> Dict[str, Any]:
    """Structurally validate a verdict document; returns it on success."""
    if not isinstance(doc, dict):
        _fail("$", f"expected object, got {type(doc).__name__}")
    if doc.get("schema") != REGRESS_SCHEMA:
        _fail("$.schema", f"expected {REGRESS_SCHEMA!r}, got {doc.get('schema')!r}")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        _fail("$.bench", "expected non-empty string")
    if doc.get("verdict") not in ("ok", "regression"):
        _fail("$.verdict", "expected 'ok' or 'regression'")
    if not isinstance(doc.get("out_of_band"), int) or doc["out_of_band"] < 0:
        _fail("$.out_of_band", "expected non-negative int")
    if not isinstance(doc.get("baseline_runs"), int) or doc["baseline_runs"] < 1:
        _fail("$.baseline_runs", "expected positive int")
    comparisons = doc.get("comparisons")
    if not isinstance(comparisons, list):
        _fail("$.comparisons", "expected array")
    for i, entry in enumerate(comparisons):
        path = f"$.comparisons[{i}]"
        if not isinstance(entry, dict):
            _fail(path, "expected object")
        if not isinstance(entry.get("metric"), str) or not entry["metric"]:
            _fail(f"{path}.metric", "expected non-empty string")
        if entry.get("status") not in STATUSES:
            _fail(f"{path}.status", f"expected one of {STATUSES}")
        for numeric_field in ("current", "baseline_mean", "baseline_stdev",
                              "band_lo", "band_hi"):
            value = entry.get(numeric_field)
            if value is not None and (
                not isinstance(value, (int, float)) or isinstance(value, bool)
            ):
                _fail(f"{path}.{numeric_field}", "expected number or null")
    count = sum(1 for c in comparisons if c["status"] == "out-of-band")
    if doc.get("strict"):
        count += sum(1 for c in comparisons if c["status"] == "missing")
    if count != doc["out_of_band"]:
        _fail("$.out_of_band", f"declares {doc['out_of_band']}, counted {count}")
    return doc


def write_regress(path: str, doc: Dict[str, Any]) -> None:
    """Validate and write a verdict document as JSON."""
    validate_regress(doc)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")


def read_regress(path: str) -> Dict[str, Any]:
    """Load and validate a verdict document from disk."""
    with open(path) as fh:
        return validate_regress(json.load(fh))


def render_verdict(doc: Dict[str, Any], limit: int = 20) -> str:
    """The verdict as terminal text (the CI log's view of the gate)."""
    lines = [
        f"regress {doc['bench']}: {doc['verdict'].upper()} "
        f"({doc['out_of_band']} out-of-band of {len(doc['comparisons'])} metrics, "
        f"baseline window of {doc['baseline_runs']} run(s))"
    ]
    shown = 0
    for entry in doc["comparisons"]:
        if entry["status"] == "ok":
            continue
        if shown >= limit:
            lines.append("  ...")
            break
        shown += 1
        if entry["status"] == "out-of-band":
            lines.append(
                f"  OUT OF BAND {entry['metric']}: {entry['current']:g} "
                f"outside [{entry['band_lo']:g}, {entry['band_hi']:g}] "
                f"(baseline {entry['baseline_mean']:g})"
            )
        elif entry["status"] == "new":
            lines.append(f"  new metric {entry['metric']}: {entry['current']:g}")
        else:
            lines.append(f"  missing metric {entry['metric']}")
    return "\n".join(lines)
