"""Longitudinal telemetry: the in-simulation time-series sampler (§6.7).

PR 1's metrics registry answers "what are the totals *now*"; this module
answers "what did they do *over time*" -- the view Autonet's operators
actually watched.  A :class:`TimeSeriesSampler` attached to a simulator
schedules one periodic *sample event*; each tick it

* walks the metrics registry and appends every counter / gauge /
  high-water series' current value,
* calls every registered *collector* (FIFO occupancy, ports per state,
  epoch number, blackout in-progress flags -- wired by
  :class:`repro.network.Network` when built with ``timeseries=...``),
* and keeps everything in **bounded per-series ring buffers**: overflow
  evicts the oldest sample and counts the loss, exactly like the flight
  recorder's component rings.

Discipline (mirrors the flight recorder):

* **Null fast path.**  ``Simulator.sampler`` is ``None`` by default and
  nothing in the simulation ever touches the sampler from a hot path --
  sampling is *pull-only*, driven by the sampler's own event.  With the
  sampler off, runs are byte-identical to a build without this module.
* **Observational purity.**  Collectors only read component state; the
  FIFO occupancy collector uses :meth:`~repro.net.fifo.ReceiveFifo.
  peek_level`, which projects the fluid model to "now" without advancing
  it, so sampling never perturbs the float trajectory of the run.
* **Bounded everything.**  Series count, ring capacity, and the span-mark
  ring are all capped; ``RS304`` (repro.staticcheck) keeps call sites
  honest about literal names and bounded capacities.

The recorded history exports as a ``repro.obs.timeseries/1`` JSON
artifact (structural validator included) and is queryable -- live or from
a loaded artifact -- through :class:`TimeSeries` / :class:`SeriesData`
(``window`` / ``delta`` / ``resample``), which the doctor and the
regression comparator build on.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

#: bump the suffix when the artifact layout changes incompatibly
TIMESERIES_SCHEMA = "repro.obs.timeseries/1"

MS = 1_000_000

LabelKey = Tuple[Tuple[str, Any], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


def _jsonable(value: Any) -> Any:
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


@dataclass
class TimeSeriesConfig:
    """Everything that determines a sampler, and nothing else."""

    #: simulated time between samples
    interval_ns: int = 50 * MS
    #: samples retained per series (ring capacity)
    capacity: int = 1024
    #: also sample every counter/gauge/highwater in the metrics registry
    include_registry: bool = True
    #: series refused beyond this count (cardinality backstop)
    max_series: int = 4096
    #: span events retained in the mark ring (the watch dashboard's
    #: "recent reconfiguration events" column)
    mark_capacity: int = 256

    @classmethod
    def coerce(cls, value: "bool | int | TimeSeriesConfig | None"
               ) -> "Optional[TimeSeriesConfig]":
        """Normalize ``Network(timeseries=...)``: False/None -> off,
        True -> defaults, int -> sampling interval in ns."""
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, int):
            return cls(interval_ns=value)
        return value


class SeriesRing:
    """Bounded ring of samples for one series, aligned to sampler ticks.

    The sampler appends to every live ring each tick, so a ring created
    at tick ``k`` holds values for ticks ``k, k+1, ...`` (newest
    ``capacity`` of them); alignment against the shared tick ring is
    positional from the end.
    """

    __slots__ = ("name", "labels", "kind", "capacity", "_buf", "_next",
                 "total", "created_tick")

    def __init__(self, name: str, labels: Dict[str, Any], kind: str,
                 capacity: int, created_tick: int) -> None:
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive: {capacity}")
        self.name = name
        self.labels = labels
        self.kind = kind
        self.capacity = capacity
        self._buf: List[Optional[float]] = [None] * capacity
        self._next = 0
        #: total samples ever appended (>= len(self))
        self.total = 0
        #: global tick index at which this series first sampled
        self.created_tick = created_tick

    def append(self, value: Optional[float]) -> None:
        self._buf[self._next] = value
        self._next = (self._next + 1) % self.capacity
        self.total += 1

    @property
    def dropped(self) -> int:
        return max(0, self.total - self.capacity)

    def values(self) -> List[Optional[float]]:
        """Retained samples, oldest first."""
        if self.total < self.capacity:
            return list(self._buf[: self.total])
        return self._buf[self._next:] + self._buf[: self._next]

    def __len__(self) -> int:
        return min(self.total, self.capacity)


class TimeSeriesSampler:
    """Periodic in-sim sampler feeding bounded per-series rings.

    Attach with ``sim.sampler = sampler; sampler.start()`` (or build the
    network with ``Network(timeseries=...)``, which does both).  The
    sampler schedules its own tick events; nothing else in the
    simulation ever calls into it, so a detached sampler costs zero.
    """

    def __init__(self, sim, config: Optional[TimeSeriesConfig] = None) -> None:
        self.sim = sim
        self.config = config or TimeSeriesConfig()
        #: shared tick-time ring (one entry per sample event)
        self._ticks = SeriesRing(
            "ticks", {}, "ticks", self.config.capacity, created_tick=0
        )
        self._series: Dict[Tuple[str, LabelKey], SeriesRing] = {}
        #: (name, labels, ring, fn) sampled every tick
        self._collectors: List[Tuple[str, Dict[str, Any], SeriesRing,
                                     Callable[[], Optional[float]]]] = []
        #: bounded ring of span events (reconfiguration phase marks)
        self._marks = SeriesRing(
            "marks", {}, "marks", self.config.mark_capacity, created_tick=0
        )
        self._mark_rows: List[Tuple[int, str, str]] = []
        #: series refused because max_series was reached
        self.dropped_series = 0
        #: total sample events taken
        self.samples_taken = 0
        self._running = False
        self._handle = None

    # -- registration -------------------------------------------------------------

    def add_collector(self, name: str, fn: Callable[[], Optional[float]],
                      kind: str = "gauge", **labels: Any) -> None:
        """Register a pull-only series: ``fn`` is called once per tick
        and returns a number, or None for "no sample this tick" (e.g. a
        crashed switch).  Names must be literal and rings are bounded --
        RS304 enforces both at call sites."""
        ring = self._ring(name, labels, kind)
        if ring is None:
            return
        self._collectors.append((name, labels, ring, fn))

    def _ring(self, name: str, labels: Dict[str, Any],
              kind: str) -> Optional[SeriesRing]:
        key = (name, _label_key(labels))
        ring = self._series.get(key)
        if ring is None:
            if len(self._series) >= self.config.max_series:
                self.dropped_series += 1
                return None
            ring = SeriesRing(
                name, dict(labels), kind, self.config.capacity,
                created_tick=self.samples_taken,
            )
            self._series[key] = ring
        return ring

    def mark(self, t_ns: int, component: str, event: str) -> None:
        """Record one span event into the bounded mark ring (fed by the
        ReconfigTracer listener that Network installs)."""
        if len(self._mark_rows) >= self.config.mark_capacity:
            # evict oldest; the ring stays bounded like every other buffer
            del self._mark_rows[0]
        self._mark_rows.append((t_ns, component, event))
        self._marks.total += 1

    # -- the sample loop ----------------------------------------------------------

    def start(self) -> None:
        """Schedule the first sample event."""
        if self._running:
            return
        self._running = True
        self._handle = self.sim.after(self.config.interval_ns, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        if not self._running:
            return
        self._ticks.append(float(self.sim.now))
        before = {key: ring.total for key, ring in self._series.items()}
        for _name, _labels, ring, fn in self._collectors:
            value = fn()
            ring.append(None if value is None else float(value))
        if self.config.include_registry:
            self._sample_registry()
        # any series that did not sample this tick (e.g. a registry
        # series that vanished) pads with None to stay tick-aligned
        for key, ring in self._series.items():
            if ring.total == before.get(key, ring.total - 1):
                ring.append(None)
        self.samples_taken += 1
        self._handle = self.sim.after(self.config.interval_ns, self._tick)

    #: registry instrument kinds the sampler records (histograms export
    #: their own quantile snapshot; sampling them is the caller's call)
    REGISTRY_KINDS = frozenset({"counter", "gauge", "highwater"})

    def _sample_registry(self) -> None:
        metrics = getattr(self.sim, "metrics", None)
        if metrics is None or not metrics.enabled:
            return
        for name in metrics._series:
            for key, instrument in metrics._series[name].items():
                if instrument.kind not in self.REGISTRY_KINDS:
                    continue
                ring = self._series.get((name, key))
                if ring is None:
                    ring = self._ring(name, dict(key), instrument.kind)
                    if ring is None:
                        continue
                ring.append(float(instrument.value))

    # -- queries -------------------------------------------------------------------

    def ticks(self) -> List[int]:
        return [int(t) for t in self._ticks.values() if t is not None]

    def view(self) -> "TimeSeries":
        """A query view over the live rings (snapshot, not a live link)."""
        return TimeSeries.from_document(self.document())

    def series_count(self) -> int:
        return len(self._series)

    # -- export --------------------------------------------------------------------

    def document(self, name: str = "") -> Dict[str, Any]:
        """The ``repro.obs.timeseries/1`` artifact as a dict."""
        ticks = self.ticks()
        series = []
        for (sname, key), ring in sorted(
            self._series.items(), key=lambda item: (item[0][0], repr(item[0][1]))
        ):
            values = ring.values()
            # left-pad series younger than the retained tick window so
            # every values array is positionally aligned with `ticks`
            pad = len(ticks) - len(values)
            if pad > 0:
                values = [None] * pad + values
            elif pad < 0:  # pragma: no cover - rings are tick-aligned
                values = values[-len(ticks):]
            series.append({
                "name": sname,
                "labels": {k: _jsonable(v) for k, v in key},
                "kind": ring.kind,
                "dropped": ring.dropped,
                "values": values,
            })
        return {
            "schema": TIMESERIES_SCHEMA,
            "name": name,
            "interval_ns": self.config.interval_ns,
            "capacity": self.config.capacity,
            "samples_taken": self.samples_taken,
            "dropped_ticks": self._ticks.dropped,
            "dropped_series": self.dropped_series,
            "ticks": ticks,
            "series": series,
            "marks": [
                {"t_ns": t, "component": component, "event": event}
                for t, component, event in self._mark_rows
            ],
        }


# -- the query API -------------------------------------------------------------------


class SeriesData:
    """One series' retained samples, with window/delta/resample queries."""

    __slots__ = ("name", "labels", "kind", "ticks", "values")

    def __init__(self, name: str, labels: Dict[str, Any], kind: str,
                 ticks: List[int], values: List[Optional[float]]) -> None:
        if len(ticks) != len(values):
            raise ValueError(
                f"series {name}: {len(values)} values for {len(ticks)} ticks"
            )
        self.name = name
        self.labels = labels
        self.kind = kind
        self.ticks = ticks
        self.values = values

    def __len__(self) -> int:
        return len(self.ticks)

    def points(self) -> List[Tuple[int, float]]:
        """(t_ns, value) pairs, gaps (None samples) omitted."""
        return [(t, v) for t, v in zip(self.ticks, self.values) if v is not None]

    def window(self, t0_ns: int, t1_ns: int) -> "SeriesData":
        """The sub-series with ``t0_ns <= t < t1_ns``."""
        ticks, values = [], []
        for t, v in zip(self.ticks, self.values):
            if t0_ns <= t < t1_ns:
                ticks.append(t)
                values.append(v)
        return SeriesData(self.name, self.labels, self.kind, ticks, values)

    def delta(self) -> Optional[float]:
        """Last minus first non-None sample (counter growth over the
        window); None when fewer than two samples exist."""
        points = self.points()
        if len(points) < 2:
            return None
        return points[-1][1] - points[0][1]

    def last(self) -> Optional[float]:
        points = self.points()
        return points[-1][1] if points else None

    def max(self) -> Optional[float]:
        points = self.points()
        return max(v for _t, v in points) if points else None

    def min(self) -> Optional[float]:
        points = self.points()
        return min(v for _t, v in points) if points else None

    def resample(self, step_ns: int, how: str = "last") -> "SeriesData":
        """Downsample onto a coarser grid: one sample per ``step_ns``
        bucket (bucket start as the tick), aggregated by ``how``:
        ``last`` (gauge semantics), ``mean``, ``max``, or ``min``."""
        if step_ns <= 0:
            raise ValueError(f"resample step must be positive: {step_ns}")
        if how not in ("last", "mean", "max", "min"):
            raise ValueError(f"unknown resample aggregate {how!r}")
        buckets: Dict[int, List[float]] = {}
        order: List[int] = []
        for t, v in self.points():
            start = (t // step_ns) * step_ns
            if start not in buckets:
                buckets[start] = []
                order.append(start)
            buckets[start].append(v)
        ticks, values = [], []
        for start in order:
            vs = buckets[start]
            if how == "last":
                agg = vs[-1]
            elif how == "mean":
                agg = sum(vs) / len(vs)
            elif how == "max":
                agg = max(vs)
            else:
                agg = min(vs)
            ticks.append(start)
            values.append(agg)
        return SeriesData(self.name, self.labels, self.kind, ticks, values)


class TimeSeries:
    """Query wrapper over a ``repro.obs.timeseries/1`` document."""

    def __init__(self, doc: Dict[str, Any]) -> None:
        self.doc = doc
        self._by_key: Dict[Tuple[str, LabelKey], Dict[str, Any]] = {}
        for entry in doc["series"]:
            key = (entry["name"], _label_key(entry["labels"]))
            self._by_key[key] = entry

    @classmethod
    def from_document(cls, doc: Dict[str, Any]) -> "TimeSeries":
        return cls(validate_timeseries(doc))

    @classmethod
    def load(cls, path: str) -> "TimeSeries":
        return cls.from_document(read_timeseries(path))

    @property
    def ticks(self) -> List[int]:
        return self.doc["ticks"]

    @property
    def interval_ns(self) -> int:
        return self.doc["interval_ns"]

    def names(self) -> List[str]:
        return sorted({entry["name"] for entry in self.doc["series"]})

    def series(self, name: str, **labels: Any) -> Optional[SeriesData]:
        entry = self._by_key.get((name, _label_key(labels)))
        if entry is None:
            return None
        return SeriesData(
            entry["name"], dict(entry["labels"]), entry["kind"],
            list(self.doc["ticks"]), list(entry["values"]),
        )

    def select(self, name: str, **labels: Any) -> List[SeriesData]:
        """Every series of ``name`` whose labels are a superset of the
        given ones (label-subset match, like a PromQL selector)."""
        wanted = set(labels.items())
        out = []
        for (sname, _key), entry in sorted(
            self._by_key.items(), key=lambda item: (item[0][0], repr(item[0][1]))
        ):
            if sname != name:
                continue
            if not wanted <= set(entry["labels"].items()):
                continue
            out.append(SeriesData(
                entry["name"], dict(entry["labels"]), entry["kind"],
                list(self.doc["ticks"]), list(entry["values"]),
            ))
        return out

    def marks(self) -> List[Dict[str, Any]]:
        return list(self.doc.get("marks", []))


# -- the artifact ---------------------------------------------------------------------


class TimeSeriesSchemaError(ValueError):
    """Raised by :func:`validate_timeseries` on a malformed document."""


def _fail(path: str, why: str) -> None:
    raise TimeSeriesSchemaError(f"{path}: {why}")


def validate_timeseries(doc: Any) -> Dict[str, Any]:
    """Structurally validate a timeseries document; returns it on success."""
    if not isinstance(doc, dict):
        _fail("$", f"expected object, got {type(doc).__name__}")
    if doc.get("schema") != TIMESERIES_SCHEMA:
        _fail("$.schema", f"expected {TIMESERIES_SCHEMA!r}, got {doc.get('schema')!r}")
    if not isinstance(doc.get("name"), str):
        _fail("$.name", "expected string")
    for field in ("interval_ns", "capacity", "samples_taken",
                  "dropped_ticks", "dropped_series"):
        value = doc.get(field)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            _fail(f"$.{field}", "expected non-negative int")
    if doc["interval_ns"] <= 0:
        _fail("$.interval_ns", "expected positive int")
    ticks = doc.get("ticks")
    if not isinstance(ticks, list) or not all(
        isinstance(t, int) and not isinstance(t, bool) for t in ticks
    ):
        _fail("$.ticks", "expected array of ints")
    if any(b <= a for a, b in zip(ticks, ticks[1:])):
        _fail("$.ticks", "expected strictly increasing times")
    series = doc.get("series")
    if not isinstance(series, list):
        _fail("$.series", "expected array")
    for i, entry in enumerate(series):
        path = f"$.series[{i}]"
        if not isinstance(entry, dict):
            _fail(path, "expected object")
        if not isinstance(entry.get("name"), str) or not entry["name"]:
            _fail(f"{path}.name", "expected non-empty string")
        if not isinstance(entry.get("labels"), dict):
            _fail(f"{path}.labels", "expected object")
        if not isinstance(entry.get("kind"), str):
            _fail(f"{path}.kind", "expected string")
        dropped = entry.get("dropped")
        if not isinstance(dropped, int) or isinstance(dropped, bool) or dropped < 0:
            _fail(f"{path}.dropped", "expected non-negative int")
        values = entry.get("values")
        if not isinstance(values, list):
            _fail(f"{path}.values", "expected array")
        if len(values) != len(ticks):
            _fail(f"{path}.values",
                  f"{len(values)} values for {len(ticks)} ticks")
        for j, value in enumerate(values):
            if value is not None and (
                not isinstance(value, (int, float)) or isinstance(value, bool)
            ):
                _fail(f"{path}.values[{j}]", "expected number or null")
    marks = doc.get("marks")
    if not isinstance(marks, list):
        _fail("$.marks", "expected array")
    for i, entry in enumerate(marks):
        path = f"$.marks[{i}]"
        if not isinstance(entry, dict):
            _fail(path, "expected object")
        if not isinstance(entry.get("t_ns"), int):
            _fail(f"{path}.t_ns", "expected int")
        for field in ("component", "event"):
            if not isinstance(entry.get(field), str):
                _fail(f"{path}.{field}", "expected string")
    return doc


def write_timeseries(path: str, doc: Dict[str, Any]) -> None:
    """Validate and write a timeseries artifact as JSON."""
    validate_timeseries(doc)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")


def read_timeseries(path: str) -> Dict[str, Any]:
    """Load and validate a timeseries artifact from disk."""
    with open(path) as fh:
        return validate_timeseries(json.load(fh))
