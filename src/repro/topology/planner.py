"""An installation-planning recipe (section 7's future work).

The paper closes by asking for "simple recipes... for designing the
topology of the physical configuration": given a host count, site
personnel need the number of switches, the switch-to-switch pattern, and
host port assignments that meet Autonet's availability goal -- *no
failure of a single network component disconnects any host* (section
3.9).

:func:`plan_installation` implements the recipe the SRC LAN itself
follows: a torus of switches (every switch keeps four ports for trunks,
eight for hosts), each host dual-homed to two *different* switches, and
a verification pass proving the plan: the trunk graph is 2-connected
(any single switch or trunk may fail) and every host's two attachment
switches are distinct.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import networkx as nx

from repro.constants import PORTS_PER_SWITCH
from repro.topology.generators import TopologySpec, torus


@dataclass
class InstallationPlan:
    """A planned physical configuration."""

    spec: TopologySpec
    #: host name -> [(switch index, port), (switch index, port)]
    host_attachments: Dict[str, List[Tuple[int, int]]] = field(default_factory=dict)
    hosts_per_switch: int = 8
    notes: List[str] = field(default_factory=list)

    @property
    def n_switches(self) -> int:
        return self.spec.n_switches

    @property
    def n_hosts(self) -> int:
        return len(self.host_attachments)

    def host_capacity(self) -> int:
        """Dual-connected hosts this installation can still absorb."""
        return (self.n_switches * self.hosts_per_switch) // 2 - self.n_hosts

    def trunk_graph(self) -> "nx.Graph":
        g = nx.Graph()
        g.add_nodes_from(range(self.n_switches))
        g.add_edges_from((a, b) for a, _pa, b, _pb in self.spec.cables)
        return g

    def verify(self) -> List[str]:
        """Check the availability goal; returns a list of violations."""
        problems = []
        g = self.trunk_graph()
        if self.n_switches > 1:
            if not nx.is_connected(g):
                problems.append("trunk graph is not connected")
            elif self.n_switches > 2 and not nx.is_biconnected(g):
                cuts = list(nx.articulation_points(g))
                problems.append(f"single switch failures disconnect: {cuts}")
            if self.n_switches > 2:
                bridges = list(nx.bridges(g))
                if bridges:
                    problems.append(f"single trunk failures disconnect: {bridges}")
        seen_ports: set = set()
        for host, attachments in self.host_attachments.items():
            if len(attachments) == 2 and attachments[0][0] == attachments[1][0]:
                problems.append(f"{host}: both ports on the same switch")
            for sw, port in attachments:
                if (sw, port) in seen_ports:
                    problems.append(f"port sw{sw}.p{port} assigned twice")
                seen_ports.add((sw, port))
        return problems

    def summary(self) -> str:
        lines = [
            f"installation plan: {self.spec.name}",
            f"  switches           : {self.n_switches}",
            f"  trunk links        : {len(self.spec.cables)}",
            f"  dual-homed hosts   : {self.n_hosts}",
            f"  spare host capacity: {self.host_capacity()}",
            f"  trunk diameter     : {nx.diameter(self.trunk_graph()) if self.n_switches > 1 else 0}",
        ]
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


def plan_installation(
    n_hosts: int,
    hosts_per_switch: int = 8,
    name: str = "planned",
    max_switches: int = None,
) -> InstallationPlan:
    """The SRC recipe: a torus sized for the host population.

    Each dual-homed host consumes two host ports on different switches;
    with ``hosts_per_switch`` host ports per switch, N switches carry
    N * hosts_per_switch / 2 hosts.  The torus is kept as square as
    possible (short diameter => fast reconfiguration, section 6.6.5).
    """
    from repro.types import MAX_SWITCH_NUMBER

    if n_hosts < 1:
        raise ValueError("plan at least one host")
    if not 1 <= hosts_per_switch <= PORTS_PER_SWITCH - 2:
        raise ValueError("each switch needs at least two trunk ports")
    if max_switches is None:
        # one Autonet's short-address space holds 126 switch numbers
        max_switches = MAX_SWITCH_NUMBER

    needed = max(2, math.ceil(2 * n_hosts / hosts_per_switch))
    if needed > max_switches:
        raise ValueError(
            f"{n_hosts} dual-homed hosts need {needed} switches, exceeding "
            f"the limit of {max_switches}; partition the installation"
        )
    # squarest torus with at least `needed` switches that still fits the
    # switch-number space (a squarer torus has a shorter diameter, hence
    # faster reconfiguration, section 6.6.5)
    candidates = []
    for rows in range(2, needed + 1):
        cols = max(2, math.ceil(needed / rows))
        total = rows * cols
        if total <= max_switches:
            candidates.append((abs(rows - cols), total, rows, cols))
    if not candidates:
        raise ValueError(
            f"no torus of <= {max_switches} switches carries {n_hosts} hosts"
        )
    _sq, _total, rows, cols = min(candidates)
    spec = torus(rows, cols)
    spec.name = f"{name}-torus-{rows}x{cols}"

    plan = InstallationPlan(spec=spec, hosts_per_switch=hosts_per_switch)
    plan.notes.append(
        f"{rows}x{cols} torus: 4 trunk ports per switch, "
        f"{hosts_per_switch} host ports"
    )

    # round-robin hosts across switch pairs so the two attachments always
    # land on different (adjacent) switches
    n_switches = spec.n_switches
    next_port = {
        i: iter(spec.free_ports(i)[:hosts_per_switch]) for i in range(n_switches)
    }
    for h in range(n_hosts):
        primary = h % n_switches
        alternate = (primary + 1) % n_switches
        try:
            attachments = [
                (primary, next(next_port[primary])),
                (alternate, next(next_port[alternate])),
            ]
        except StopIteration:
            raise ValueError(
                f"host population {n_hosts} exceeds capacity of the "
                f"{rows}x{cols} torus"
            ) from None
        plan.host_attachments[f"host{h}"] = attachments
    return plan
