"""Topology generators: tori, meshes, trees, rings, random graphs, and the
SRC service LAN of section 5.5."""

from repro.topology.generators import (
    TopologySpec,
    expected_tree,
    line,
    mesh,
    random_regular,
    resolve_topology,
    ring,
    torus,
    tree,
    from_edges,
)
from repro.topology.planner import InstallationPlan, plan_installation
from repro.topology.src_lan import src_service_lan

__all__ = [
    "InstallationPlan",
    "plan_installation",
    "TopologySpec",
    "expected_tree",
    "line",
    "mesh",
    "random_regular",
    "resolve_topology",
    "ring",
    "torus",
    "tree",
    "from_edges",
    "src_service_lan",
]
