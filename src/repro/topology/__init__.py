"""Topology generators: tori, meshes, trees, rings, random graphs, and the
SRC service LAN of section 5.5."""

from repro.topology.generators import (
    TOPOLOGY_FAMILIES,
    TopologySpec,
    dcell,
    expected_tree,
    fat_tree,
    line,
    mesh,
    random_regular,
    resolve_topology,
    ring,
    topology_names,
    torus,
    tree,
    from_edges,
)
from repro.topology.planner import InstallationPlan, plan_installation
from repro.topology.src_lan import src_service_lan

__all__ = [
    "InstallationPlan",
    "plan_installation",
    "TOPOLOGY_FAMILIES",
    "TopologySpec",
    "dcell",
    "expected_tree",
    "fat_tree",
    "topology_names",
    "line",
    "mesh",
    "random_regular",
    "resolve_topology",
    "ring",
    "torus",
    "tree",
    "from_edges",
    "src_service_lan",
]
