"""The SRC service LAN of section 5.5.

Thirty switches arranged as an approximate 4 x 8 torus (two cells short of
a full 32), four of the twelve ports on each switch used for switch links
and eight for hosts, giving capacity for 120 dual-homed host connections.
The maximum switch-to-switch distance is six links (section 6.6.5).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.topology.generators import TopologySpec, from_edges
from repro.types import Uid


def src_service_lan(uids: Optional[List[Uid]] = None) -> TopologySpec:
    """The 30-switch approximate 4x8 torus of the paper."""
    rows, cols = 4, 8
    present = [(r, c) for r in range(rows) for c in range(cols)]
    # drop two cells to make it an *approximate* torus of 30 switches
    removed = {(3, 6), (3, 7)}
    present = [cell for cell in present if cell not in removed]
    index: Dict[Tuple[int, int], int] = {cell: i for i, cell in enumerate(present)}

    def neighbor(r: int, c: int, dr: int, dc: int) -> Optional[int]:
        cell = ((r + dr) % rows, (c + dc) % cols)
        if cell in index:
            return index[cell]
        # wrap again past removed cells along the same axis
        cell = ((r + 2 * dr) % rows, (c + 2 * dc) % cols)
        return index.get(cell)

    edges = set()
    for (r, c), i in index.items():
        for dr, dc in ((0, 1), (1, 0)):
            j = neighbor(r, c, dr, dc)
            if j is not None and j != i:
                edges.add((min(i, j), max(i, j)))

    spec = from_edges(sorted(edges), n=len(present), uids=uids, name="src-lan-30")
    return spec


def src_host_ports(spec: TopologySpec, hosts_per_switch: int = 8) -> Dict[int, List[int]]:
    """Eight host ports per switch (the ports not used for switch links)."""
    result: Dict[int, List[int]] = {}
    for i in range(spec.n_switches):
        free = spec.free_ports(i)
        result[i] = free[:hosts_per_switch]
    return result
