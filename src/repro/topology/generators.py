"""Switch-graph generators.

A :class:`TopologySpec` is the *installation*: switches with UIDs and the
cables between specific ports.  It is what the Network facade wires up,
and what pure-routing tests convert straight into a
:class:`~repro.core.topo.TopologyMap` via :func:`expected_tree` (the tree
the distributed algorithm provably converges to: rooted at the smallest
UID, minimum-level, ties by parent UID then port number).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.constants import PORTS_PER_SWITCH
from repro.core.topo import NetLink, PortRef, SwitchRecord, TopologyMap
from repro.types import Uid


@dataclass
class TopologySpec:
    """An installation: ``n`` switches and the cables between their ports."""

    uids: List[Uid]
    #: (switch index a, port at a, switch index b, port at b)
    cables: List[Tuple[int, int, int, int]] = field(default_factory=list)
    name: str = "topology"

    @property
    def n_switches(self) -> int:
        return len(self.uids)

    def degree(self, index: int) -> int:
        return sum(
            1 for a, _pa, b, _pb in self.cables if a == index or b == index
        ) + sum(1 for a, _pa, b, _pb in self.cables if a == index and b == index)

    def used_ports(self, index: int) -> List[int]:
        ports = []
        for a, pa, b, pb in self.cables:
            if a == index:
                ports.append(pa)
            if b == index:
                ports.append(pb)
        return sorted(ports)

    def free_ports(self, index: int, n_ports: int = PORTS_PER_SWITCH) -> List[int]:
        used = set(self.used_ports(index))
        return [p for p in range(1, n_ports + 1) if p not in used]


class _PortAllocator:
    """Hands out switch ports 1..12 in order as cables are added."""

    def __init__(self, n_switches: int, n_ports: int = PORTS_PER_SWITCH) -> None:
        self._next = [1] * n_switches
        self._limit = n_ports

    def take(self, index: int) -> int:
        port = self._next[index]
        if port > self._limit:
            raise ValueError(f"switch {index} is out of ports")
        self._next[index] = port + 1
        return port


def _default_uids(n: int, base: int = 0x1000) -> List[Uid]:
    return [Uid(base + i) for i in range(n)]


def from_edges(
    edges: Sequence[Tuple[int, int]],
    n: Optional[int] = None,
    uids: Optional[List[Uid]] = None,
    name: str = "custom",
) -> TopologySpec:
    """Build a spec from an (a, b) switch-index edge list."""
    if n is None:
        n = max(max(a, b) for a, b in edges) + 1 if edges else 1
    spec = TopologySpec(uids=uids or _default_uids(n), name=name)
    alloc = _PortAllocator(n)
    for a, b in edges:
        spec.cables.append((a, alloc.take(a), b, alloc.take(b)))
    return spec


def line(n: int, uids: Optional[List[Uid]] = None) -> TopologySpec:
    return from_edges([(i, i + 1) for i in range(n - 1)], n=n, uids=uids, name=f"line-{n}")


def ring(n: int, uids: Optional[List[Uid]] = None) -> TopologySpec:
    edges = [(i, (i + 1) % n) for i in range(n)]
    return from_edges(edges, n=n, uids=uids, name=f"ring-{n}")


def tree(depth: int, fanout: int = 2, uids: Optional[List[Uid]] = None) -> TopologySpec:
    """A complete tree with the given depth and fanout."""
    edges = []
    nodes = 1
    level_start = 0
    for _level in range(depth):
        next_start = nodes
        for parent in range(level_start, nodes):
            for _child in range(fanout):
                edges.append((parent, nodes))
                nodes += 1
        level_start = next_start
    return from_edges(edges, n=nodes, uids=uids, name=f"tree-d{depth}f{fanout}")


def mesh(rows: int, cols: int, uids: Optional[List[Uid]] = None) -> TopologySpec:
    edges = []
    for r in range(rows):
        for c in range(cols):
            i = r * cols + c
            if c + 1 < cols:
                edges.append((i, i + 1))
            if r + 1 < rows:
                edges.append((i, i + cols))
    return from_edges(edges, n=rows * cols, uids=uids, name=f"mesh-{rows}x{cols}")


def torus(rows: int, cols: int, uids: Optional[List[Uid]] = None) -> TopologySpec:
    """The paper's service-network shape: an approximate rows x cols torus."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            i = r * cols + c
            right = r * cols + (c + 1) % cols
            down = ((r + 1) % rows) * cols + c
            if cols > 2 or c + 1 < cols:
                edges.append((i, right))
            if rows > 2 or r + 1 < rows:
                edges.append((i, down))
    # dedupe (wrap edges of 2-wide tori appear twice)
    seen = set()
    unique = []
    for a, b in edges:
        key = (min(a, b), max(a, b), len([e for e in unique if set(e) == {a, b}]))
        if key in seen:
            continue
        seen.add(key)
        unique.append((a, b))
    return from_edges(unique, n=rows * cols, uids=uids, name=f"torus-{rows}x{cols}")


def random_regular(
    n: int,
    degree: int = 3,
    seed: int = 0,
    uids: Optional[List[Uid]] = None,
) -> TopologySpec:
    """A random connected graph with maximum degree ``degree``.

    Built as a random spanning tree plus random extra edges, which models
    organically grown installations better than a strict regular graph.
    """
    rng = random.Random(seed)
    order = list(range(n))
    rng.shuffle(order)
    edges = []
    deg = [0] * n
    for i in range(1, n):
        candidates = [j for j in order[:i] if deg[order[i]] < degree and deg[j] < degree]
        if not candidates:
            candidates = order[:i]
        parent = rng.choice(candidates)
        edges.append((parent, order[i]))
        deg[parent] += 1
        deg[order[i]] += 1
    extra = n * max(0, degree - 2) // 2
    attempts = 0
    while extra > 0 and attempts < 20 * n:
        attempts += 1
        a, b = rng.randrange(n), rng.randrange(n)
        if a == b or deg[a] >= degree or deg[b] >= degree:
            continue
        if (a, b) in edges or (b, a) in edges:
            continue
        edges.append((a, b))
        deg[a] += 1
        deg[b] += 1
        extra -= 1
    return from_edges(edges, n=n, uids=uids, name=f"random-{n}d{degree}s{seed}")


def fat_tree(k: int, uids: Optional[List[Uid]] = None) -> TopologySpec:
    """A three-tier fat-tree of ``k``-port switches (the data-center
    folded Clos): ``(k/2)^2`` core switches and ``k`` pods of ``k/2``
    aggregation plus ``k/2`` edge switches each -- ``5k^2/4`` switches
    total (k=4: 20, k=6: 45, k=8: 80).

    Index layout is deterministic: cores first, then pod by pod
    (aggregation switches before edge switches).  Edge switches keep
    ``k/2`` ports free for hosts; every switch-to-switch degree is at
    most ``k``, so any even ``k`` up to ``PORTS_PER_SWITCH`` fits the
    paper's 12-port crossbar.
    """
    if k < 2 or k % 2:
        raise ValueError(f"fat-tree arity must be even and >= 2, got {k}")
    if k > PORTS_PER_SWITCH:
        raise ValueError(
            f"fat-tree arity {k} exceeds {PORTS_PER_SWITCH} switch ports"
        )
    half = k // 2
    cores = half * half
    n = cores + k * k  # cores + k pods of (half agg + half edge)
    edges = []
    for pod in range(k):
        base = cores + pod * k
        agg = [base + j for j in range(half)]
        edge = [base + half + j for j in range(half)]
        for e in edge:
            for a in agg:
                edges.append((a, e))
        # aggregation switch j serves the j-th stripe of core switches
        for j, a in enumerate(agg):
            for i in range(half):
                edges.append((j * half + i, a))
    return from_edges(edges, n=n, uids=uids, name=f"fat-tree-{k}")


def dcell(n: int, level: int = 1, uids: Optional[List[Uid]] = None) -> TopologySpec:
    """A DCell_level built from ``n``-server cells (Guo et al., the
    recursively-defined data-center topology).

    DCell_0 is ``n`` server nodes on one mini-switch; DCell_l combines
    ``t_{l-1} + 1`` copies of DCell_{l-1}, giving every server one extra
    level link (server ``i`` of cell ``j`` pairs with server ``j-1`` of
    cell ``i``).  In an Autonet installation every node is a switch, so
    servers appear as switches with ``1 + level`` used ports and
    mini-switches with ``n``.  Servers take indices ``[0, t_level)``,
    mini-switches follow.
    """
    if n < 2:
        raise ValueError(f"dcell needs >= 2 servers per cell, got {n}")
    if n > PORTS_PER_SWITCH:
        raise ValueError(
            f"dcell mini-switch needs {n} ports, more than {PORTS_PER_SWITCH}"
        )
    if not 0 <= level <= 2:
        raise ValueError(f"dcell level must be 0, 1, or 2, got {level}")
    if 1 + level > PORTS_PER_SWITCH:  # pragma: no cover - level cap is lower
        raise ValueError("dcell server degree exceeds the port count")
    # server counts per level: t_0 = n, t_l = t_{l-1} * (t_{l-1} + 1)
    t = [n]
    for _l in range(level):
        t.append(t[-1] * (t[-1] + 1))
    servers = t[level]
    edges: List[Tuple[int, int]] = []

    def build(base: int, lvl: int) -> None:
        if lvl == 0:
            return
        size = t[lvl - 1]
        for i in range(size + 1):
            build(base + i * size, lvl - 1)
        # the paper's connection rule: [i, j-1] -- [j, i] for i < j
        for i in range(size):
            for j in range(i + 1, size + 1):
                edges.append((base + i * size + (j - 1), base + j * size + i))

    build(0, level)
    for cell in range(servers // n):  # one mini-switch per DCell_0
        switch = servers + cell
        for s in range(n):
            edges.append((cell * n + s, switch))
    total = servers + servers // n
    return from_edges(edges, n=total, uids=uids, name=f"dcell-{n}l{level}")


#: (canonical example, description) per resolvable topology family --
#: rendered by CLI usage listings and the resolve_topology error message
TOPOLOGY_FAMILIES: Tuple[Tuple[str, str], ...] = (
    ("torus-3x4", "R x C torus (the paper's service-network shape)"),
    ("mesh-2x3", "R x C mesh without wraparound"),
    ("ring-8", "N-switch ring"),
    ("line-5", "N-switch line"),
    ("tree-d2f3", "complete tree, depth D fanout F"),
    ("random-16d3s5", "random connected graph, N nodes degree D seed S"),
    ("fat-tree-4", "three-tier fat-tree of even-K-port switches"),
    ("dcell-3l1", "DCell_L of N-server cells"),
    ("src-lan-30", "the 30-switch SRC service LAN of section 5.5"),
)


def topology_names() -> List[str]:
    """Canonical example names, one per resolvable family."""
    return [example for example, _desc in TOPOLOGY_FAMILIES]


def resolve_topology(name: str) -> TopologySpec:
    """Build a spec from its canonical name: ``torus-3x4``, ``mesh-2x3``,
    ``ring-8``, ``line-5``, ``tree-d2f3``, ``random-16d3s5``,
    ``fat-tree-4``, ``dcell-3l1``, or ``src-lan-30``.

    Every generator names its spec this way, so ``resolve_topology(
    spec.name)`` round-trips; CLIs (chaos campaigns, benches) use it to
    take topologies as strings.
    """
    import re

    if name == "src-lan-30":
        from repro.topology.src_lan import src_service_lan

        return src_service_lan()
    patterns = [
        (r"^(torus)-(\d+)x(\d+)$", lambda m: torus(int(m[2]), int(m[3]))),
        (r"^(mesh)-(\d+)x(\d+)$", lambda m: mesh(int(m[2]), int(m[3]))),
        (r"^(ring)-(\d+)$", lambda m: ring(int(m[2]))),
        (r"^(line)-(\d+)$", lambda m: line(int(m[2]))),
        (r"^(tree)-d(\d+)f(\d+)$", lambda m: tree(int(m[2]), int(m[3]))),
        (
            r"^(random)-(\d+)d(\d+)s(\d+)$",
            lambda m: random_regular(int(m[2]), degree=int(m[3]), seed=int(m[4])),
        ),
        (r"^(fat-tree)-(\d+)$", lambda m: fat_tree(int(m[2]))),
        (r"^(dcell)-(\d+)l(\d+)$", lambda m: dcell(int(m[2]), int(m[3]))),
    ]
    for pattern, build in patterns:
        match = re.match(pattern, name)
        if match:
            return build(match)
    examples = ", ".join(topology_names())
    raise ValueError(f"unknown topology {name!r} (try {examples})")


def expected_tree(spec: TopologySpec, host_ports: Optional[Dict[int, List[int]]] = None) -> TopologyMap:
    """The spanning tree the distributed algorithm converges to.

    Root is the smallest UID; every switch takes the position minimizing
    (root, level, parent UID, port to parent) -- the comparison rule of
    section 6.6.1.  Used as the oracle for protocol tests and as a direct
    input for pure routing experiments.
    """
    n = spec.n_switches
    adjacency: Dict[int, List[Tuple[int, int, int]]] = {i: [] for i in range(n)}
    links = set()
    for a, pa, b, pb in spec.cables:
        if a == b:
            continue  # looped links are omitted from the configuration
        adjacency[a].append((b, pa, pb))
        adjacency[b].append((a, pb, pa))
        links.add(NetLink(PortRef(spec.uids[a], pa), PortRef(spec.uids[b], pb)))

    root_index = min(range(n), key=lambda i: spec.uids[i])
    levels = {root_index: 0}
    frontier = [root_index]
    while frontier:
        nxt = []
        for i in frontier:
            for j, _pi, _pj in adjacency[i]:
                if j not in levels:
                    levels[j] = levels[i] + 1
                    nxt.append(j)
        frontier = nxt
    if len(levels) != n:
        raise ValueError("topology is not connected")

    switches: Dict[Uid, SwitchRecord] = {}
    hosts = host_ports or {}
    for i in range(n):
        if i == root_index:
            parent_uid, parent_port = None, None
        else:
            # best parent: minimal (parent uid, my port) among level-1 neighbors
            options = [
                (spec.uids[j], pi)
                for j, pi, _pj in adjacency[i]
                if levels[j] == levels[i] - 1
            ]
            parent_uid, parent_port = min(options)
        switches[spec.uids[i]] = SwitchRecord(
            uid=spec.uids[i],
            level=levels[i],
            parent_port=parent_port,
            parent_uid=parent_uid,
            host_ports=frozenset(hosts.get(i, [])),
            proposed_number=i + 1,
        )
    topology = TopologyMap(root=spec.uids[root_index], switches=switches, links=links)
    topology.numbers = {spec.uids[i]: i + 1 for i in range(n)}
    return topology
