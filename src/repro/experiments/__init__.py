"""Scenario builders shared by the test suite and the benchmark harness.

Each module reconstructs one of the paper's evaluation setups: the FIFO
worst case behind the sizing equations of section 6.2, the exact
broadcast-deadlock configuration of Figure 9, and the switch-latency
measurement rigs of sections 5.1/6.4.
"""

from repro.experiments.fifo_sizing import (
    broadcast_fifo_requirement,
    fifo_requirement,
    measure_backlog,
    measure_broadcast_backlog,
)
from repro.experiments.fig9 import Fig9Scenario, build_fig9
from repro.experiments.latency import hop_latency, router_throughput

__all__ = [
    "fifo_requirement",
    "broadcast_fifo_requirement",
    "measure_backlog",
    "measure_broadcast_backlog",
    "Fig9Scenario",
    "build_fig9",
    "hop_latency",
    "router_throughput",
]
