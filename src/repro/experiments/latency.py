"""Switch transit latency and router throughput rigs (E4; §5.1, §6.4).

The paper: best-case transit latency is 26-32 clocks of 80 ns (2.08-2.56
microseconds) from first bit received to first bit forwarded, dominated
by the 25-byte cut-through window plus a router decision; and the router
schedules one forwarding request every 480 ns, bounding a switch at about
2 million packets per second.

``hop_latency`` measures end-to-end delivery through chains of k idle
switches; the incremental latency per added switch is the transit
latency.  ``router_throughput`` saturates one switch with minimal packets
from all 12 ports and measures the forwarding rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.routing import build_forwarding_entries
from repro.host.controller import HostController
from repro.net.link import connect
from repro.net.packet import Packet, PacketType
from repro.net.switch import Switch
from repro.sim.engine import Simulator
from repro.topology.generators import TopologySpec, expected_tree, line
from repro.types import Uid, make_short_address

HOST_PORT_SRC = 9
HOST_PORT_DST = 10


def _static_chain(sim: Simulator, k: int, link_km: float, cut_through_bytes=None):
    """A chain of k switches with statically loaded tables."""
    spec = line(k) if k > 1 else TopologySpec(uids=[Uid(0x1000)], name="single")
    host_ports = {0: [HOST_PORT_SRC], k - 1: [HOST_PORT_DST]}
    if k == 1:
        host_ports = {0: [HOST_PORT_SRC, HOST_PORT_DST]}
    topology = expected_tree(spec, host_ports=host_ports)
    switches = []
    for i, uid in enumerate(spec.uids):
        switch = Switch(sim, name=f"sw{i}", uid=uid,
                        cut_through_bytes=cut_through_bytes)
        switches.append(switch)
    for a, pa, b, pb in spec.cables:
        connect(sim, switches[a].ports[pa], switches[b].ports[pb], length_km=link_km)
    for switch, uid in zip(switches, spec.uids):
        switch.load_table(build_forwarding_entries(topology, uid))
    dest_addr = make_short_address(topology.numbers[spec.uids[k - 1]], HOST_PORT_DST)
    return switches, dest_addr


def hop_latency(
    k_switches: int,
    data_bytes: int = 12,
    link_km: float = 0.01,
    cut_through_bytes=None,
) -> int:
    """End-to-end latency (ns) of one packet through k idle switches.

    ``cut_through_bytes`` overrides the 25-byte cut-through window; pass
    a huge value to model store-and-forward switches (the §3.5 ablation).
    """
    sim = Simulator()
    switches, dest_addr = _static_chain(sim, k_switches, link_km, cut_through_bytes)
    src = HostController(sim, "src", Uid(0xA1))
    dst = HostController(sim, "dst", Uid(0xA2))
    connect(sim, src.ports[0], switches[0].ports[HOST_PORT_SRC], length_km=link_km)
    connect(sim, dst.ports[0], switches[-1].ports[HOST_PORT_DST], length_km=link_km)

    arrivals: List[int] = []
    dst.on_receive = lambda packet: arrivals.append(sim.now)
    sent_at = sim.now + 1000
    sim.at(
        sent_at,
        lambda: src.send(
            Packet(
                dest_short=dest_addr,
                src_short=0x11,
                ptype=PacketType.CLIENT,
                dest_uid=dst.uid,
                src_uid=src.uid,
                data_bytes=data_bytes,
            )
        ),
    )
    sim.run(until=sim.now + 100_000_000)
    if not arrivals:
        raise RuntimeError(f"packet not delivered through {k_switches} switches")
    return arrivals[0] - sent_at


@dataclass
class ThroughputResult:
    """Offered vs forwarded rate of the saturated-switch rig."""

    offered_pps: float
    forwarded_pps: float
    router_grants: int
    duration_ns: int


def router_throughput(
    duration_ns: int = 20_000_000, data_bytes: int = 12, n_streams: int = 12
) -> ThroughputResult:
    """Saturate one switch: hosts on all ports, each streaming minimal
    packets to a partner port; the 480 ns scheduling engine is the
    bottleneck (about 2 M packets/s)."""
    if not 2 <= n_streams <= 12 or n_streams % 2:
        raise ValueError("n_streams must be even, 2..12")
    sim = Simulator()
    spec = TopologySpec(uids=[Uid(0x1000)], name="single")
    ports = list(range(1, n_streams + 1))
    topology = expected_tree(spec, host_ports={0: ports})
    switch = Switch(sim, "sw0", spec.uids[0])
    switch.load_table(build_forwarding_entries(topology, spec.uids[0]))

    hosts = []
    received = [0]
    for port in ports:
        host = HostController(sim, f"h{port}", Uid(0xB00 + port))
        # effectively unlimited transmit buffering for the stream
        host.tx_buffer_bytes = 1 << 30
        connect(sim, host.ports[0], switch.ports[port], length_km=0.01)
        host.on_receive = lambda packet: received.__setitem__(0, received[0] + 1)
        hosts.append(host)

    wire = Packet(dest_short=0x10, src_short=0, data_bytes=data_bytes).wire_bytes
    per_stream = duration_ns // (wire * 80) + 2
    for i, host in enumerate(hosts):
        partner_port = ports[(i + 1) % n_streams]
        address = make_short_address(1, partner_port)
        for _ in range(int(per_stream)):
            host.send(
                Packet(
                    dest_short=address,
                    src_short=make_short_address(1, ports[i]),
                    ptype=PacketType.CLIENT,
                    dest_uid=Uid(0xB00 + partner_port),
                    src_uid=host.uid,
                    data_bytes=data_bytes,
                )
            )
    sim.run(until=duration_ns)
    offered = n_streams * 1e9 / (wire * 80)
    forwarded = received[0] * 1e9 / duration_ns
    return ThroughputResult(
        offered_pps=offered,
        forwarded_pps=forwarded,
        router_grants=switch.engine.grants,
        duration_ns=duration_ns,
    )
