"""The FIFO-sizing worst case of section 6.2 (experiment E2).

The paper derives

    N >= (1 - f) N + (S - 1) + 2 W      =>  N >= (S - 1 + 128.2 L) / f

for ordinary packets (stop issued at fill fraction (1-f), one directive
slot every S slots, W = 64.1 L bytes in flight per km), and

    N >= (B + S - 1 + 128.2 L) / f

when a broadcast packet of B bytes must be absorbed after its transmitter
stops obeying ``stop``.  The rigs here reproduce the worst case by
construction -- a transmitter sending continuously into a FIFO that never
drains -- and measure the actual peak occupancy, which the bench compares
with the closed forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.constants import (
    BYTES_IN_FLIGHT_PER_KM,
    FLOW_CONTROL_SLOT_PERIOD,
)
from repro.net.fifo import ReceiveFifo
from repro.net.flowcontrol import FlowControlReceiver, FlowControlSender
from repro.net.link import Endpoint, Transmitter, connect
from repro.net.packet import Packet, PacketType
from repro.sim.engine import Simulator


def fifo_requirement(length_km: float, f: float = 0.5, s: int = FLOW_CONTROL_SLOT_PERIOD) -> float:
    """The paper's closed form: N >= (S - 1 + 2*64.1*L) / f."""
    return (s - 1 + 2 * BYTES_IN_FLIGHT_PER_KM * length_km) / f


def broadcast_fifo_requirement(
    broadcast_bytes: int,
    length_km: float,
    f: float = 0.5,
    s: int = FLOW_CONTROL_SLOT_PERIOD,
) -> float:
    """N >= (B + S - 1 + 2*64.1*L) / f (section 6.2).

    The paper's printed form uses 128.2 L = 2 W, writing the in-flight
    term once; we keep the same 2 W accounting as the unicast case.
    """
    return (broadcast_bytes + s - 1 + 2 * BYTES_IN_FLIGHT_PER_KM * length_km) / f


class _Source(Endpoint):
    """A transmitter with an always-full buffer (worst-case sender)."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.buffer = ReceiveFifo(sim, "source.buffer", capacity=1 << 30)
        self.buffer.on_head_ready = self._head_ready
        self.fc_receiver = FlowControlReceiver(on_change=lambda d: self.buffer.recompute())
        self.tx = Transmitter(self, self.fc_receiver)

    def attach_link(self) -> None:
        pass  # sources send no flow control of their own

    def offer(self, packet: Packet) -> None:
        self.buffer.begin_packet(packet)
        entry = self.buffer.queue[-1]
        entry.bytes_in = float(entry.size)
        entry.arriving = False
        self.buffer.recompute()

    def _head_ready(self, packet: Packet) -> None:
        self.buffer.connect_drain([self.tx], broadcast=packet.is_broadcast)

    # receive path: ignore everything but flow control
    def rx_begin_packet(self, packet: Packet) -> None:
        pass

    def rx_set_rate(self, rate: float) -> None:
        pass

    def rx_end_packet(self, packet: Packet) -> None:
        pass

    def rx_flow_control(self, directive) -> None:
        self.fc_receiver.receive(directive, self.sim.now)


class _StuckReceiver(Endpoint):
    """A receive FIFO that is never drained (downstream fully blocked),
    with the standard threshold-driven flow-control sender."""

    def __init__(self, sim: Simulator, threshold_bytes: float, phase_ns: int = 0) -> None:
        self.sim = sim
        self.phase_ns = phase_ns
        self.fifo = ReceiveFifo(sim, "stuck.fifo", capacity=1 << 30)
        self.fifo.stop_threshold = threshold_bytes
        self.fifo.on_level_directive = self._level
        self.fc_sender: Optional[FlowControlSender] = None

    def attach_link(self) -> None:
        self.fc_sender = FlowControlSender(
            self.sim,
            deliver=lambda d: self.link.send_flow_control(self, d),
            propagation_ns=0,
            phase=self.phase_ns,
        )

    def _level(self, directive) -> None:
        if self.fc_sender is not None:
            self.fc_sender.set_level_directive(directive)

    def rx_begin_packet(self, packet: Packet) -> None:
        self.fifo.begin_packet(packet)

    def rx_set_rate(self, rate: float) -> None:
        self.fifo.set_in_rate(rate)

    def rx_end_packet(self, packet: Packet) -> None:
        self.fifo.end_packet(packet)

    def rx_flow_control(self, directive) -> None:
        pass


@dataclass
class BacklogResult:
    """Peak FIFO occupancy against the sizing formula."""

    length_km: float
    stop_fraction: float
    threshold_bytes: float
    peak_bytes: float
    required_bytes: float

    @property
    def within_bound(self) -> bool:
        return self.peak_bytes <= self.required_bytes + 2.0

    @property
    def tightness(self) -> float:
        """How close the worst case comes to the bound (1.0 = exact)."""
        return self.peak_bytes / self.required_bytes if self.required_bytes else 0.0


def measure_backlog(
    length_km: float,
    f: float = 0.5,
    packet_bytes: int = 60_000,
    phase_ns: int = 0,
    start_offset_ns: int = 50_000,
) -> BacklogResult:
    """Worst case: continuous sender, receiver never drains.

    The peak occupancy must stay within the paper's N for the given f and
    L.  The stop threshold is placed at (1 - f) * N.  Sweeping
    ``start_offset_ns`` over one flow-control slot period explores every
    alignment of the threshold crossing against the directive slots; the
    worst alignment (just missing a slot) realizes the paper's S - 1 term.
    """
    sim = Simulator()
    required = fifo_requirement(length_km, f)
    threshold = (1 - f) * required
    source = _Source(sim)
    receiver = _StuckReceiver(sim, threshold, phase_ns=phase_ns)
    connect(sim, source, receiver, length_km=length_km)
    sim.at(
        start_offset_ns,
        source.offer,
        Packet(dest_short=0x100, src_short=0x101, ptype=PacketType.DIAGNOSTIC,
               data_bytes=packet_bytes),
    )
    sim.run(until=sim.now + 100_000_000)
    return BacklogResult(
        length_km=length_km,
        stop_fraction=f,
        threshold_bytes=threshold,
        peak_bytes=receiver.fifo.max_level,
        required_bytes=required,
    )


def measure_broadcast_backlog(
    broadcast_bytes: int, length_km: float, f: float = 0.5, phase_ns: int = 0
) -> BacklogResult:
    """Worst case with a broadcast: the backlog builds to the stop point,
    then a broadcast that began under ``start`` arrives in full because
    its transmitter ignores ``stop`` (the deadlock fix of section 6.6.6).
    """
    sim = Simulator()
    required = broadcast_fifo_requirement(broadcast_bytes, length_km, f)
    threshold = (1 - f) * required
    source = _Source(sim)
    receiver = _StuckReceiver(sim, threshold, phase_ns=phase_ns)
    connect(sim, source, receiver, length_km=length_km)
    # Filler traffic sized to bring the FIFO exactly to the worst-case
    # stop point: its last byte launches just before the stop directive
    # takes effect at the transmitter, so the broadcast queued behind it
    # legally "begins under start" and then ignores the stop.
    slack = (FLOW_CONTROL_SLOT_PERIOD - 1) + 2 * BYTES_IN_FLIGHT_PER_KM * length_km
    filler_wire = int(threshold + slack) - 16
    source.offer(
        Packet(dest_short=0x100, src_short=0x101, ptype=PacketType.DIAGNOSTIC,
               data_bytes=max(1, filler_wire - 40))
    )
    source.offer(
        Packet(dest_short=0x7FD, src_short=0x101, ptype=PacketType.CLIENT,
               data_bytes=max(0, broadcast_bytes - 54))
    )
    sim.run(until=sim.now + 200_000_000)
    return BacklogResult(
        length_km=length_km,
        stop_fraction=f,
        threshold_bytes=threshold,
        peak_bytes=receiver.fifo.max_level,
        required_bytes=required,
    )
