"""The broadcast-deadlock scenario of Figure 9 (experiment E3).

Five switches V, W, X, Y, Z and hosts A (on V), B (on W), C (on Z).
Spanning tree: V is the root with children W and X; Y hangs under W and Z
under X; Y--Z is a cross link.  Host B sends a long packet to C along the
legal route B-W-Y-Z-C while host A's broadcast floods down the tree.  The
broadcast holds Z-C; B's packet holds W-Y; the broadcast also needs W-Y;
when W's FIFO passes the stop threshold, V stops sending -- stalling the
X branch too -- and the fabric deadlocks.

The paper's fix is two-part (section 6.2/6.6.6): transmitters ignore
``stop`` for the rest of a broadcast packet, *and* the FIFO is enlarged
to 4096 bytes so a complete broadcast fits.  The scenario exposes both
knobs so the bench can show all three regimes: deadlock (1024-byte FIFO,
no fix), corruption (1024-byte FIFO with ignore-stop: the FIFO
overflows), and clean delivery (4096-byte FIFO with the fix).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.routing import build_forwarding_entries
from repro.host.controller import HostController
from repro.net.link import connect
from repro.net.packet import Packet, PacketType
from repro.net.switch import Switch
from repro.sim.engine import Simulator
from repro.topology.generators import TopologySpec, expected_tree
from repro.types import Uid, make_short_address

#: switch indices in the spec
V, W, X, Y, Z = range(5)
#: host attachment ports
HOST_PORT = 9


@dataclass
class Fig9Scenario:
    """A constructed Figure 9 installation, ready to run."""

    sim: Simulator
    switches: List[Switch]
    host_a: HostController
    host_b: HostController
    host_c: HostController
    received_at_c: List[Packet] = field(default_factory=list)
    addr_c: int = 0

    def run(self, until_ns: int = 100_000_000) -> Dict[str, object]:
        """Run to quiescence and report what happened."""
        self.sim.run(until=until_ns)
        got_long = [p for p in self.received_at_c if not p.is_broadcast]
        got_bcast = [p for p in self.received_at_c if p.is_broadcast]
        overflowed = any(
            unit._overflow_flag or unit.fifo.overflowed
            for sw in self.switches
            for unit in sw.ports.values()
        )
        deadlocked = not got_long
        return {
            "unicast_delivered": bool(got_long),
            "unicast_corrupted": bool(got_long and got_long[0].corrupted),
            "broadcast_delivered": bool(got_bcast),
            "broadcast_corrupted": bool(got_bcast and got_bcast[0].corrupted),
            "fifo_overflow": overflowed,
            "deadlocked": deadlocked,
        }


def build_fig9(
    fifo_bytes: int = 1024,
    ignore_stop_in_broadcast: bool = False,
    long_packet_bytes: int = 60_000,
    broadcast_bytes: int = 1496,
    long_packet_delay_ns: int = 1_000,
) -> Fig9Scenario:
    """Construct the scenario and inject the two colliding packets.

    The A-V-X-Z and B-W-Y-Z pipelines are the same depth, so the broadcast
    leaves first (winning Z-C at switch Z) while B's long packet -- sent
    ``long_packet_delay_ns`` later -- still captures W-Y before the
    broadcast reaches switch W: exactly the interleaving of Figure 9.
    """
    sim = Simulator()
    uids = [Uid(v) for v in (0x10, 0x20, 0x30, 0x40, 0x50)]
    spec = TopologySpec(uids=uids, name="fig9")
    spec.cables = [
        (V, 1, W, 1),  # V-W (tree)
        (V, 2, X, 1),  # V-X (tree)
        (W, 2, Y, 1),  # W-Y (tree)
        (X, 2, Z, 1),  # X-Z (tree)
        (Y, 2, Z, 2),  # Y-Z (cross link)
    ]
    host_ports = {V: [HOST_PORT], W: [HOST_PORT], Z: [HOST_PORT]}
    topology = expected_tree(spec, host_ports=host_ports)

    switches = []
    for i, uid in enumerate(uids):
        switch = Switch(sim, name="VWXYZ"[i], uid=uid, fifo_bytes=fifo_bytes)
        switches.append(switch)
    for a, pa, b, pb in spec.cables:
        connect(sim, switches[a].ports[pa], switches[b].ports[pb], length_km=0.1)
    for switch, uid in zip(switches, uids):
        switch.load_table(build_forwarding_entries(topology, uid))
        for unit in switch.ports.values():
            unit.tx.ignore_stop_in_broadcast = ignore_stop_in_broadcast

    def attach_host(name: str, sw: int, uid_val: int) -> HostController:
        controller = HostController(sim, name=name, uid=Uid(uid_val))
        connect(sim, controller.ports[0], switches[sw].ports[HOST_PORT], length_km=0.1)
        controller.ports[0].tx.ignore_stop_in_broadcast = ignore_stop_in_broadcast
        return controller

    host_a = attach_host("A", V, 0xA0)
    host_b = attach_host("B", W, 0xB0)
    host_c = attach_host("C", Z, 0xC0)

    # the network is in steady operation when the collision happens: every
    # transmitter has a start directive latched (otherwise first
    # transmissions wait for the initial directive slot, scrambling the
    # interleaving Figure 9 depends on)
    from repro.net.flowcontrol import Directive

    for switch in switches:
        for unit in switch.ports.values():
            unit.fc_receiver.last = Directive.START
    for controller in (host_a, host_b, host_c):
        for port in controller.ports:
            port.fc_receiver.last = Directive.START

    scenario = Fig9Scenario(
        sim=sim,
        switches=switches,
        host_a=host_a,
        host_b=host_b,
        host_c=host_c,
        addr_c=make_short_address(topology.numbers[uids[Z]], HOST_PORT),
    )
    host_c.on_receive = scenario.received_at_c.append

    addr_b = make_short_address(topology.numbers[uids[W]], HOST_PORT)
    host_a.send(
        Packet(
            dest_short=0x7FF,  # every host
            src_short=make_short_address(topology.numbers[uids[V]], HOST_PORT),
            ptype=PacketType.CLIENT,
            dest_uid=None,
            src_uid=host_a.uid,
            data_bytes=broadcast_bytes,
        )
    )
    sim.at(
        long_packet_delay_ns,
        lambda: host_b.send(
            Packet(
                dest_short=scenario.addr_c,
                src_short=addr_b,
                ptype=PacketType.CLIENT,
                dest_uid=host_c.uid,
                src_uid=host_b.uid,
                data_bytes=long_packet_bytes,
            )
        ),
    )
    return scenario
