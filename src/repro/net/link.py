"""Full-duplex point-to-point links and per-port transmitters.

A link joins two endpoints (switch link units or host controller ports).
Each direction carries packet bytes plus the reverse-channel flow control
of section 6.2.  Propagation delay follows the paper's W = 64.1 L bytes in
flight per km; we quantize it to whole 80 ns slots so byte counts stay
exact.

Links model the physical failure modes the paper's monitoring machinery
has to recognize (sections 6.5.2, 7):

* ``UP`` -- normal operation.
* ``CUT`` -- nothing is delivered; both receivers see silence, which the
  TAXI hardware reports as continuous code violations (BadCode).
* ``REFLECTING_A`` / ``REFLECTING_B`` -- the cable is unterminated at the
  named side's far end, so that side's transmissions reflect back into its
  own receiver (the §7 broadcast-storm failure mode).
* ``NOISY`` -- delivered, but the receiver accumulates BadCode and packets
  are probabilistically corrupted (intermittent links for the skeptics).
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Optional, Tuple

from repro.constants import BYTE_TIME_NS, BYTES_IN_FLIGHT_PER_KM
from repro.net.fifo import DrainTarget
from repro.net.flowcontrol import Directive, FlowControlReceiver, FlowControlSender
from repro.net.packet import Packet
from repro.sim.engine import Simulator


def propagation_ns(length_km: float) -> int:
    """One-way propagation delay, quantized to whole byte slots."""
    slots = max(1, round(BYTES_IN_FLIGHT_PER_KM * length_km))
    return int(slots) * BYTE_TIME_NS


class LinkState(Enum):
    """Physical condition of a cable (see module docstring)."""

    UP = "up"
    CUT = "cut"
    REFLECTING_A = "reflecting-a"  # side A hears its own transmissions
    REFLECTING_B = "reflecting-b"
    NOISY = "noisy"


class Endpoint:
    """One side of a link: the receive path plus identity information.

    Implemented by switch link units and host controller ports.
    """

    #: filled in by Link.attach
    link: Optional["Link"] = None

    # receive-path entry points (called by the far transmitter via the link)
    def rx_begin_packet(self, packet: Packet) -> None:
        raise NotImplementedError

    def rx_set_rate(self, rate: float) -> None:
        raise NotImplementedError

    def rx_end_packet(self, packet: Packet) -> None:
        raise NotImplementedError

    def rx_flow_control(self, directive: Directive) -> None:
        raise NotImplementedError

    def describe_transmission(self) -> str:
        """What this endpoint currently puts on the wire, for fault
        fingerprinting: 'normal', 'sync-only' (alternate host port), or
        'silence' (unpowered)."""
        return "normal"

    def on_link_state_change(self) -> None:
        """Notification that the link's physical state changed."""


class Link:
    """A full-duplex link between endpoints ``a`` and ``b``."""

    def __init__(
        self,
        sim: Simulator,
        a: Endpoint,
        b: Endpoint,
        length_km: float = 0.1,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.a = a
        self.b = b
        self.length_km = length_km
        self.delay_ns = propagation_ns(length_km)
        self.name = name or f"link({length_km}km)"
        self.state = LinkState.UP
        #: probability an in-flight packet is corrupted while NOISY
        self.noise_corruption = 0.5
        a.link = self
        b.link = self

    # -- physical state -----------------------------------------------------------

    def set_state(self, state: LinkState) -> None:
        if state is self.state:
            return
        self.state = state
        self.a.on_link_state_change()
        self.b.on_link_state_change()

    def other(self, endpoint: Endpoint) -> Endpoint:
        if endpoint is self.a:
            return self.b
        if endpoint is self.b:
            return self.a
        raise ValueError("endpoint not on this link")

    def _reflecting_for(self, sender: Endpoint) -> bool:
        return (self.state is LinkState.REFLECTING_A and sender is self.a) or (
            self.state is LinkState.REFLECTING_B and sender is self.b
        )

    def _route(self, sender: Endpoint) -> Optional[Tuple[Endpoint, int]]:
        """Return (receiver, delay) for a transmission, or None if lost."""
        if self.state is LinkState.CUT:
            return None
        if self._reflecting_for(sender):
            return sender, 2 * self.delay_ns
        if self.state in (LinkState.REFLECTING_A, LinkState.REFLECTING_B):
            # the reflecting side's *far* endpoint is unpowered: transmissions
            # toward it vanish
            return None
        return self.other(sender), self.delay_ns

    # -- transmission -------------------------------------------------------------

    def send_begin(self, sender: Endpoint, packet: Packet) -> None:
        route = self._route(sender)
        if route is None:
            return
        receiver, delay = route
        self.sim.after(delay, receiver.rx_begin_packet, packet)

    def send_rate(self, sender: Endpoint, rate: float) -> None:
        route = self._route(sender)
        if route is None:
            return
        receiver, delay = route
        self.sim.after(delay, receiver.rx_set_rate, rate)

    def send_end(self, sender: Endpoint, packet: Packet) -> None:
        route = self._route(sender)
        if route is None:
            return
        receiver, delay = route
        self.sim.after(delay, receiver.rx_end_packet, packet)

    def send_flow_control(self, sender: Endpoint, directive: Directive) -> None:
        """Route a directive emitted at a flow-control slot boundary.

        The FlowControlSender handles slot alignment; the link applies the
        propagation delay (twice for a reflection).
        """
        route = self._route(sender)
        if route is None:
            return
        receiver, delay = route
        self.sim.after(delay, receiver.rx_flow_control, directive)

    # -- fault fingerprints ---------------------------------------------------------

    def received_condition(self, listener: Endpoint) -> str:
        """What ``listener`` currently hears: 'normal', 'silence',
        'sync-only', 'own-signal', or 'noise'."""
        if self.state is LinkState.CUT:
            return "silence"
        if self._reflecting_for(listener):
            return "own-signal"
        if self.state in (LinkState.REFLECTING_A, LinkState.REFLECTING_B):
            return "silence"
        if self.state is LinkState.NOISY:
            return "noise"
        return self.other(listener).describe_transmission()


def connect(sim: Simulator, a: Endpoint, b: Endpoint, length_km: float = 0.1, name: str = "") -> Link:
    """Cable two endpoints together and finish their wiring."""
    link = Link(sim, a, b, length_km=length_km, name=name)
    for endpoint in (a, b):
        attach = getattr(endpoint, "attach_link", None)
        if attach is not None:
            attach()
    return link


class Transmitter(DrainTarget):
    """The transmit half of a port: forwards a FIFO's drain onto the link.

    The transmitter does not buffer; it relays begin/rate/end markers to
    the far end with the link's propagation delay and gates the drain on
    the latched flow-control directive received from the far end.  The
    broadcast-deadlock fix of section 6.6.6 -- ignore ``stop`` for the
    remainder of a broadcast packet -- is the ``ignore_stop_in_broadcast``
    flag, left on by default and turned off by the E3 bench to reproduce
    the deadlock.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        fc_receiver: FlowControlReceiver,
        on_state_change: Optional[Callable[[], None]] = None,
        ignore_stop_in_broadcast: bool = True,
    ) -> None:
        self.endpoint = endpoint
        self.fc_receiver = fc_receiver
        self.on_state_change = on_state_change
        self.ignore_stop_in_broadcast = ignore_stop_in_broadcast
        #: packet currently being transmitted (None when idle)
        self.current: Optional[Packet] = None
        self.sending_broadcast = False
        #: set by the scheduling engine while the port is allocated
        self.busy = False
        #: invoked when a packet finishes transmitting (the switch frees
        #: the output port here)
        self.on_end: Optional[Callable[[Packet], None]] = None
        self.packets_sent = 0
        self.bytes_sent = 0

    # -- DrainTarget interface -------------------------------------------------------

    def drain_allowed(self, broadcast: bool) -> bool:
        if self.fc_receiver.transmission_allowed:
            return True
        if broadcast and self.sending_broadcast and self.ignore_stop_in_broadcast:
            return True
        return False

    def notify_begin(self, packet: Packet, broadcast: bool) -> None:
        self.current = packet
        self.sending_broadcast = broadcast
        link = self.endpoint.link
        if link is not None:
            link.send_begin(self.endpoint, packet)

    def notify_rate(self, rate: float) -> None:
        link = self.endpoint.link
        if link is not None:
            link.send_rate(self.endpoint, rate)

    def notify_end(self, packet: Packet) -> None:
        self.current = None
        self.sending_broadcast = False
        self.packets_sent += 1
        self.bytes_sent += packet.wire_bytes
        link = self.endpoint.link
        if link is not None:
            link.send_end(self.endpoint, packet)
        if self.on_end is not None:
            self.on_end(packet)

    # -- flow-control coupling ---------------------------------------------------------

    def flow_control_changed(self) -> None:
        """The latched received directive changed; re-gate the drain."""
        if self.on_state_change is not None:
            self.on_state_change()
