"""The Autonet switch: link units, crossbar, router, control port.

Assembles the hardware of section 5.1: 12 external link units, a 13th
internal port to the control processor, the forwarding table, and the
first-come-first-considered scheduling engine.  The control processor
itself (Autopilot) lives in :mod:`repro.core.autopilot`; the switch
exposes ``inject_from_cp`` / ``on_cp_packet`` as its port-0 interface.

The prototype's reload-implies-reset coupling (section 7: "the control
processor [cannot] update the forwarding table without first resetting the
switch", destroying all packets in the switch) is modeled by
:meth:`Switch.load_table`, with ``reset_on_load=False`` available as the
paper's proposed hardware improvement for the ablation bench.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.constants import PORTS_PER_SWITCH
from repro.net.fifo import DiscardSink, DrainTarget, ReceiveFifo
from repro.net.forwarding import ForwardingEntry, ForwardingTable
from repro.net.linkunit import LinkUnit
from repro.net.packet import Packet
from repro.net.scheduler import Request, SchedulingEngine
from repro.obs.flight import CAT_TABLE
from repro.sim.engine import Simulator
from repro.types import Uid


class CpSink(DrainTarget):
    """Port 0's delivery side: packets drained here reach the control
    processor's receive buffers in video RAM (no flow control)."""

    def __init__(self, switch: "Switch") -> None:
        self.switch = switch

    def drain_allowed(self, broadcast: bool) -> bool:
        return True

    def notify_begin(self, packet: Packet, broadcast: bool) -> None:
        pass

    def notify_rate(self, rate: float) -> None:
        pass

    def notify_end(self, packet: Packet) -> None:
        self.switch._deliver_to_cp(packet)


class Crossbar:
    """Bookkeeping for the 13x13 crossbar: which input feeds each output."""

    def __init__(self, n_ports: int) -> None:
        self.n_ports = n_ports
        self._output_source: Dict[int, int] = {}

    def connect(self, in_port: int, out_ports: Tuple[int, ...]) -> None:
        for port in out_ports:
            if port in self._output_source:
                raise RuntimeError(
                    f"crossbar output {port} already connected to "
                    f"input {self._output_source[port]}"
                )
            self._output_source[port] = in_port

    def disconnect(self, out_port: int) -> None:
        self._output_source.pop(out_port, None)

    def source_of(self, out_port: int) -> Optional[int]:
        return self._output_source.get(out_port)

    def clear(self) -> None:
        self._output_source.clear()

    def connections(self) -> Dict[int, int]:
        return dict(self._output_source)


class Switch:
    """One Autonet switch."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        uid: Uid,
        n_ports: int = PORTS_PER_SWITCH,
        fifo_bytes: Optional[int] = None,
        cut_through_bytes: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.uid = uid
        self.n_ports = n_ports
        self.powered = True

        kwargs = {}
        if fifo_bytes is not None:
            kwargs["fifo_bytes"] = fifo_bytes
        if cut_through_bytes is not None:
            kwargs["cut_through_bytes"] = cut_through_bytes
        self.ports: Dict[int, LinkUnit] = {
            p: LinkUnit(
                sim,
                name=f"{name}.p{p}",
                port_no=p,
                on_head_ready=self._head_ready,
                on_packet_drained=self._packet_drained,
                **kwargs,
            )
            for p in range(1, n_ports + 1)
        }
        for port, unit in self.ports.items():
            unit.tx.on_end = self._make_tx_end_hook(port)
            unit.on_panic = self._make_panic_hook(port)

        self.table = ForwardingTable(n_ports)
        self.crossbar = Crossbar(n_ports)
        self.engine = SchedulingEngine(sim, n_ports, grant=self._granted)
        self.discard_sink = DiscardSink()

        # port 0: control-processor injection FIFO and delivery sink
        self._cp_fifo = ReceiveFifo(
            sim,
            name=f"{name}.cp",
            capacity=1 << 30,
            on_head_ready=lambda pkt: self._head_ready(0, pkt),
        )
        self._cp_sink = CpSink(self)
        #: Autopilot's receive hook; set by the control program
        self.on_cp_packet: Optional[Callable[[Packet], None]] = None

        # statistics
        self.packets_forwarded = 0
        self.packets_discarded = 0
        self.packets_to_cp = 0
        self.resets = 0
        #: input port -> packets granted output (0 = control processor)
        self.port_forwarded: Dict[int, int] = {}
        #: input port -> packets that fully left its FIFO
        self.port_drained: Dict[int, int] = {}
        #: drop cause -> {input port -> count}; causes: "table-discard"
        #: (the forwarding entry said discard), "isolated" (port taken out
        #: of service mid-packet), "reset" (table load destroyed it)
        self.port_dropped: Dict[str, Dict[int, int]] = {}

    def _drop(self, cause: str, in_port: int, count: int = 1) -> None:
        per_port = self.port_dropped.setdefault(cause, {})
        per_port[in_port] = per_port.get(in_port, 0) + count

    # -- port-0 (control processor) interface ----------------------------------------------

    def inject_from_cp(self, packet: Packet) -> None:
        """The control processor queues a packet for transmission."""
        if not self.powered:
            return
        self._cp_fifo.begin_packet(packet)
        entry = self._cp_fifo.queue[-1]
        entry.bytes_in = float(entry.size)
        entry.arriving = False
        self._cp_fifo.recompute()

    def _deliver_to_cp(self, packet: Packet) -> None:
        self.packets_to_cp += 1
        self.crossbar.disconnect(0)
        self.engine.port_freed(0)
        if self.on_cp_packet is not None and self.powered:
            self.on_cp_packet(packet)

    # -- routing pipeline --------------------------------------------------------------------

    def _fifo_for(self, in_port: int) -> ReceiveFifo:
        return self._cp_fifo if in_port == 0 else self.ports[in_port].fifo

    def _head_ready(self, in_port: int, packet: Packet) -> None:
        """Address bytes captured: look up the table, queue a request."""
        if not self.powered:
            return
        entry = self.table.lookup(in_port, packet.dest_short)
        if entry.is_discard:
            self.packets_discarded += 1
            self._drop("table-discard", in_port)
            packet.record_hop(self.name, in_port, ())
            ib = self.sim.inband
            if ib is not None:
                ib.record_drop(packet, self.name, "table-discard")
            tr = self.sim.traffic
            if tr is not None:
                tr.record_drop(packet, self.name, "table-discard")
            self._fifo_for(in_port).connect_drain([self.discard_sink], broadcast=False)
            return
        self.engine.add_request(Request(in_port, entry, packet))

    def _granted(self, request: Request, ports: Tuple[int, ...]) -> None:
        fifo = self._fifo_for(request.in_port)
        targets: List[DrainTarget] = []
        for port in ports:
            if port == 0:
                targets.append(self._cp_sink)
            else:
                unit = self.ports[port]
                targets.append(unit.tx)
                unit.set_drain_source(fifo)
        self.crossbar.connect(request.in_port, ports)
        request.packet.record_hop(self.name, request.in_port, ports)
        ib = self.sim.inband
        if ib is not None:
            ib.record_hop(
                request.packet, self.name, request.in_port, ports,
                fifo.peek_level(),
            )
        self.packets_forwarded += 1
        self.port_forwarded[request.in_port] = (
            self.port_forwarded.get(request.in_port, 0) + 1
        )
        fifo.connect_drain(targets, broadcast=request.entry.broadcast)

    def _packet_drained(self, in_port: int, packet: Packet) -> None:
        """The head packet has fully left ``in_port``'s FIFO."""
        self.port_drained[in_port] = self.port_drained.get(in_port, 0) + 1

    def _make_panic_hook(self, port: int) -> Callable[[], None]:
        def hook() -> None:
            # reset this link unit: clear the FIFO and any held grants,
            # then reinitialize link control (re-announce flow control)
            self.isolate_port(port)
            unit = self.ports[port]
            if unit.fc_sender is not None:
                unit.fc_sender.reannounce()

        return hook

    def _make_tx_end_hook(self, port: int) -> Callable[[Packet], None]:
        def hook(packet: Packet) -> None:
            self.ports[port].set_drain_source(None)
            self.crossbar.disconnect(port)
            self.engine.port_freed(port)

        return hook

    # -- table loading / reset ------------------------------------------------------------------

    def isolate_port(self, in_port: int) -> None:
        """Take one port out of service (it was classified s.dead).

        Aborts any drain in progress from its FIFO -- releasing the
        crossbar connections and output ports it held -- drops its pending
        scheduling request, and clears its FIFO.  Without this, a dead
        port could wedge the outputs a granted broadcast had captured.
        """
        unit = self.ports[in_port]
        if unit.fifo.queue:
            self._drop("isolated", in_port, len(unit.fifo.queue))
        head = unit.fifo.head
        if head is not None and head.targets:
            packet = head.packet
            packet.corrupted = True
            for out_port, src in list(self.crossbar.connections().items()):
                if src != in_port:
                    continue
                if out_port == 0:
                    self.crossbar.disconnect(0)
                    self.engine.port_freed(0)
                    continue
                tx = self.ports[out_port].tx
                if tx.current is packet:
                    # the truncated packet gets a forced end marker
                    tx.notify_rate(0.0)
                    tx.notify_end(packet)  # on_end hook frees the port
                else:
                    self.ports[out_port].set_drain_source(None)
                    self.crossbar.disconnect(out_port)
                    self.engine.port_freed(out_port)
        self.engine.remove_requests_from(in_port)
        unit.reset()

    def reset(self) -> None:
        """Destroy all packets in the switch (FIFO clears, abort drains)."""
        self.resets += 1
        for port, unit in self.ports.items():
            if unit.fifo.queue:
                self._drop("reset", port, len(unit.fifo.queue))
            # abort any in-flight transmission: the truncated packet gets a
            # forced end marker and arrives corrupted downstream
            if unit.tx.current is not None:
                packet = unit.tx.current
                packet.corrupted = True
                unit.tx.notify_rate(0.0)
                unit.tx.notify_end(packet)
            unit.set_drain_source(None)
            unit.reset()
        self._cp_fifo.queue.clear()
        self._cp_fifo.drain_rate = 0.0
        self._cp_fifo.recompute()
        self.crossbar.clear()
        self.engine.clear()
        for port in range(self.n_ports + 1):
            self.engine.port_busy[port] = False

    def clear_table(self, reset_on_load: bool = True) -> None:
        """Step 1 of reconfiguration: constant (one-hop) entries only."""
        if reset_on_load:
            self.reset()
        self.table.clear_to_constant()
        rec = self.sim.recorder
        if rec is not None:
            rec.record(
                self.sim.now, self.name, CAT_TABLE, "table-clear", reset=reset_on_load
            )

    def load_table(
        self,
        entries: Dict[Tuple[int, int], ForwardingEntry],
        reset_on_load: bool = True,
        *,
        pretruncated: bool = False,
    ) -> None:
        """Load a computed configuration.

        The prototype hardware couples loading with a switch reset that
        destroys all packets in the switch (section 7); pass
        ``reset_on_load=False`` to model the proposed improvement.
        ``pretruncated`` is forwarded to :meth:`ForwardingTable.load`.
        """
        if reset_on_load:
            self.reset()
        self.table.load(entries, pretruncated=pretruncated)
        rec = self.sim.recorder
        if rec is not None:
            rec.record(
                self.sim.now,
                self.name,
                CAT_TABLE,
                "table-load",
                entries=len(entries),
                reset=reset_on_load,
            )

    # -- power -------------------------------------------------------------------------------------

    def power_off(self) -> None:
        """Crash the switch: stop forwarding, go silent on all links."""
        self.powered = False
        self.reset()
        for unit in self.ports.values():
            unit.enabled = False

    def power_on(self) -> None:
        """Boot: ports come back dead (Autopilot re-evaluates them)."""
        self.powered = True
        self.table.clear_to_constant()
        for unit in self.ports.values():
            unit.enabled = True

    # -- convenience ---------------------------------------------------------------------------------

    def attached_link_ports(self) -> List[int]:
        return [p for p, unit in self.ports.items() if unit.connected]

    def fifo_peek_levels(self) -> Dict[int, float]:
        """Receive-FIFO occupancy per connected port, read without
        advancing the fluid model (the time-series sampler's feed)."""
        return {
            p: unit.fifo.peek_level()
            for p, unit in sorted(self.ports.items())
            if unit.connected
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Switch {self.name} uid={self.uid}>"
