"""TAXI command alphabet and flow-control slot timing (sections 6.1, 6.2).

Every 256th slot on a channel is a flow-control slot carrying one of the
directives below.  We do not simulate each 20.48 microsecond slot as an
event; instead a :class:`FlowControlSender` latches the *desired* directive
and models the worst-case slot alignment: a change becomes visible on the
wire at the next flow-control slot boundary for the channel's phase, and
reaches the far end one propagation delay later.  The receiving side keeps
only the latched last-received directive plus reception statistics -- which
is also exactly the information the link-unit status bits expose.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Optional

from repro.constants import BYTE_TIME_NS, FLOW_CONTROL_SLOT_PERIOD
from repro.sim.engine import Simulator

#: nanoseconds between successive flow-control slots on a channel
FC_SLOT_PERIOD_NS = FLOW_CONTROL_SLOT_PERIOD * BYTE_TIME_NS


class Directive(Enum):
    """Flow-control directives (section 6.1)."""

    START = "start"
    STOP = "stop"
    HOST = "host"    # sent by host controllers in place of start
    IDHY = "idhy"    # "I don't hear you": force the far port to s.checking
    PANIC = "panic"  # reset the far link unit (paper: not yet implemented)
    NONE = "none"    # no directive received (e.g. alternate host port)


#: directives that permit transmission when latched at the transmitter
_PERMITS_TRANSMISSION = frozenset({Directive.START, Directive.HOST})


def next_fc_slot(now: int, phase: int) -> int:
    """First flow-control slot boundary at or after ``now`` for ``phase``."""
    if now <= phase:
        return phase
    elapsed = now - phase
    slots = -(-elapsed // FC_SLOT_PERIOD_NS)  # ceiling division
    return phase + slots * FC_SLOT_PERIOD_NS


class FlowControlSender:
    """Transmit-side latch for the directive carried on a channel.

    ``deliver`` is called with the directive when it arrives at the far
    end (slot boundary + propagation delay).  A forced directive (idhy)
    overrides the level-driven start/stop until released.
    """

    def __init__(
        self,
        sim: Simulator,
        deliver: Callable[["Directive"], None],
        propagation_ns: int,
        phase: int = 0,
        is_host: bool = False,
    ) -> None:
        self.sim = sim
        self.deliver = deliver
        self.propagation_ns = propagation_ns
        self.phase = phase % FC_SLOT_PERIOD_NS
        self.is_host = is_host
        #: directive implied by the local FIFO level
        self._level_directive = Directive.HOST if is_host else Directive.START
        #: override directive (idhy / panic / silence), or None
        self._forced: Optional[Directive] = None
        #: last directive actually emitted; None means nothing latched at
        #: the far end yet, so the first slot announces the current state
        self._on_wire: Optional[Directive] = None
        self._pending = None
        self._schedule()

    def _current(self) -> Directive:
        if self._forced is not None:
            return self._forced
        return self._level_directive

    def set_level_directive(self, directive: Directive) -> None:
        """Set the directive implied by the receive-FIFO level."""
        if self.is_host and directive is Directive.START:
            directive = Directive.HOST  # hosts send host instead of start
        if self.is_host and directive is Directive.STOP:
            # host controllers may not send stop (section 6.2)
            directive = Directive.HOST
        self._level_directive = directive
        self._schedule()

    def force(self, directive: Optional[Directive]) -> None:
        """Force a directive (idhy, none) or release the override."""
        self._forced = directive
        self._schedule()

    _pulse: Optional[Directive] = None

    def pulse(self, directive: Directive) -> None:
        """Send one special-purpose directive (panic) at the next slot,
        then resume the steady directive."""
        self._pulse = directive
        if self._pending is None and not self._muted:
            slot = next_fc_slot(self.sim.now, self.phase)
            self._pending = self.sim.at(slot, self._emit)

    def mute(self, muted: bool) -> None:
        """Silence the sender entirely (an alternate host port transmits
        only sync commands, no directives).  Unmuting re-announces."""
        self._muted = muted
        if not muted:
            self.reannounce()

    _muted = False

    def _schedule(self) -> None:
        if self._muted:
            return
        if self._current() == self._on_wire:
            return
        if self._pending is not None:
            return  # a slot is already scheduled; it will pick up the latest value
        slot = next_fc_slot(self.sim.now, self.phase)
        self._pending = self.sim.at(slot, self._emit)

    def _emit(self) -> None:
        self._pending = None
        if self._muted:
            return
        if self._pulse is not None:
            pulse = self._pulse
            self._pulse = None
            self.sim.after(self.propagation_ns, self.deliver, pulse)
            self._on_wire = None  # the steady value goes out next slot
            self._schedule()
            return
        directive = self._current()
        if directive == self._on_wire:
            return
        self._on_wire = directive
        self.sim.after(self.propagation_ns, self.deliver, directive)
        # the value may have changed again while waiting for the slot
        self._schedule()

    def reannounce(self) -> None:
        """Re-emit the current directive (link restored after an outage)."""
        self._on_wire = None
        self._schedule()

    @property
    def on_wire(self) -> Optional[Directive]:
        return self._on_wire


class FlowControlReceiver:
    """Receive-side latch: remembers the last directive received.

    Section 6.2 notes a design oversight: a port receiving *no* flow
    control keeps acting on the last directive received.  We reproduce
    that: when the far end goes silent the latched value persists, and the
    status sampler has to notice via the StartSeen counter.
    """

    def __init__(
        self,
        on_change: Optional[Callable[[Directive], None]] = None,
        initial: Directive = Directive.NONE,
    ) -> None:
        #: the power-up latch is physically unpredictable (section 6.2);
        #: callers choose what the hardware happened to hold
        self.last: Directive = initial
        self.last_change_time: int = 0
        self.on_change = on_change
        #: count of directives that permit transmission, since last sample
        self.starts_seen = 0
        self.idhy_seen = 0
        self.panic_seen = 0

    def receive(self, directive: Directive, now: int) -> None:
        if directive in _PERMITS_TRANSMISSION:
            self.starts_seen += 1
        if directive is Directive.IDHY:
            self.idhy_seen += 1
        if directive is Directive.PANIC:
            self.panic_seen += 1
        if directive is not self.last:
            self.last = directive
            self.last_change_time = now
            if self.on_change is not None:
                self.on_change(directive)

    @property
    def transmission_allowed(self) -> bool:
        """Whether the latched directive allows sending packet bytes."""
        return self.last in _PERMITS_TRANSMISSION

    @property
    def host_attached(self) -> bool:
        """The IsHost status bit: last directive was ``host``."""
        return self.last is Directive.HOST
