"""Autonet packet format (section 6.8) and control-plane frame types.

A client packet is a 32-byte Autonet header (destination and source short
addresses, Autonet type, encryption information) followed by an
encapsulated Ethernet packet (destination UID, source UID, Ethernet type,
data) and an 8-byte CRC.  Control packets (reconfiguration, connectivity
probes, SRP) use distinct Autonet type values and carry a message object
instead of client data.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, List, Optional, Tuple

from repro.constants import (
    AUTONET_HEADER_BYTES,
    CRC_BYTES,
    MAX_DATA_BYTES,
)
from repro.types import Uid, is_broadcast, truncate_address

#: Ethernet header carried inside an Autonet client packet (dst+src UID + type)
ETHERNET_HEADER_BYTES = 14

_packet_ids = itertools.count(1)


class PacketType(Enum):
    """Autonet type field values (type 1 is the client format, §6.8)."""

    CLIENT = 1
    RECONFIGURATION = 2
    SRP = 3
    CONNECTIVITY = 4
    DIAGNOSTIC = 5


@dataclass(slots=True)
class Packet:
    """One packet on the wire.

    ``payload`` is an opaque object for control packets (a message from
    :mod:`repro.core.messages`) or ``None`` for synthetic client data,
    whose length is given by ``data_bytes``.
    """

    dest_short: int
    src_short: int
    ptype: PacketType = PacketType.CLIENT
    dest_uid: Optional[Uid] = None
    src_uid: Optional[Uid] = None
    data_bytes: int = 0
    payload: Any = None
    encrypted: bool = False
    #: set when a FIFO overflow or injected noise damaged the packet
    corrupted: bool = False
    #: unique id for tracing
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: creation time (filled by the injector)
    created_at: int = 0
    #: (switch name, in port, out ports) per hop, for tracing and tests
    trail: List[Tuple[str, int, Tuple[int, ...]]] = field(default_factory=list)
    #: flight-recorder id of the send event; crosses the wire with the
    #: packet so the receive can link back to it causally
    flight_eid: Optional[int] = None
    #: in-band telemetry hop stack: (t_ns, switch, in port, out ports,
    #: fifo depth) per hop; None (the default) when inband telemetry is
    #: off -- no list is allocated on the disabled path
    hops: Optional[List[Tuple[int, str, int, Tuple[int, ...], float]]] = None

    def __post_init__(self) -> None:
        if not 0 <= self.data_bytes <= MAX_DATA_BYTES:
            raise ValueError(f"data length out of range: {self.data_bytes}")
        self.dest_short = truncate_address(self.dest_short)
        self.src_short = truncate_address(self.src_short)

    @property
    def wire_bytes(self) -> int:
        """Total bytes transmitted on a link for this packet."""
        if self.ptype is PacketType.CLIENT:
            return AUTONET_HEADER_BYTES + ETHERNET_HEADER_BYTES + self.data_bytes + CRC_BYTES
        # control packets: Autonet header + encoded message + CRC
        return AUTONET_HEADER_BYTES + self.data_bytes + CRC_BYTES

    @property
    def is_broadcast(self) -> bool:
        return is_broadcast(self.dest_short)

    def record_hop(self, switch_name: str, in_port: int, out_ports: Tuple[int, ...]) -> None:
        self.trail.append((switch_name, in_port, out_ports))

    def hop_count(self) -> int:
        return len(self.trail)

    def __repr__(self) -> str:
        return (
            f"Packet(#{self.packet_id} {self.ptype.name} "
            f"{self.src_short:#05x}->{self.dest_short:#05x} {self.wire_bytes}B)"
        )
