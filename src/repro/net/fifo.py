"""Receive-FIFO fluid model (sections 5.1, 6.2).

Each switch port buffers arriving bytes in a FIFO (4096 bytes in the real
hardware).  The FIFO's occupancy is piecewise-linear in time because every
link runs at the same 80 ns/byte rate and rates only change at discrete
events (flow-control transitions, packet boundaries, crossbar grants).  We
therefore track byte counts analytically and schedule a single *boundary*
event per FIFO at the earliest time anything interesting happens:

* the head packet's first two address bytes arrive (routing request, §6.3),
* cut-through becomes possible (25 bytes arrived, §3.5),
* the occupancy crosses the stop/start watermark (flow control, §6.2),
* the head packet finishes draining (output ports free, §5.1),
* the drain catches up with the arrival (pass-through or stall).

External state changes (grants, upstream rate changes, downstream flow
control) call :meth:`ReceiveFifo.recompute`, which advances the linear
state to "now" and reprograms the boundary event.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Sequence

from repro.constants import BYTE_TIME_NS, CUT_THROUGH_BYTES, DEFAULT_FIFO_BYTES
from repro.net.flowcontrol import Directive
from repro.net.packet import Packet
from repro.sim.engine import EventHandle, Simulator

_EPS = 1e-6


class DrainTarget:
    """Where a draining FIFO's bytes go: one or more output transmitters,
    or the discard sink.  Implementations forward begin/rate/end markers to
    the next hop (or nowhere)."""

    def drain_allowed(self, broadcast: bool) -> bool:
        raise NotImplementedError

    def notify_begin(self, packet: Packet, broadcast: bool) -> None:
        raise NotImplementedError

    def notify_rate(self, rate: float) -> None:
        raise NotImplementedError

    def notify_end(self, packet: Packet) -> None:
        raise NotImplementedError


class DiscardSink(DrainTarget):
    """Sinks packet bytes at link rate; used for discard table entries."""

    def __init__(self) -> None:
        self.packets_discarded = 0
        self.bytes_discarded = 0.0

    def drain_allowed(self, broadcast: bool) -> bool:
        return True

    def notify_begin(self, packet: Packet, broadcast: bool) -> None:
        pass

    def notify_rate(self, rate: float) -> None:
        pass

    def notify_end(self, packet: Packet) -> None:
        self.packets_discarded += 1
        self.bytes_discarded += packet.wire_bytes


class FifoPacket:
    """Book-keeping for one packet resident in (or flowing through) a FIFO."""

    __slots__ = ("packet", "size", "bytes_in", "bytes_out", "arriving",
                 "requested", "targets", "broadcast", "drain_started")

    def __init__(self, packet: Packet, arriving: bool = True) -> None:
        self.packet = packet
        #: wire size, latched once -- the dynamics read it constantly
        self.size: int = packet.wire_bytes
        self.bytes_in: float = 0.0
        self.bytes_out: float = 0.0
        self.arriving = arriving
        #: routing request issued to the switch for this packet
        self.requested = False
        #: drain connection (set by the crossbar on grant)
        self.targets: Optional[Sequence[DrainTarget]] = None
        self.broadcast = False
        self.drain_started = False

    @property
    def available(self) -> float:
        return self.bytes_in - self.bytes_out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FifoPacket({self.packet!r} in={self.bytes_in:.0f} "
                f"out={self.bytes_out:.0f} arriving={self.arriving})")


class ReceiveFifo:
    """The receive FIFO of one link unit, with start/stop flow control."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        capacity: int = DEFAULT_FIFO_BYTES,
        stop_fraction: float = 0.5,
        cut_through_bytes: int = CUT_THROUGH_BYTES,
        on_head_ready: Optional[Callable[[Packet], None]] = None,
        on_level_directive: Optional[Callable[[Directive], None]] = None,
        on_packet_drained: Optional[Callable[[Packet], None]] = None,
        on_overflow: Optional[Callable[[Packet], None]] = None,
        on_underflow: Optional[Callable[[Packet], None]] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.stop_threshold = capacity * (1.0 - stop_fraction)
        self.cut_through_bytes = cut_through_bytes
        self.on_head_ready = on_head_ready
        self.on_level_directive = on_level_directive
        self.on_packet_drained = on_packet_drained
        self.on_overflow = on_overflow
        self.on_underflow = on_underflow

        self.queue: Deque[FifoPacket] = deque()
        #: arrival rate in bytes per slot (0.0 or 1.0); applies to the
        #: newest entry while it is still arriving
        self.in_rate: float = 0.0
        #: current drain rate of the head packet
        self.drain_rate: float = 0.0
        self._last_update: int = sim.now
        self._boundary: Optional[EventHandle] = None
        #: directive currently implied by the level (start below threshold)
        self._level_stop = False

        # statistics / status-bit feeds
        self.bytes_forwarded: float = 0.0
        self.packets_seen: int = 0
        self.max_level: float = 0.0
        self.overflowed = False
        #: drains that began while the packet was still arriving (§3.5)
        self.cut_through_packets: int = 0
        #: drains that began only after the whole packet was buffered
        self.buffered_packets: int = 0

    # -- public queries ---------------------------------------------------------

    @property
    def level(self) -> float:
        """Current occupancy in bytes (advance first for exactness)."""
        self._advance()
        return self._level()

    def peek_level(self) -> float:
        """Occupancy now, projected from the linear state *without*
        advancing it.  The time-series sampler reads this: advancing in
        :meth:`_advance` splits the float accumulation into different
        partial sums, so a sampled run would diverge (in the last ulp)
        from an unsampled one.  Projection keeps sampling observational.
        """
        level = self._level()
        dt = self.sim.now - self._last_update
        if dt <= 0:
            return level
        slots = dt / BYTE_TIME_NS
        entry = self._arriving_entry()
        if entry is not None and self.in_rate > 0:
            level += min(float(entry.size) - entry.bytes_in, self.in_rate * slots)
        head = self.head
        if head is not None and self.drain_rate > 0:
            inflow = self.in_rate * slots if head is entry else 0.0
            level -= min(self.drain_rate * slots,
                         head.bytes_in - head.bytes_out + inflow)
        return max(0.0, level)

    def _level(self) -> float:
        # same accumulation order as sum() over the queue, without the
        # generator machinery (the queue is almost always 0 or 1 deep)
        total = 0
        for entry in self.queue:
            total += entry.bytes_in - entry.bytes_out
        return total

    @property
    def head(self) -> Optional[FifoPacket]:
        return self.queue[0] if self.queue else None

    @property
    def stopped(self) -> bool:
        """Whether the level currently demands a ``stop`` directive."""
        return self._level_stop

    # -- upstream (arrival) interface ---------------------------------------------

    def begin_packet(self, packet: Packet) -> None:
        """A packet's first byte is arriving now."""
        self._advance()
        entry = FifoPacket(packet, arriving=True)
        self.queue.append(entry)
        self.packets_seen += 1
        self._recompute()

    def set_in_rate(self, rate: float) -> None:
        """The arrival rate changed (upstream started/stopped sending)."""
        self._advance()
        self.in_rate = rate
        self._recompute()

    def end_packet(self, packet: Packet) -> None:
        """The packet's last byte has arrived."""
        self._advance()
        entry = self._arriving_entry()
        if entry is None or entry.packet is not packet:
            # the entry may already have been fully drained and popped
            # (cut-through finished exactly as the tail arrived)
            self.in_rate = 0.0
            self._recompute()
            return
        entry.bytes_in = float(entry.size)
        entry.arriving = False
        self.in_rate = 0.0
        self._recompute()

    def _arriving_entry(self) -> Optional[FifoPacket]:
        if self.queue and self.queue[-1].arriving:
            return self.queue[-1]
        return None

    # -- drain (crossbar) interface ---------------------------------------------

    def connect_drain(self, targets: Sequence[DrainTarget], broadcast: bool) -> None:
        """The router granted output ports to the head packet."""
        self._advance()
        entry = self.head
        if entry is None:
            raise RuntimeError(f"{self.name}: grant with empty FIFO")
        entry.targets = list(targets)
        entry.broadcast = broadcast
        self._recompute()

    def recompute(self) -> None:
        """Re-evaluate rates after an external state change."""
        self._advance()
        self._recompute()

    # -- internal dynamics ---------------------------------------------------------

    def _advance(self) -> None:
        now = self.sim.now
        dt = now - self._last_update
        if dt <= 0:
            return
        slots = dt / BYTE_TIME_NS
        queue = self.queue
        entry = queue[-1] if queue and queue[-1].arriving else None
        if entry is not None and self.in_rate > 0:
            entry.bytes_in = min(float(entry.size), entry.bytes_in + self.in_rate * slots)
        head = queue[0] if queue else None
        if head is not None and self.drain_rate > 0:
            moved = min(self.drain_rate * slots, head.bytes_in - head.bytes_out)
            head.bytes_out += moved
            self.bytes_forwarded += moved
        self._last_update = now
        level = self._level()
        if level > self.max_level:
            self.max_level = level
        if level > self.capacity + _EPS and not self.overflowed:
            self.overflowed = True
            victim = self._arriving_entry()
            if victim is not None:
                victim.packet.corrupted = True
            ib = self.sim.inband
            if ib is not None:
                ib.record_queue_drop(victim.packet if victim else None, self.name)
            tr = self.sim.traffic
            if tr is not None and victim is not None:
                tr.record_drop(victim.packet, self.name, "fifo-overflow")
            if self.on_overflow is not None:
                self.on_overflow(victim.packet if victim else None)

    def _effective_in_rate(self) -> float:
        queue = self.queue
        return self.in_rate if queue and queue[-1].arriving else 0.0

    def _desired_drain_rate(self) -> float:
        queue = self.queue
        head = queue[0] if queue else None
        if head is None or head.targets is None:
            return 0.0
        if not head.drain_started:
            threshold = min(self.cut_through_bytes, head.size)
            if head.bytes_in + _EPS < threshold:
                return 0.0
        broadcast = head.broadcast
        for t in head.targets:
            if not t.drain_allowed(broadcast):
                return 0.0
        if head.bytes_in - head.bytes_out > _EPS:
            return 1.0
        if head.arriving or (queue and queue[-1] is head and self.in_rate > 0):
            # pass-through: forward at the arrival rate
            rate = self.in_rate if head.arriving and queue[-1] is head else 0.0
            if rate <= 0 and head.drain_started and head.bytes_out + _EPS < head.size:
                if self.on_underflow is not None:
                    self.on_underflow(head.packet)
            return rate
        return 0.0

    def _recompute(self) -> None:
        queue = self.queue
        head = queue[0] if queue else None

        # head routing request: first two address bytes present
        if head is not None and not head.requested and head.bytes_in + _EPS >= 2:
            head.requested = True
            if self.on_head_ready is not None:
                self.on_head_ready(head.packet)

        # (re)establish drain rate and emit begin/rate markers downstream
        new_rate = self._desired_drain_rate()
        if head is not None and head.targets is not None:
            if new_rate > 0 and not head.drain_started:
                head.drain_started = True
                if head.arriving:
                    self.cut_through_packets += 1
                else:
                    self.buffered_packets += 1
                for target in head.targets:
                    target.notify_begin(head.packet, head.broadcast)
            if head.drain_started and abs(new_rate - self.drain_rate) > _EPS:
                for target in head.targets:
                    target.notify_rate(new_rate)
        self.drain_rate = new_rate if (head is not None and head.drain_started) else 0.0

        # head completion
        if head is not None and head.bytes_out + _EPS >= head.size:
            self._complete_head()
            return  # _complete_head recurses into _recompute

        # flow-control directive from level trajectory
        level = self._level()
        net = self._effective_in_rate() - self.drain_rate
        if level > self.stop_threshold + _EPS:
            self._set_level_stop(True)
        elif level < self.stop_threshold - _EPS or (abs(level - self.stop_threshold) <= _EPS and net <= 0):
            self._set_level_stop(False)

        self._program_boundary(level, net)

    # _recompute is entered 80k+ times on the src-lan profile scenario;
    # everything below stays expression-for-expression identical to keep
    # the float trajectories (and hence packet timing) byte-identical.

    def _set_level_stop(self, stop: bool) -> None:
        if stop == self._level_stop:
            return
        self._level_stop = stop
        if self.on_level_directive is not None:
            self.on_level_directive(Directive.STOP if stop else Directive.START)

    def _complete_head(self) -> None:
        head = self.queue.popleft()
        self.drain_rate = 0.0
        if head.targets is not None:
            for target in head.targets:
                target.notify_end(head.packet)
        if self.on_packet_drained is not None:
            self.on_packet_drained(head.packet)
        # promote the next packet: its routing request may now be issued
        self._recompute()

    def _program_boundary(self, level: float, net: float) -> None:
        """Schedule the earliest future event that changes the dynamics."""
        candidates: List[float] = []
        queue = self.queue
        head = queue[0] if queue else None
        arriving = queue[-1] if queue and queue[-1].arriving else None
        in_rate = self.in_rate if arriving is not None else 0.0

        if head is not None:
            if not head.requested and in_rate > 0 and head is arriving:
                candidates.append((2.0 - head.bytes_in) / in_rate)
            if head.targets is not None and not head.drain_started and in_rate > 0 \
                    and head is arriving:
                threshold = min(self.cut_through_bytes, head.size)
                candidates.append((threshold - head.bytes_in) / in_rate)
            drain_rate = self.drain_rate
            if drain_rate > 0:
                # completion of the head packet
                candidates.append((head.size - head.bytes_out) / drain_rate)
                # drain catches up with arrival (stall / pass-through switch)
                available = head.bytes_in - head.bytes_out
                if head is arriving and drain_rate > in_rate:
                    candidates.append(available / (drain_rate - in_rate))
                elif not head.arriving and available < head.size - head.bytes_out:
                    candidates.append(available / drain_rate)

        # aim half a byte past the watermark so the crossing is strict
        # (landing exactly on it would reschedule a zero-length step)
        if net > _EPS and level <= self.stop_threshold + _EPS:
            candidates.append((self.stop_threshold - level) / net + 0.5)
        elif net < -_EPS and level >= self.stop_threshold - _EPS:
            candidates.append((level - self.stop_threshold) / (-net) + 0.5)
        # capacity crossing: detect overflow when it happens, not later
        if net > _EPS and level <= self.capacity + _EPS:
            candidates.append((self.capacity - level) / net + 0.5)

        future = [c for c in candidates if c > _EPS]
        boundary = self._boundary
        if not future:
            if boundary is not None:
                boundary.cancel()
                self._boundary = None
            return
        delay_ns = max(1, int(round(min(future) * BYTE_TIME_NS)))
        if boundary is not None:
            # reprogramming to the same instant: keep the armed event.
            # The handler (advance + recompute) is idempotent at an
            # instant, so its position among same-time events is free.
            if boundary.time == self.sim.now + delay_ns:
                return
            boundary.cancel()
        self._boundary = self.sim.after(delay_ns, self._on_boundary)

    def _on_boundary(self) -> None:
        self._boundary = None
        self._advance()
        self._recompute()
