"""Switch forwarding tables (section 6.3).

A table is indexed by the concatenation of the receiving port number and a
packet's destination short address.  Each entry holds a 13-bit port vector
and a broadcast flag:

* ``broadcast = 0``: the vector lists *alternative* ports -- the switch
  sends on the first free one, preferring the lowest number;
* ``broadcast = 1``: the vector lists ports that must all forward the
  packet *simultaneously*; an all-zero vector means discard.

The *constant part* of a table implements the reserved addresses: one-hop
switch-to-switch addresses 0x001-0x00F, the local-switch address 0x000,
and loopback 0xFFC.  It survives the table clear at the start of a
reconfiguration, which is why SRP debugging packets keep working while
routing is down (section 6.7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.constants import (
    ADDR_LOCAL_SWITCH,
    ADDR_LOOPBACK,
    ADDR_ONE_HOP_BASE,
    ADDR_ONE_HOP_LIMIT,
    CONTROL_PROCESSOR_PORT,
    PORTS_PER_SWITCH,
)
from repro.types import truncate_address

#: entry meaning "discard the packet": broadcast with an empty vector
DISCARD = None


@dataclass(frozen=True)
class ForwardingEntry:
    """One forwarding-table entry: a port vector plus the broadcast flag."""

    ports: Tuple[int, ...]
    broadcast: bool = False

    def __post_init__(self) -> None:
        if self.ports != tuple(sorted(self.ports)):
            object.__setattr__(self, "ports", tuple(sorted(self.ports)))
        for port in self.ports:
            if not 0 <= port <= PORTS_PER_SWITCH:
                raise ValueError(f"port out of range: {port}")

    @property
    def is_discard(self) -> bool:
        return self.broadcast and not self.ports


#: the explicit discard entry stored in tables
DISCARD_ENTRY = ForwardingEntry(ports=(), broadcast=True)


class ForwardingTable:
    """The forwarding memory of one switch."""

    def __init__(self, n_ports: int = PORTS_PER_SWITCH) -> None:
        self.n_ports = n_ports
        self._entries: Dict[Tuple[int, int], ForwardingEntry] = {}
        self._constant: Dict[Tuple[int, int], ForwardingEntry] = {}
        self._install_constant_part()
        #: incremented on every full load, for tests and tracing
        self.generation = 0

    def _install_constant_part(self) -> None:
        """One-hop, local-switch, and loopback entries (section 6.3)."""
        for out_port in range(1, self.n_ports + 1):
            one_hop = ADDR_ONE_HOP_BASE + out_port - 1
            if one_hop > ADDR_ONE_HOP_LIMIT:
                break
            # from the control processor: transmit on the numbered port
            self._constant[(CONTROL_PROCESSOR_PORT, one_hop)] = ForwardingEntry((out_port,))
            # from any external port: deliver to the control processor
            for in_port in range(1, self.n_ports + 1):
                self._constant[(in_port, one_hop)] = ForwardingEntry(
                    (CONTROL_PROCESSOR_PORT,)
                )
        for in_port in range(1, self.n_ports + 1):
            # "0000" from a host: the local control processor
            self._constant[(in_port, ADDR_LOCAL_SWITCH)] = ForwardingEntry(
                (CONTROL_PROCESSOR_PORT,)
            )
            # "FFFC": reflect back down the receiving link
            self._constant[(in_port, ADDR_LOOPBACK)] = ForwardingEntry((in_port,))
        self._entries.update(self._constant)

    # -- lookup -------------------------------------------------------------------------

    def lookup(self, in_port: int, address: int) -> ForwardingEntry:
        """Return the entry for (receiving port, destination short address).

        Addresses not present in the table are discarded, as are the
        reserved values 0xFF0-0xFFB.
        """
        address = truncate_address(address)
        return self._entries.get((in_port, address), DISCARD_ENTRY)

    # -- loading --------------------------------------------------------------------------

    def clear_to_constant(self) -> None:
        """Step 1 of reconfiguration: forward only one-hop packets."""
        self._entries = dict(self._constant)
        self.generation += 1

    def set_entry(self, in_port: int, address: int, entry: ForwardingEntry) -> None:
        self._entries[(in_port, truncate_address(address))] = entry

    def remove_entry(self, in_port: int, address: int) -> None:
        self._entries.pop((in_port, truncate_address(address)), None)

    def load(
        self,
        entries: Dict[Tuple[int, int], ForwardingEntry],
        *,
        pretruncated: bool = False,
    ) -> None:
        """Load a computed configuration on top of the constant part.

        ``pretruncated=True`` asserts every key's address is already within
        the short-address range (true for tables straight out of
        :func:`repro.core.routing.build_forwarding_entries`), letting the
        load run as one C-speed dict update instead of a per-entry loop.
        """
        new = dict(self._constant)
        if pretruncated:
            new.update(entries)
        else:
            for (in_port, address), entry in entries.items():
                new[(in_port, truncate_address(address))] = entry
        self._entries = new
        self.generation += 1

    def entries(self) -> Dict[Tuple[int, int], ForwardingEntry]:
        return dict(self._entries)

    def non_constant_entries(self) -> Dict[Tuple[int, int], ForwardingEntry]:
        return {
            key: entry
            for key, entry in self._entries.items()
            if self._constant.get(key) != entry
        }

    def __len__(self) -> int:
        return len(self._entries)
