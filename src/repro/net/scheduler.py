"""First-come, first-considered output-port scheduling (section 6.4).

The engine keeps a queue of forwarding requests (at most one per input
port, because only the packet at the head of each FIFO is considered).  A
vector of free output ports is matched against the queue in arrival order:

* an *alternative* request (broadcast = 0) captures any one free matching
  port, preferring the lowest number;
* a *simultaneous* request (broadcast = 1) accumulates matching free ports
  -- reserving them against younger requests -- and is granted only when
  the whole set is captured.

Requests may be serviced out of order when the free ports don't suit older
requests, but a broadcast request's reservations guarantee it is
eventually scheduled: starvation freedom, which
``tests/net/test_scheduler.py`` checks directly.  One request is scheduled
every 480 ns, bounding the switch at ~2 M forwarding decisions per second.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.constants import ROUTER_DECISION_TIME_NS
from repro.net.forwarding import ForwardingEntry
from repro.net.packet import Packet
from repro.sim.engine import EventHandle, Simulator


class Request:
    """A forwarding request from one input port's head packet."""

    __slots__ = ("in_port", "entry", "packet", "captured", "queued_at")

    def __init__(self, in_port: int, entry: ForwardingEntry, packet: Packet) -> None:
        self.in_port = in_port
        self.entry = entry
        self.packet = packet
        #: ports already reserved for a simultaneous (broadcast) request
        self.captured: Set[int] = set()
        #: set when the request enters the engine's queue
        self.queued_at = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "bcast" if self.entry.broadcast else "alt"
        return f"<Request in={self.in_port} {kind} ports={self.entry.ports}>"


GrantCallback = Callable[[Request, Tuple[int, ...]], None]


class SchedulingEngine:
    """The Xilinx scheduling engine of Figure 7."""

    def __init__(
        self,
        sim: Simulator,
        n_ports: int,
        grant: GrantCallback,
        decision_ns: int = ROUTER_DECISION_TIME_NS,
    ) -> None:
        self.sim = sim
        self.n_ports = n_ports
        self.grant = grant
        self.decision_ns = decision_ns
        #: oldest request first (the right-most queue slot in Figure 7)
        self.queue: List[Request] = []
        self.port_busy: Dict[int, bool] = {p: False for p in range(n_ports + 1)}
        self._reserved: Dict[int, Request] = {}
        self._busy_until = 0
        self._scan_event: Optional[EventHandle] = None
        self.grants = 0
        #: optional repro.obs histogram of grant waits (ns); None = off
        self.wait_hist = None

    # -- external interface ------------------------------------------------------------

    def add_request(self, request: Request) -> None:
        request.queued_at = self.sim.now
        self.queue.append(request)
        self._kick()

    def port_freed(self, port: int) -> None:
        self.port_busy[port] = False
        self._kick()

    def mark_port_busy(self, port: int) -> None:
        self.port_busy[port] = True

    def clear(self) -> None:
        """Drop all pending requests and reservations (switch reset)."""
        self.queue.clear()
        self._reserved.clear()
        if self._scan_event is not None:
            self._scan_event.cancel()
            self._scan_event = None

    def remove_requests_from(self, in_port: int) -> None:
        """Drop pending requests from one input port (port isolation),
        releasing any output ports a broadcast request had reserved."""
        removed = [r for r in self.queue if r.in_port == in_port]
        if not removed:
            return
        self.queue = [r for r in self.queue if r.in_port != in_port]
        for request in removed:
            for port in request.captured:
                if self._reserved.get(port) is request:
                    del self._reserved[port]
        self._kick()

    def pending(self) -> int:
        return len(self.queue)

    # -- the scan -----------------------------------------------------------------------

    def _kick(self) -> None:
        if self._scan_event is not None or not self.queue:
            return
        at = max(self.sim.now, self._busy_until)
        self._scan_event = self.sim.at(at, self._scan)

    def _free_ports(self) -> Set[int]:
        return {
            p
            for p in range(self.n_ports + 1)
            if not self.port_busy[p] and p not in self._reserved
        }

    def _scan(self) -> None:
        self._scan_event = None
        free = self._free_ports()
        for request in self.queue:
            if request.entry.broadcast:
                want = set(request.entry.ports)
                newly = (want - request.captured) & free
                for port in newly:
                    request.captured.add(port)
                    self._reserved[port] = request
                free -= newly
                if request.captured == want:
                    self._grant(request, tuple(sorted(want)))
                    return
            else:
                matches = sorted(set(request.entry.ports) & free)
                if matches:
                    self._grant(request, (matches[0],))
                    return
        # nothing grantable now; wait for the next port_freed/add_request

    def _grant(self, request: Request, ports: Tuple[int, ...]) -> None:
        self.queue.remove(request)
        for port in ports:
            self._reserved.pop(port, None)
            self.port_busy[port] = True
        self._busy_until = self.sim.now + self.decision_ns
        self.grants += 1
        if self.wait_hist is not None:
            self.wait_hist.observe(self.sim.now - request.queued_at)
        self.grant(request, ports)
        self._kick()
