"""Data-plane substrate: packets, links, FIFOs, link units, switches.

This package models the Autonet hardware of sections 5 and 6 of the paper
at byte-time fidelity using an event-driven fluid model: FIFO occupancies
are piecewise-linear in time and events fire exactly at threshold
crossings, packet boundaries, and flow-control transitions.
"""

from repro.net.packet import Packet, PacketType
from repro.net.flowcontrol import Directive
from repro.net.fifo import ReceiveFifo
from repro.net.link import Link, LinkState
from repro.net.forwarding import ForwardingEntry, ForwardingTable
from repro.net.switch import Switch

__all__ = [
    "Packet",
    "PacketType",
    "Directive",
    "ReceiveFifo",
    "Link",
    "LinkState",
    "ForwardingEntry",
    "ForwardingTable",
    "Switch",
]
