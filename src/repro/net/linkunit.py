"""Link units: the per-port hardware of an Autonet switch (section 5.1).

A link unit terminates one full-duplex link.  The receive path buffers
arriving bytes in the 4096-byte FIFO, captures the address bytes for the
router, and derives the start/stop flow control sent back on the reverse
channel.  The transmit path relays a draining FIFO onto the link.  The
unit exposes the status bits of section 6.5.2 that Autopilot's status
sampler polls, and the control-register operations (send idhy, reset).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Optional

from repro.constants import DEFAULT_FIFO_BYTES, DEFAULT_STOP_FRACTION
from repro.net.fifo import ReceiveFifo
from repro.net.flowcontrol import Directive, FlowControlReceiver, FlowControlSender
from repro.net.link import Endpoint, Transmitter
from repro.net.packet import Packet
from repro.sim.engine import Simulator


@dataclass(slots=True)
class StatusSample:
    """One read of a link unit's status bits (section 6.5.2).

    ``is_host``, ``xmit_ok`` and ``in_packet`` report current conditions;
    the rest report whether the condition occurred since the last read.
    """

    is_host: bool = False
    xmit_ok: bool = False
    in_packet: bool = False
    bad_code: bool = False
    bad_syntax: bool = False
    overflow: bool = False
    underflow: bool = False
    idhy_seen: bool = False
    panic_seen: bool = False
    progress_seen: bool = True
    start_seen: bool = False
    #: only stop directives are being received (distinct from silence:
    #: an alternate host port sends no directives at all)
    stop_seen: bool = False


class LinkUnit(Endpoint):
    """One external switch port: receive FIFO, flow control, transmitter."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        port_no: int,
        on_head_ready: Callable[[int, Packet], None],
        on_packet_drained: Callable[[int, Packet], None],
        fifo_bytes: int = DEFAULT_FIFO_BYTES,
        stop_fraction: float = DEFAULT_STOP_FRACTION,
        cut_through_bytes: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.port_no = port_no
        self._on_head_ready = on_head_ready
        self._on_packet_drained = on_packet_drained
        #: false while the owning switch is powered off
        self.enabled = True
        #: the section 7 proposal: tag up- and down-direction traffic with
        #: different start commands so a link unit can discard packets
        #: arriving in the wrong direction (its own reflected signal).
        #: Off by default -- the paper proposes but does not build it.
        self.discard_misdirected = False
        #: invoked when a panic directive arrives (wired by the switch)
        self.on_panic: Optional[Callable[[], None]] = None
        self.misdirected_discards = 0
        #: packets lost to receive-FIFO overflow on this port
        self.overflow_drops = 0
        # cumulative time the far end's stop directive gated this
        # transmitter (the paper's congestion signature, section 6.2)
        self._stop_time_ns = 0
        self._stopped_since: Optional[int] = None

        self._overflow_flag = False
        self._underflow_flag = False

        from repro.constants import CUT_THROUGH_BYTES

        self.fifo = ReceiveFifo(
            sim,
            name=f"{name}.fifo",
            capacity=fifo_bytes,
            stop_fraction=stop_fraction,
            cut_through_bytes=(
                CUT_THROUGH_BYTES if cut_through_bytes is None else cut_through_bytes
            ),
            on_head_ready=lambda pkt: self._on_head_ready(self.port_no, pkt),
            on_level_directive=self._level_directive,
            on_packet_drained=lambda pkt: self._on_packet_drained(self.port_no, pkt),
            on_overflow=self._note_overflow,
            on_underflow=self._note_underflow,
        )
        # The value latched at power-up is unpredictable (section 6.2); we
        # default to the permissive value so a port wired to an alternate
        # host port forwards packets (which the host then ignores), as the
        # design intended.  Tests preset STOP to exercise the oversight.
        self.fc_receiver = FlowControlReceiver(
            on_change=self._fc_changed, initial=Directive.START
        )
        self.tx = Transmitter(self, self.fc_receiver)
        #: created when a link is attached (needs the endpoint wired first)
        self.fc_sender: Optional[FlowControlSender] = None
        #: forced directive while the port is administratively dead
        self._forced_directive: Optional[Directive] = None
        # sampling bookkeeping
        self._last_bytes_forwarded = 0.0
        self._last_packets_seen = 0

    # -- wiring ----------------------------------------------------------------------

    def attach_link(self) -> None:
        """Called once the link reference is set; builds the fc sender."""
        if self.link is None:
            raise RuntimeError(f"{self.name}: no link attached")
        self.fc_sender = FlowControlSender(
            self.sim,
            deliver=lambda d: self.link.send_flow_control(self, d),
            propagation_ns=0,
            # per-port slot phase, stable across runs (str hash is salted)
            phase=(zlib.crc32(self.name.encode()) % 256) * 80,
        )
        if self._forced_directive is not None:
            self.fc_sender.force(self._forced_directive)
        if self.fifo.stopped:
            self.fc_sender.set_level_directive(Directive.STOP)

    @property
    def connected(self) -> bool:
        return self.link is not None

    # -- receive path (Endpoint interface) ----------------------------------------------

    def rx_begin_packet(self, packet: Packet) -> None:
        if not self.enabled:
            return
        if (
            self.discard_misdirected
            and self.link is not None
            and self.link.received_condition(self) == "own-signal"
        ):
            # direction-tagged start commands reveal the packet as our own
            # reflection: discard it in the link unit (section 7 proposal).
            # The stray rate/end markers that follow are harmless: with no
            # matching FIFO entry they are ignored.
            self.misdirected_discards += 1
            ib = self.sim.inband
            if ib is not None:
                ib.record_drop(packet, self.name, "misdirected")
            return
        self.fifo.begin_packet(packet)

    def rx_set_rate(self, rate: float) -> None:
        if self.enabled:
            self.fifo.set_in_rate(rate)

    def rx_end_packet(self, packet: Packet) -> None:
        if self.enabled:
            self.fifo.end_packet(packet)

    def rx_flow_control(self, directive: Directive) -> None:
        if not self.enabled:
            return
        self.fc_receiver.receive(directive, self.sim.now)
        if directive is Directive.PANIC and self.on_panic is not None:
            # panic forces this link unit to reset: clear the receive FIFO
            # and reinitialize the link control hardware so that
            # reconfiguration packets can get through (section 6.1)
            self.on_panic()

    def describe_transmission(self) -> str:
        return "normal" if self.enabled else "silence"

    def on_link_state_change(self) -> None:
        # Directives recur every flow-control slot on a real channel, but
        # our model only delivers changes.  When the physical state of the
        # link changes -- healed, or now reflecting our own signal back --
        # the periodic stream starts reaching a (possibly new) receiver,
        # which the model expresses by re-announcing the current value.
        # A CUT link's re-announcement is dropped by the link itself, so
        # the far latch keeps the last directive (the §6.2 oversight).
        if self.fc_sender is not None:
            self.fc_sender.reannounce()

    # -- flow-control coupling ---------------------------------------------------------

    def _level_directive(self, directive: Directive) -> None:
        if self.fc_sender is not None:
            self.fc_sender.set_level_directive(directive)

    def _fc_changed(self, directive: Directive) -> None:
        allowed = self.fc_receiver.transmission_allowed
        if not allowed and self._stopped_since is None:
            self._stopped_since = self.sim.now
        elif allowed and self._stopped_since is not None:
            self._stop_time_ns += self.sim.now - self._stopped_since
            self._stopped_since = None
        # re-gate any drain this port's transmitter is serving
        self.fifo_of_current_drain_recompute()

    def cumulative_stop_ns(self, now: Optional[int] = None) -> int:
        """Total time transmission on this port has been stop-gated."""
        total = self._stop_time_ns
        if self._stopped_since is not None:
            total += (self.sim.now if now is None else now) - self._stopped_since
        return total

    def fifo_of_current_drain_recompute(self) -> None:
        """Ask the FIFO currently draining through this transmitter to
        re-evaluate its rate.  The switch wires this up via the crossbar
        bookkeeping; overridden there."""
        if self._drain_source is not None:
            self._drain_source.recompute()

    _drain_source: Optional[ReceiveFifo] = None

    def set_drain_source(self, fifo: Optional[ReceiveFifo]) -> None:
        self._drain_source = fifo

    # -- control register ---------------------------------------------------------------

    def force_directive(self, directive: Optional[Directive]) -> None:
        """Force idhy (port dead) or release to level-driven flow control."""
        self._forced_directive = directive
        if self.fc_sender is not None:
            self.fc_sender.force(directive)

    def send_panic(self) -> None:
        """Send one panic directive to force the far link unit to reset
        (section 6.1; the paper had not yet implemented this facility)."""
        if self.fc_sender is not None:
            self.fc_sender.pulse(Directive.PANIC)

    def reset(self) -> None:
        """Clear the receive FIFO, destroying any packets it holds."""
        self.fifo.queue.clear()
        self.fifo.drain_rate = 0.0
        self.fifo.recompute()

    # -- status bits (section 6.5.2) ------------------------------------------------------

    def _note_overflow(self, packet: Optional[Packet]) -> None:
        self._overflow_flag = True
        self.overflow_drops += 1
        self.fifo.overflowed = False  # re-arm detection

    def _note_underflow(self, packet: Packet) -> None:
        self._underflow_flag = True

    def sample_status(self) -> StatusSample:
        """Read and clear the accumulated status bits."""
        sample = StatusSample()
        sample.is_host = self.fc_receiver.host_attached
        sample.xmit_ok = self.fc_receiver.transmission_allowed
        sample.in_packet = self.tx.current is not None

        condition = self.link.received_condition(self) if self.link else "silence"
        sample.bad_code = condition in ("silence", "noise")
        sample.bad_syntax = condition == "sync-only"

        sample.overflow = self._overflow_flag
        sample.underflow = self._underflow_flag
        self._overflow_flag = False
        self._underflow_flag = False

        # directives recur every flow-control slot on real links, so a
        # latched idhy is a chronic condition, not a one-shot event
        sample.idhy_seen = (
            self.fc_receiver.idhy_seen > 0
            or (condition == "normal" and self.fc_receiver.last is Directive.IDHY)
        )
        sample.panic_seen = self.fc_receiver.panic_seen > 0
        self.fc_receiver.idhy_seen = 0
        self.fc_receiver.panic_seen = 0

        # StartSeen: a directive permitting transmission is on the wire.
        # Directives recur every flow-control slot, so while the remote's
        # latched transmission is start/host the condition is chronic.
        sample.start_seen = (
            condition in ("normal", "own-signal")
            and self.fc_receiver.last in (Directive.START, Directive.HOST)
        )
        sample.stop_seen = (
            condition in ("normal", "own-signal")
            and self.fc_receiver.last is Directive.STOP
        )

        forwarded = self.fifo.bytes_forwarded - self._last_bytes_forwarded
        seen = self.fifo.packets_seen - self._last_packets_seen
        self._last_bytes_forwarded = self.fifo.bytes_forwarded
        self._last_packets_seen = self.fifo.packets_seen
        waiting = bool(self.fifo.queue)
        sample.progress_seen = forwarded > 0 or (seen == 0 and not waiting)
        return sample

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LinkUnit {self.name}>"
