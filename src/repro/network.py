"""The top-level facade: build, run, and break an Autonet.

`Network` wires a :class:`~repro.topology.TopologySpec` into simulated
switches running Autopilot, attaches dual-homed hosts, and offers the
fault injectors the paper's monitoring machinery exists to survive: cut
links, intermittent links, reflecting (unterminated) links, switch
crashes and restarts, and host power-offs.  It also records the
measurements the benchmark harness reports: per-epoch reconfiguration
durations (first tree-position packet to last forwarding-table load,
section 6.6.5) and convergence state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.constants import SEC
from repro.core.autopilot import Autopilot, AutopilotParams
from repro.core.topo import TopologyMap
from repro.host.controller import HostController
from repro.host.driver import AutonetDriver
from repro.net.link import Link, LinkState, connect
from repro.net.switch import Switch
from repro.obs.flight import FlightRecorder
from repro.obs.control import ControlAccounting
from repro.obs.inband import InbandConfig, InbandTelemetry
from repro.obs.profiler import EventLoopProfiler
from repro.obs.spans import ReconfigTracer
from repro.obs.timeseries import TimeSeriesConfig, TimeSeriesSampler
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import MergedLog
from repro.topology.generators import TopologySpec
from repro.traffic.workload import TrafficConfig
from repro.types import Uid

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.traffic.engine import TrafficEngine


@dataclass
class EpochRecord:
    """Measurement of one reconfiguration epoch."""

    epoch: int
    started_at: int = -1
    #: switch uid -> time its table was loaded
    configured: Dict[Uid, int] = field(default_factory=dict)

    def duration(self, population: int) -> Optional[int]:
        """Start-to-last-table-load, or None if not all switches finished."""
        if self.started_at < 0 or len(self.configured) < population:
            return None
        return max(self.configured.values()) - self.started_at


class Network:
    """A complete simulated Autonet installation."""

    def __init__(
        self,
        spec: TopologySpec,
        params_factory: Optional[Callable[[int], AutopilotParams]] = None,
        link_km: float = 0.1,
        seed: int = 0,
        direction_tagged_links: bool = False,
        sim: Optional[Simulator] = None,
        name: str = "",
        telemetry: bool = True,
        flight: bool = False,
        flight_capacity: int = 65536,
        profile: bool = False,
        timeseries: "bool | int | TimeSeriesConfig | None" = False,
        inband: "bool | int | InbandConfig | None" = False,
        control: bool = False,
        traffic: "bool | int | TrafficConfig | None" = False,
    ) -> None:
        self.spec = spec
        #: pass a shared simulator to co-simulate several Autonets (for
        #: Autonet-to-Autonet bridging, section 6.8.2)
        self.sim = sim if sim is not None else Simulator()
        self.name = name
        self.rng = RngRegistry(seed)
        self.params_factory = params_factory or (lambda _i: AutopilotParams())
        #: repro.obs wiring: metrics registry on the simulator plus a
        #: per-epoch reconfiguration tracer.  telemetry=False leaves the
        #: registry disabled and every obs hook unset -- the hot paths then
        #: pay only their plain integer statistics.
        self.telemetry_enabled = telemetry
        self.tracer = ReconfigTracer() if telemetry else None
        if telemetry:
            self.sim.enable_metrics()
        #: opt-in flight recorder and event-loop profiler (repro.obs).
        #: Attached before the switches are built so boot-time events are
        #: captured; both default off, leaving sim.recorder/sim.profiler
        #: None (the null fast path).
        self.flight = (
            FlightRecorder(capacity_per_component=flight_capacity) if flight else None
        )
        if flight:
            self.sim.recorder = self.flight
        self.profiler = EventLoopProfiler() if profile else None
        if profile:
            self.sim.profiler = self.profiler
        #: opt-in in-band path telemetry (repro.obs.inband).  Pass
        #: inband=True (defaults), an int (per-packet hop bound), or an
        #: InbandConfig.  Off (the default) leaves sim.inband None: the
        #: stamp sites pay one load + None test and packets carry no hop
        #: stack.  The layer windows its SLO stats against the tracer.
        self.inband_config = InbandConfig.coerce(inband)
        self.inband: Optional[InbandTelemetry] = None
        if self.inband_config is not None:
            self.inband = InbandTelemetry(
                self.sim, self.inband_config, tracer=self.tracer
            )
            self.sim.inband = self.inband
        #: opt-in control-plane cost accounting (repro.obs.control).
        #: Off (the default) leaves sim.control None: the send/retx/SRP
        #: hooks pay one load + None test and nothing is counted.
        self.control: Optional[ControlAccounting] = (
            ControlAccounting() if control else None
        )
        if self.control is not None:
            self.sim.control = self.control

        self.switches: List[Switch] = []
        self.autopilots: List[Autopilot] = []
        self.links: Dict[Tuple[int, int], Link] = {}
        self.hosts: Dict[str, HostController] = {}
        self.drivers: Dict[str, AutonetDriver] = {}
        self._host_links: Dict[Tuple[str, int], Link] = {}
        #: host name -> switch indices it attaches to (blackout accounting)
        self._host_attachments: Dict[str, List[int]] = {}
        self.merged_log = MergedLog()
        self.epochs: Dict[int, EpochRecord] = {}

        clock_rng = self.rng.stream("clock-offsets")
        prefix = f"{self.name}." if self.name else ""
        for i, uid in enumerate(spec.uids):
            switch = Switch(self.sim, name=f"{prefix}sw{i}", uid=uid)
            if direction_tagged_links:
                # the section 7 proposal: discard reflected packets in the
                # link unit via direction-tagged start commands
                for unit in switch.ports.values():
                    unit.discard_misdirected = True
            self.switches.append(switch)
            offset = clock_rng.randrange(0, 50_000_000)  # up to 50 ms skew
            autopilot = Autopilot(
                switch, params=self.params_factory(i), clock_offset=offset
            )
            autopilot.on_configured_hook = self._make_configured_hook(uid)
            self.autopilots.append(autopilot)
            self.merged_log.attach(autopilot.trace)
            self._install_code_hook(i)
            self._install_telemetry(i)

        for a, pa, b, pb in spec.cables:
            link = connect(
                self.sim,
                self.switches[a].ports[pa],
                self.switches[b].ports[pb],
                length_km=link_km,
                name=f"sw{a}.p{pa}--sw{b}.p{pb}",
            )
            self.links[(a, pa)] = link
            self.links[(b, pb)] = link

        #: opt-in longitudinal sampler (repro.obs.timeseries).  Pass
        #: timeseries=True (defaults), an int (interval in ns), or a
        #: TimeSeriesConfig.  Off (the default) leaves sim.sampler None:
        #: no sample events exist and runs are byte-identical.  Wired
        #: after the cables so connected-port collectors see them.
        self.timeseries_config = TimeSeriesConfig.coerce(timeseries)
        self.sampler: Optional[TimeSeriesSampler] = None
        if self.timeseries_config is not None:
            self.sampler = TimeSeriesSampler(self.sim, self.timeseries_config)
            self.sim.sampler = self.sampler
            self._install_timeseries()
            self.sampler.start()

        #: opt-in traffic engine (repro.traffic).  Pass traffic=True
        #: (defaults), an int (flow count), or a TrafficConfig.  Off
        #: (the default) leaves sim.traffic None: the delivery/drop
        #: stamp sites pay one load + None test and no flow state
        #: exists, so disabled runs stay byte-identical.  Wired last so
        #: the engine can register its sampler collectors and (packet
        #: mode) attach its hosts to free ports.
        self.traffic_config = TrafficConfig.coerce(traffic)
        self.traffic: "Optional[TrafficEngine]" = None
        if self.traffic_config is not None:
            from repro.traffic.engine import TrafficEngine

            self.traffic = TrafficEngine(self, self.traffic_config)
            self.sim.traffic = self.traffic

    # -- measurement hooks ----------------------------------------------------------------

    def _make_configured_hook(self, uid: Uid) -> Callable[[int, TopologyMap], None]:
        def hook(epoch: int, topology: TopologyMap) -> None:
            record = self.epochs.setdefault(epoch, EpochRecord(epoch))
            record.configured[uid] = self.sim.now
            starts = [
                ap.engine.epoch_started_at
                for ap in self.autopilots
                if ap.engine.epoch == epoch
            ]
            if starts:
                earliest = min(starts)
                if record.started_at < 0 or earliest < record.started_at:
                    record.started_at = earliest

        return hook

    # -- telemetry (repro.obs) ---------------------------------------------------------------

    def _install_telemetry(self, index: int) -> None:
        """Wire one switch (or its rebuilt Autopilot) into the obs layer."""
        if not self.telemetry_enabled:
            return
        autopilot = self.autopilots[index]
        autopilot.on_obs_event = self.tracer.switch_event
        switch = self.switches[index]
        # grant-wait latency through the scheduling engine, per switch
        switch.engine.wait_hist = self.sim.metrics.histogram(
            "scheduler_wait_ns", switch=switch.name
        )

    # -- time series (repro.obs.timeseries) -----------------------------------------------------

    def _install_timeseries(self) -> None:
        """Register the sampler's pull-only collectors.

        Every collector late-binds through ``self.autopilots[i]`` /
        ``self.switches[i]``, so a restarted switch's fresh Autopilot is
        picked up automatically -- no re-registration on restart.
        """
        from repro.core.portstate import PortState

        sampler = self.sampler
        assert sampler is not None

        def autopilot_value(index: int, fn) -> Callable[[], Optional[float]]:
            def collect() -> Optional[float]:
                ap = self.autopilots[index]
                return fn(ap) if ap.alive else None

            return collect

        def ports_in_state(index: int, state: PortState) -> Callable[[], Optional[float]]:
            def collect() -> Optional[float]:
                ap = self.autopilots[index]
                if not ap.alive:
                    return None
                switch = self.switches[index]
                return float(sum(
                    1
                    for p, monitor in ap.monitoring.ports.items()
                    if switch.ports[p].connected and monitor.state is state
                ))

            return collect

        for i, switch in enumerate(self.switches):
            name = switch.name
            sampler.add_collector(
                "epoch",
                autopilot_value(i, lambda ap: float(ap.engine.epoch)),
                switch=name,
            )
            sampler.add_collector(
                "blackout_in_progress",
                autopilot_value(i, lambda ap: 1.0 if ap.engine.in_blackout else 0.0),
                switch=name,
            )
            sampler.add_collector(
                "packets_forwarded",
                lambda i=i: float(self.switches[i].packets_forwarded),
                kind="counter",
                switch=name,
            )
            for state in PortState:
                sampler.add_collector(
                    "ports_in_state",
                    ports_in_state(i, state),
                    switch=name,
                    state=state.value,
                )
            for p, unit in sorted(switch.ports.items()):
                if not unit.connected:
                    continue
                sampler.add_collector(
                    "fifo_occupancy_bytes",
                    lambda i=i, p=p: self.switches[i].ports[p].fifo.peek_level(),
                    switch=name,
                    port=p,
                )
                sampler.add_collector(
                    "fifo_highwater_bytes",
                    lambda i=i, p=p: self.switches[i].ports[p].fifo.max_level,
                    kind="highwater",
                    switch=name,
                    port=p,
                )
        if self.tracer is not None:
            self.tracer.add_listener(
                lambda t_ns, component, event, _attrs: sampler.mark(
                    t_ns, component, event
                )
            )

    def timeseries_doc(self) -> Dict:
        """The ``repro.obs.timeseries/1`` artifact of everything the
        sampler recorded so far."""
        if self.sampler is None:
            raise RuntimeError(
                "time-series sampler is off; build Network(timeseries=...)"
            )
        return self.sampler.document(name=self.name or self.spec.name)

    def export_timeseries(self, path: str) -> Dict:
        """Validate and write the timeseries artifact; returns the doc."""
        from repro.obs.timeseries import write_timeseries

        doc = self.timeseries_doc()
        write_timeseries(path, doc)
        return doc

    def inband_doc(self) -> Dict:
        """The ``repro.obs.inband/1`` artifact of everything the in-band
        layer recorded so far."""
        if self.inband is None:
            raise RuntimeError(
                "in-band telemetry is off; build Network(inband=...)"
            )
        return self.inband.document(name=self.name or self.spec.name)

    def export_inband(self, path: str) -> Dict:
        """Validate and write the inband artifact; returns the doc."""
        from repro.obs.inband import write_inband

        doc = self.inband_doc()
        write_inband(path, doc)
        return doc

    def traffic_doc(self, name: str = "") -> Dict:
        """The ``repro.traffic/1`` artifact of the workload's SLO
        accounting so far."""
        if self.traffic is None:
            raise RuntimeError(
                "traffic engine is off; build Network(traffic=...)"
            )
        return self.traffic.document(name=name or self.name or self.spec.name)

    def export_traffic(self, path: str, name: str = "") -> Dict:
        """Validate and write the traffic artifact; returns the doc."""
        from repro.traffic.artifact import write_traffic

        doc = self.traffic_doc(name=name)
        write_traffic(path, doc)
        return doc

    def telemetry(self) -> Dict:
        """One structured snapshot of everything the installation knows
        about itself: registry series, per-switch/per-port counters, and
        per-epoch reconfiguration spans with blackout intervals."""
        now = self.sim.now
        switches = {}
        for i, switch in enumerate(self.switches):
            ap = self.autopilots[i]
            ports = {}
            for p, unit in switch.ports.items():
                if not unit.connected:
                    continue
                dropped = {
                    cause: per_port[p]
                    for cause, per_port in switch.port_dropped.items()
                    if per_port.get(p)
                }
                if unit.overflow_drops:
                    dropped["overflow"] = unit.overflow_drops
                if unit.misdirected_discards:
                    dropped["misdirected"] = unit.misdirected_discards
                ports[p] = {
                    "forwarded": switch.port_forwarded.get(p, 0),
                    "drained": switch.port_drained.get(p, 0),
                    "dropped": dropped,
                    "fifo_highwater_bytes": unit.fifo.max_level,
                    "cut_through": unit.fifo.cut_through_packets,
                    "buffered": unit.fifo.buffered_packets,
                    "stop_ns": unit.cumulative_stop_ns(now),
                }
            skeptics = {}
            for p, monitor in ap.monitoring.ports.items():
                if (
                    monitor.status_skeptic.failures
                    or monitor.conn_skeptic.required
                    > monitor.conn_skeptic.base_required
                ):
                    skeptics[p] = {
                        "failures": monitor.status_skeptic.failures,
                        "hold_ns": monitor.status_skeptic.hold_ns,
                        "probes_required": monitor.conn_skeptic.required,
                    }
            switches[switch.name] = {
                "packets_forwarded": switch.packets_forwarded,
                "packets_discarded": switch.packets_discarded,
                "packets_to_cp": switch.packets_to_cp,
                "resets": switch.resets,
                "cp_packets_handled": ap.packets_handled,
                "cp_crc_errors": ap.crc_errors,
                "reconfig_msgs_gated": ap.reconfig_msgs_gated,
                "epochs_initiated": ap.engine.epochs_initiated,
                "epochs_joined": ap.engine.epochs_joined,
                "terminations": ap.engine.terminations,
                "configured": ap.configured and ap.engine.table_loaded,
                "ports": ports,
                "skeptic_holds": skeptics,
            }
        out = {
            "time_ns": now,
            "enabled": self.telemetry_enabled,
            "metrics": self.sim.metrics.snapshot(),
            "switches": switches,
        }
        if self.tracer is not None:
            out["reconfigurations"] = self.tracer.span_summary()
            out["unclosed_spans"] = len(self.tracer.unclosed())
            out["host_blackouts"] = {
                epoch: self.host_blackouts(epoch)
                for epoch in self.tracer.epochs()
            }
        if self.control is not None:
            out["control"] = self.control.summary()
        return out

    def host_blackouts(self, epoch: int) -> Dict[str, Optional[int]]:
        """Per-host blackout for one epoch: the interval during which
        *every* switch the host attaches to was closed (dual-homed hosts
        lose service only while both attachment switches are down)."""
        if self.tracer is None:
            return {}
        prefix = f"{self.name}." if self.name else ""
        by_switch = self.tracer.blackouts(epoch)
        out: Dict[str, Optional[int]] = {}
        for host, attachments in self._host_attachments.items():
            windows = []
            for index in attachments:
                entry = by_switch.get(f"{prefix}sw{index}")
                if entry is None:
                    windows.append(None)  # this switch never went dark
                else:
                    windows.append((entry["closed_ns"], entry["reopened_ns"]))
            if any(w is None for w in windows):
                out[host] = 0  # one attachment stayed up throughout
                continue
            if any(w[1] is None for w in windows):
                out[host] = None  # still dark: blackout not over yet
                continue
            start = max(w[0] for w in windows)
            end = min(w[1] for w in windows)
            out[host] = max(0, end - start)
        return out

    # -- hosts -----------------------------------------------------------------------------

    def add_host(
        self,
        name: str,
        attachments: Sequence[Tuple[int, int]],
        link_km: float = 0.1,
        with_driver: bool = True,
    ) -> HostController:
        """Attach a host to one or two (switch index, port) points."""
        if not 1 <= len(attachments) <= 2:
            raise ValueError("a host has one or two network ports")
        import zlib

        # unique even when several Networks share a simulator
        uid = Uid(
            0x800000000000
            + (zlib.crc32(f"{self.name}/{name}".encode()) << 8)
            + len(self.hosts)
        )
        controller = HostController(self.sim, name=name, uid=uid)
        for port_index, (sw, port) in enumerate(attachments):
            link = connect(
                self.sim,
                controller.ports[port_index],
                self.switches[sw].ports[port],
                length_km=link_km,
                name=f"{name}.{port_index}--sw{sw}.p{port}",
            )
            self._host_links[(name, port_index)] = link
            if self.sampler is not None:
                # the switch-side port just became connected; sample its
                # FIFO like every port cabled at build time
                self.sampler.add_collector(
                    "fifo_occupancy_bytes",
                    lambda i=sw, p=port: self.switches[i].ports[p].fifo.peek_level(),
                    switch=self.switches[sw].name,
                    port=port,
                )
                self.sampler.add_collector(
                    "fifo_highwater_bytes",
                    lambda i=sw, p=port: self.switches[i].ports[p].fifo.max_level,
                    kind="highwater",
                    switch=self.switches[sw].name,
                    port=port,
                )
        self._host_attachments[name] = [sw for sw, _port in attachments]
        self.hosts[name] = controller
        if with_driver:
            self.drivers[name] = AutonetDriver(controller)
        return controller

    # -- execution ---------------------------------------------------------------------------

    def run_for(self, duration_ns: int) -> None:
        self.sim.run_for(duration_ns)

    def run_until(self, time_ns: int) -> None:
        self.sim.run(until=time_ns)

    def alive_autopilots(self) -> List[Autopilot]:
        return [ap for ap in self.autopilots if ap.alive]

    def converged(self) -> bool:
        """Every live switch configured, and mutual agreement within each
        partition: the switches named in a topology are exactly the live
        switches holding that same topology (section 6.6 configures
        physically separated partitions as disconnected networks)."""
        live = self.alive_autopilots()
        if not live:
            return False
        if not all(ap.configured and ap.engine.table_loaded for ap in live):
            return False
        views: Dict[Uid, frozenset] = {}
        for ap in live:
            if ap.engine.topology is None:
                return False
            views[ap.uid] = frozenset(ap.engine.topology.switches)
        live_uids = set(views)
        for uid, members in views.items():
            if not members <= live_uids:
                return False
            if any(views[other] != members for other in members):
                return False
        return True

    def run_until_converged(
        self,
        timeout_ns: int = 30 * SEC,
        settle_ns: int = 500_000_000,
        step_ns: int = 50_000_000,
    ) -> bool:
        """Run until convergence has held for ``settle_ns``, or timeout."""
        deadline = self.sim.now + timeout_ns
        stable_since: Optional[int] = None
        while self.sim.now < deadline:
            self.sim.run_for(step_ns)
            if self.converged():
                if stable_since is None:
                    stable_since = self.sim.now
                elif self.sim.now - stable_since >= settle_ns:
                    return True
            else:
                stable_since = None
        return False

    # -- state queries ------------------------------------------------------------------------

    def operational_components(self, include_noisy: bool = True) -> List[frozenset]:
        """The physically reachable components of the installation *now*:
        connected components over live switches and non-cut cables,
        returned as frozensets of switch indices (sorted by smallest
        member).

        This is the oracle the reconfiguration protocol must converge to
        (section 6.6 configures each physical partition as its own
        network), so chaos campaigns compare every switch's configured
        view against the component containing it.
        """
        alive = [i for i, ap in enumerate(self.autopilots) if ap.alive]
        alive_set = set(alive)
        adjacency: Dict[int, set] = {i: set() for i in alive}
        endpoints: Dict[int, List[int]] = {}
        for (sw, _port), link in self.links.items():
            endpoints.setdefault(id(link), []).append(sw)
        for (sw, _port), link in self.links.items():
            if link.state is LinkState.CUT:
                continue
            if link.state is LinkState.NOISY and not include_noisy:
                continue
            if link.state is not LinkState.UP and link.state is not LinkState.NOISY:
                continue  # reflecting cables carry nothing useful
            ends = endpoints[id(link)]
            if len(ends) == 2 and ends[0] != ends[1]:
                a, b = ends
                if a in alive_set and b in alive_set:
                    adjacency[a].add(b)
                    adjacency[b].add(a)
        components = []
        unvisited = set(alive_set)
        while unvisited:
            start = min(unvisited)
            component = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbor in adjacency[node]:
                    if neighbor not in component:
                        component.add(neighbor)
                        frontier.append(neighbor)
            unvisited -= component
            components.append(frozenset(component))
        return sorted(components, key=min)

    def current_epoch(self) -> int:
        return max(ap.epoch for ap in self.alive_autopilots())

    def topology(self) -> Optional[TopologyMap]:
        for ap in self.alive_autopilots():
            if ap.configured and ap.engine.topology is not None:
                return ap.engine.topology
        return None

    def epoch_duration(self, epoch: Optional[int] = None) -> Optional[int]:
        """Reconfiguration time of the given (default: current) epoch."""
        if epoch is None:
            epoch = self.current_epoch()
        record = self.epochs.get(epoch)
        if record is None:
            return None
        return record.duration(len(self.alive_autopilots()))

    def short_address_of(self, switch_index: int, port: int = 0) -> Optional[int]:
        from repro.types import make_short_address

        ap = self.autopilots[switch_index]
        if not ap.configured:
            return None
        return make_short_address(ap.engine.my_number, port)

    # -- fault injection -------------------------------------------------------------------------
    #
    # Every injector funnels through _notify_fault, so observers (the
    # repro.obs metrics registry, the chaos campaign's counters) see one
    # uniform feed of (kind, detail) regardless of which API was called.
    # ``apply_fault`` is the string-keyed entry point the declarative
    # chaos schedules use.

    #: uniform fault vocabulary understood by :meth:`apply_fault`
    FAULT_KINDS = (
        "cut-link",
        "restore-link",
        "noisy-link",
        "flap-link",
        "crash-switch",
        "restart-switch",
        "power-off-host",
    )

    #: observer hook: fn(kind, detail_dict); set by the chaos injector
    on_fault: Optional[Callable[[str, Dict], None]] = None

    def _notify_fault(self, kind: str, **detail) -> None:
        if self.telemetry_enabled:
            self.sim.metrics.counter("faults_injected", kind=kind).inc()
        tr = self.sim.traffic
        if tr is not None:
            tr.note_fault(kind)
        if self.on_fault is not None:
            self.on_fault(kind, detail)

    def apply_fault(self, kind: str, **params) -> None:
        """Apply one fault by kind name (see :data:`FAULT_KINDS`).

        Tolerant by design: faults address the *installation*, so a
        restart of an already-running switch or a restore of an intact
        link is a no-op, letting replayed or shrunk schedules stay valid
        even when earlier (removed) events no longer produce the state a
        later event assumed.
        """
        if kind == "cut-link":
            self.cut_link(params["a"], params["b"])
        elif kind == "restore-link":
            self.restore_link(params["a"], params["b"])
        elif kind == "noisy-link":
            self.make_link_noisy(params["a"], params["b"])
        elif kind == "flap-link":
            self.flap_link(
                params["a"], params["b"],
                flaps=params.get("flaps", 3),
                period_ns=params.get("period_ns", 100_000_000),
            )
        elif kind == "crash-switch":
            self.crash_switch(params["index"])
        elif kind == "restart-switch":
            self.restart_switch(params["index"])
        elif kind == "power-off-host":
            self.power_off_host(params["name"], reflect=params.get("reflect", True))
        else:
            raise ValueError(f"unknown fault kind {kind!r}")

    def link_between(self, a: int, b: int) -> Link:
        """The first cabled link between switch indices ``a`` and ``b``."""
        for (sw, port), link in self.links.items():
            if sw != a:
                continue
            unit_a = self.switches[a].ports[port]
            other = link.other(unit_a)
            if getattr(other, "port_no", None) is not None and other is not unit_a:
                for pb, unit_b in self.switches[b].ports.items():
                    if other is unit_b:
                        return link
        raise ValueError(f"no link between sw{a} and sw{b}")

    def cut_link(self, a: int, b: int) -> Link:
        link = self.link_between(a, b)
        link.set_state(LinkState.CUT)
        self._notify_fault("cut-link", a=a, b=b)
        return link

    def restore_link(self, a: int, b: int) -> Link:
        link = self.link_between(a, b)
        link.set_state(LinkState.UP)
        self._notify_fault("restore-link", a=a, b=b)
        return link

    def make_link_noisy(self, a: int, b: int) -> Link:
        link = self.link_between(a, b)
        link.set_state(LinkState.NOISY)
        self._notify_fault("noisy-link", a=a, b=b)
        return link

    def flap_link(self, a: int, b: int, flaps: int = 3,
                  period_ns: int = 100_000_000) -> Link:
        """An intermittent cable: ``flaps`` cut/restore cycles, each half
        lasting ``period_ns``.  Rapid trains are what provoke the status
        skeptic into progressively longer hold-downs (section 6.5.5) --
        the stabilizing behavior the chaos campaigns exercise.
        """
        link = self.link_between(a, b)
        self._notify_fault("flap-link", a=a, b=b, flaps=flaps, period_ns=period_ns)
        for i in range(flaps):
            self.sim.after(2 * i * period_ns, link.set_state, LinkState.CUT)
            self.sim.after((2 * i + 1) * period_ns, link.set_state, LinkState.UP)
        return link

    def crash_switch(self, index: int) -> None:
        if not self.autopilots[index].alive:
            return  # already down
        self.autopilots[index].halt()
        self.switches[index].power_off()
        self._notify_fault("crash-switch", index=index)

    def restart_switch(self, index: int) -> None:
        """Power a crashed switch back on with a fresh Autopilot."""
        if self.autopilots[index].alive:
            return  # never double-boot a running switch
        self._notify_fault("restart-switch", index=index)
        switch = self.switches[index]
        switch.power_on()
        offset = self.rng.stream("clock-offsets").randrange(0, 50_000_000)
        autopilot = Autopilot(
            switch, params=self.params_factory(index), clock_offset=offset
        )
        autopilot.on_configured_hook = self._make_configured_hook(switch.uid)
        self.autopilots[index] = autopilot
        self.merged_log.attach(autopilot.trace)
        self._install_code_hook(index)
        self._install_telemetry(index)

    # -- Autopilot releases (section 5.4 / the section 7 anecdote) -----------------------

    def release_autopilot_version(
        self,
        version: int,
        at_switch: int = 0,
        propagate_delay_ns: int = 5 * SEC,
    ) -> None:
        """Download a new Autopilot release into one switch, as from the
        programming workstation; it propagates itself from there.

        ``propagate_delay_ns`` is the pacing between a switch booting the
        new version and offering it to its neighbors -- the knob the
        paper turned after releases caused "30 or more reconfigurations
        in quick succession" (section 7).
        """
        self._propagate_delay_ns = propagate_delay_ns
        self._reboot_into(at_switch, version)

    _propagate_delay_ns: int = 5 * SEC

    def _install_code_hook(self, index: int) -> None:
        self.autopilots[index].on_code_download = (
            lambda version, i=index: self._reboot_into(i, version)
        )

    #: time a switch is down while booting a new image (ROM load etc.)
    _boot_delay_ns: int = 300_000_000

    def _reboot_into(self, index: int, version: int) -> None:
        """Accept the image, reboot the switch on it, then propagate."""
        from repro.core.messages import CodeDownloadMsg

        old = self.autopilots[index]
        if not old.alive or old.software_version >= version:
            return
        old.halt()
        switch = self.switches[index]
        switch.power_off()

        def boot() -> None:
            switch.power_on()
            offset = self.rng.stream("clock-offsets").randrange(0, 50_000_000)
            autopilot = Autopilot(
                switch,
                params=self.params_factory(index),
                clock_offset=offset,
                software_version=version,
            )
            autopilot.on_configured_hook = self._make_configured_hook(switch.uid)
            self.autopilots[index] = autopilot
            self.merged_log.attach(autopilot.trace)
            self._install_code_hook(index)
            self._install_telemetry(index)

            def offer(port: int) -> None:
                if not autopilot.alive:
                    return
                autopilot.send_one_hop(
                    port,
                    CodeDownloadMsg(
                        epoch=autopilot.epoch,
                        sender_uid=autopilot.uid,
                        version=version,
                    ),
                )

            # offer the image to neighbors one at a time: the pacing knob
            # of section 7 ("making compatible versions propagate more
            # slowly") bounds how much of the fabric reboots at once
            delay = self._propagate_delay_ns
            nth = 0
            for port, unit in sorted(switch.ports.items()):
                if not unit.connected:
                    continue
                far = unit.link.other(unit)
                if getattr(far, "port_no", None) is None:
                    continue  # host link: hosts don't run Autopilot
                nth += 1
                self.sim.after(delay * nth, offer, port)

        self.sim.after(self._boot_delay_ns, boot)

    def rollout_complete(self, version: int) -> bool:
        return all(
            ap.software_version >= version for ap in self.alive_autopilots()
        )

    def power_off_host(self, name: str, reflect: bool = True) -> None:
        """Host powered down; coax links reflect at the dead controller
        (the section 7 broadcast-storm precondition)."""
        controller = self.hosts[name]
        if not controller.powered:
            return
        self._notify_fault("power-off-host", name=name, reflect=reflect)
        controller.power_off()
        for port_index in (0, 1):
            link = self._host_links.get((name, port_index))
            if link is None:
                continue
            if reflect:
                endpoint = controller.ports[port_index]
                state = (
                    LinkState.REFLECTING_B
                    if link.b is not endpoint
                    else LinkState.REFLECTING_A
                )
                link.set_state(state)
            else:
                link.set_state(LinkState.CUT)

    # -- flight trace export ----------------------------------------------------------------------

    def flight_trace(self) -> Dict:
        """The ``repro.obs.flight/1`` / Chrome trace_event document of
        everything the flight recorder captured, with the §6.7 merged
        circular log bridged in as its own track."""
        if self.flight is None:
            raise RuntimeError("flight recorder is off; build Network(flight=True)")
        from repro.obs.perfetto import trace_event_document

        return trace_event_document(
            self.flight,
            merged_log=self.merged_log,
            name=self.name or self.spec.name,
        )

    def export_flight_trace(self, path: str) -> Dict:
        """Validate and write the flight trace; returns the document."""
        from repro.obs.perfetto import write_trace

        doc = self.flight_trace()
        write_trace(path, doc)
        return doc

    # -- debugging --------------------------------------------------------------------------------

    def describe(self) -> str:
        lines = [f"Network({self.spec.name}): {len(self.switches)} switches"]
        for i, ap in enumerate(self.autopilots):
            topo = ap.engine.topology
            lines.append(
                f"  sw{i} uid={ap.uid} epoch={ap.epoch} "
                f"configured={ap.configured} number={ap.engine.my_number} "
                f"pos=({ap.engine.position.root}, L{ap.engine.position.level}) "
                f"sees={len(topo.switches) if topo else 0}"
            )
        return "\n".join(lines)
