"""The seeded chaos campaign runner.

A campaign samples ``n`` random fault schedules from one master seed,
runs each against a fresh simulated installation of the configured
topology, and sweeps the :mod:`repro.chaos.checks` invariants at every
quiescent point: mid-run whenever the installation re-converges between
faults, and in full (including the physical-reachability oracle) once
the schedule's horizon has passed and the network has settled.

Seeding discipline: the campaign owns one :class:`~repro.sim.rng.
RngRegistry`; each schedule's sampler draws from a ``fork`` of it and
each Network gets a ``child_seed`` of it, so schedule ``i`` of campaign
seed ``s`` is always the same run -- independent of how many schedules
came before it failed or of anything the checks did.

The summary exports through the standard ``repro.bench/1`` schema (no
wall-clock anywhere in the document, so CI can diff two runs
byte-for-byte).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.chaos.checks import CheckReport, check_partition_routing, quiescent_checks
from repro.chaos.schedule import SEC, Injector, SampleParams, Schedule, ScheduleSampler
from repro.network import Network
from repro.obs.export import bench_document, bench_result
from repro.sim.rng import RngRegistry
from repro.topology.generators import resolve_topology

MS = 1_000_000


@dataclass
class CampaignConfig:
    """Everything that determines a campaign, and nothing else."""

    topology: str = "torus-3x4"
    schedules: int = 50
    seed: int = 0
    sample: SampleParams = field(default_factory=SampleParams)
    #: hosts attached to free ports before the campaign starts
    hosts: int = 2
    #: extra settling time after the schedule horizon before final checks
    drain_ns: int = 500 * MS
    #: base + per-switch convergence deadline (liveness): None computes
    #: ``20s + 1s * n_switches``, covering worst-case skeptic hold-downs
    converge_timeout_ns: Optional[int] = None
    #: poll step while waiting for quiescence
    step_ns: int = 50 * MS
    #: quiescence must hold this long before it counts (section 6.2's
    #: skeptic philosophy, applied to the test harness itself)
    settle_ns: int = 500 * MS
    #: workload driven through every schedule (None/False = no traffic;
    #: True, an int, a dict, or a TrafficConfig as Network(traffic=...))
    traffic: object = None

    def deadline_ns(self, n_switches: int) -> int:
        if self.converge_timeout_ns is not None:
            return self.converge_timeout_ns
        return 20 * SEC + n_switches * SEC


@dataclass
class ScheduleResult:
    """What one schedule did to one installation."""

    name: str
    schedule: Schedule
    converged: bool = False
    sim_ns: int = 0
    epochs: int = 0
    injected: Dict[str, int] = field(default_factory=dict)
    checks_run: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.converged and not self.violations

    @property
    def faults(self) -> int:
        return sum(self.injected.values())


class CampaignRunner:
    """Samples, runs, and checks fault schedules; accumulates a report.

    ``extra_checks`` lets tests (and the deliberately-broken-invariant
    sanity check) append their own quiescent-point predicate: a callable
    from Network to :class:`CheckReport`, swept alongside the built-in
    ones at the final quiescent point.
    """

    def __init__(
        self,
        config: CampaignConfig,
        extra_checks: Optional[Callable[[Network], CheckReport]] = None,
    ) -> None:
        self.config = config
        self.extra_checks = extra_checks
        self.spec = resolve_topology(config.topology)
        self.registry = RngRegistry(config.seed)
        self.results: List[ScheduleResult] = []

    # -- building one installation ---------------------------------------------------

    def _host_plan(self) -> List[tuple]:
        """Deterministic host attachment points on free ports."""
        plan = []
        spec = self.spec
        for h in range(self.config.hosts):
            sw = (h * 2) % spec.n_switches
            free = spec.free_ports(sw)
            if not free:
                continue
            plan.append((f"h{h}", [(sw, free[h % len(free)])]))
        return plan

    def build_network(
        self,
        schedule: Schedule,
        flight: bool = False,
        timeseries: bool = False,
        inband: bool = False,
        traffic: object = False,
    ) -> Network:
        network = Network(
            self.spec,
            seed=schedule.seed,
            telemetry=True,
            flight=flight,
            timeseries=timeseries,
            inband=inband,
            traffic=traffic,
        )
        for name, attachments in self._host_plan():
            network.add_host(name, attachments)
        return network

    # -- running one schedule --------------------------------------------------------

    def run_schedule(
        self,
        schedule: Schedule,
        name: str = "",
        trace_path: Optional[str] = None,
        timeseries_path: Optional[str] = None,
        inband_path: Optional[str] = None,
        traffic: object = None,
        traffic_path: Optional[str] = None,
    ) -> ScheduleResult:
        """Run one schedule; ``trace_path`` turns on the flight recorder
        for this run and writes the Perfetto trace there afterwards,
        ``timeseries_path`` does the same for the longitudinal sampler,
        and ``inband_path`` for the in-band path telemetry layer (all
        are observational, so the run itself is unchanged).

        ``traffic`` (default: the config's ``traffic`` field) drives a
        workload through the schedule's faults; the fluid model is
        observational, so the reconfiguration trajectory is unchanged
        while the SLO invariants (no flow left permanently unrouted at
        quiescence) join the quiescent checks.  ``traffic_path`` writes
        the ``repro.traffic/1`` SLO artifact afterwards (implies the
        default workload when ``traffic`` is off)."""
        if traffic is None:
            traffic = self.config.traffic
        if traffic is None or traffic is False:
            traffic = traffic_path is not None
        result = ScheduleResult(name=name or schedule.name, schedule=schedule)
        network = self.build_network(
            schedule,
            flight=trace_path is not None,
            timeseries=timeseries_path is not None,
            inband=inband_path is not None,
            traffic=traffic,
        )
        try:
            return self._run_schedule(network, schedule, result)
        finally:
            if trace_path is not None:
                network.export_flight_trace(trace_path)
            if timeseries_path is not None:
                network.export_timeseries(timeseries_path)
            if inband_path is not None:
                network.export_inband(inband_path)
            if traffic_path is not None and network.traffic is not None:
                network.export_traffic(traffic_path, name=result.name)

    def _run_schedule(
        self, network: Network, schedule: Schedule, result: ScheduleResult
    ) -> ScheduleResult:
        deadline = self.config.deadline_ns(self.spec.n_switches)

        if not network.run_until_converged(
            timeout_ns=deadline,
            settle_ns=self.config.settle_ns,
            step_ns=self.config.step_ns,
        ):
            result.violations.append("initial convergence never reached")
            result.sim_ns = network.sim.now
            return result

        if network.traffic is not None and not network.traffic.launched:
            network.traffic.launch()

        injector = Injector(network, schedule)
        base = network.sim.now
        injector.arm(base)

        # run out the schedule, sweeping routing invariants whenever the
        # installation re-converges between faults (a quiescent point)
        horizon = base + schedule.horizon_ns + self.config.drain_ns
        was_converged = True
        while network.sim.now < horizon:
            network.sim.run_for(self.config.step_ns)
            now_converged = network.converged()
            if now_converged and not was_converged:
                report = check_partition_routing(network)
                result.checks_run = _merge_counts(result.checks_run, report.checks_run)
                result.violations.extend(
                    f"mid-run@{network.sim.now - base}ns: {v}" for v in report.violations
                )
            was_converged = now_converged

        # final quiescence: liveness within the distance-scaled deadline
        result.converged = network.run_until_converged(
            timeout_ns=deadline,
            settle_ns=self.config.settle_ns,
            step_ns=self.config.step_ns,
        )
        if not result.converged:
            result.violations.append(f"no convergence within {deadline / 1e9:.0f}s of schedule end")
        else:
            report = quiescent_checks(network)
            if self.extra_checks is not None:
                report.merge(self.extra_checks(network))
            if network.traffic is not None:
                # SLO invariant: quiescence means no flow between live,
                # mutually-reachable endpoints is left permanently
                # unrouted (goodput recovers after every reconfiguration)
                report.ran("traffic_slo")
                for violation in network.traffic.slo_violations():
                    report.fail(f"traffic SLO: {violation}")
            result.checks_run = _merge_counts(result.checks_run, report.checks_run)
            result.violations.extend(report.violations)

        result.sim_ns = network.sim.now
        result.injected = dict(injector.injected)
        if network.tracer is not None:
            result.epochs = len(network.tracer.epochs())
        return result

    # -- the campaign ----------------------------------------------------------------

    def sample_schedule(self, index: int) -> Schedule:
        sampler = ScheduleSampler(
            self.spec,
            self.registry.fork(f"sample/{index}").stream("events"),
            params=self.config.sample,
            host_names=tuple(name for name, _ in self._host_plan()),
        )
        schedule = sampler.sample(name=f"schedule-{index:04d}")
        schedule.seed = self.registry.child_seed(f"net/{index}")
        return schedule

    def run(
        self, progress: Optional[Callable[[ScheduleResult], None]] = None
    ) -> List[ScheduleResult]:
        self.results = []
        for index in range(self.config.schedules):
            schedule = self.sample_schedule(index)
            result = self.run_schedule(schedule)
            self.results.append(result)
            if progress is not None:
                progress(result)
        return self.results

    @property
    def failures(self) -> List[ScheduleResult]:
        return [r for r in self.results if not r.passed]

    # -- export ----------------------------------------------------------------------

    def document(self) -> Dict:
        """The campaign summary as a ``repro.bench/1`` document.

        Deterministic by construction: simulated time only, iteration
        over sorted keys, no environment leakage.
        """
        config = self.config
        faults: Dict[str, int] = {}
        checks: Dict[str, int] = {}
        for r in self.results:
            faults = _merge_counts(faults, r.injected)
            checks = _merge_counts(checks, r.checks_run)
        failed = self.failures
        row = [
            config.topology,
            len(self.results),
            len(self.results) - len(failed),
            len(failed),
            sum(faults.values()),
            sum(checks.values()),
            sum(len(r.violations) for r in self.results),
        ]
        campaign = bench_result(
            name="campaign",
            title=f"Chaos campaign on {config.topology}",
            headers=[
                "topology",
                "schedules",
                "passed",
                "failed",
                "faults_injected",
                "checks_run",
                "violations",
            ],
            rows=[row],
            telemetry={
                "faults_by_kind": {k: faults[k] for k in sorted(faults)},
                "checks_by_kind": {k: checks[k] for k in sorted(checks)},
                "sim_ns_total": sum(r.sim_ns for r in self.results),
                "epochs_total": sum(r.epochs for r in self.results),
            },
        )
        failures = bench_result(
            name="failures",
            title="Failing schedules",
            headers=["schedule", "seed", "events", "faults", "violations"],
            rows=[_failure_row(r) for r in failed],
            notes="" if failed else "no failing schedules",
        )
        return bench_document(
            bench="chaos-campaign",
            title=f"{config.schedules} fault schedules on {config.topology}",
            seed=config.seed,
            results=[campaign, failures],
        )


def _failure_row(result: ScheduleResult) -> List:
    return [
        result.name,
        result.schedule.seed,
        len(result.schedule.events),
        result.faults,
        "; ".join(result.violations),
    ]


def _merge_counts(a: Dict[str, int], b: Dict[str, int]) -> Dict[str, int]:
    out = dict(a)
    for k, v in b.items():
        out[k] = out.get(k, 0) + v
    return out
