"""The declarative fault-event vocabulary of a chaos schedule.

Every event is a small dataclass with a time offset (``at_ns``, relative
to the schedule's start) and a JSON-stable serialization, mapping onto one
of the failure modes the paper's monitoring machinery recognizes
(sections 6.5, 7): cut and restored cables, intermittent links (flap
trains tuned to provoke the section 6.5.5 skeptic hold-downs), noisy
links, switch crashes and restarts, and host power-offs whose coax stubs
reflect (the section 7 broadcast-storm precondition).

:class:`OnSpanEvent` is the conditional injection: it arms at ``at_ns``
and fires its nested action when the :class:`~repro.obs.spans.
ReconfigTracer` next observes a named span event (``epoch-start``,
``termination``, ``table-loaded``), placing a second fault *inside* a
running reconfiguration -- the adversarial interleaving no hand-written
test reaches reliably.

Events apply themselves through :meth:`repro.network.Network.apply_fault`,
the uniform, idempotent fault API, so every injection is counted by the
installation's telemetry regardless of which layer initiated it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Type

MS = 1_000_000


@dataclass
class FaultEvent:
    """Base event: a timed fault against the installation."""

    at_ns: int = 0
    kind = "abstract"

    def fault_params(self) -> Dict[str, Any]:
        """Parameters for :meth:`Network.apply_fault` (kind excluded)."""
        raise NotImplementedError

    def apply(self, network) -> None:
        network.apply_fault(self.kind, **self.fault_params())

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "at_ns": self.at_ns, **self.fault_params()}

    def describe(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in sorted(self.fault_params().items()))
        return f"{self.at_ns / 1e6:.0f}ms {self.kind}({params})"


@dataclass
class CutLink(FaultEvent):
    a: int = 0
    b: int = 0
    kind = "cut-link"

    def fault_params(self) -> Dict[str, Any]:
        return {"a": self.a, "b": self.b}


@dataclass
class RestoreLink(FaultEvent):
    a: int = 0
    b: int = 0
    kind = "restore-link"

    def fault_params(self) -> Dict[str, Any]:
        return {"a": self.a, "b": self.b}


@dataclass
class NoisyLink(FaultEvent):
    a: int = 0
    b: int = 0
    kind = "noisy-link"

    def fault_params(self) -> Dict[str, Any]:
        return {"a": self.a, "b": self.b}


@dataclass
class FlapLink(FaultEvent):
    """A train of ``flaps`` cut/restore cycles at ``period_ns`` per half."""

    a: int = 0
    b: int = 0
    flaps: int = 3
    period_ns: int = 100 * MS
    kind = "flap-link"

    def fault_params(self) -> Dict[str, Any]:
        return {"a": self.a, "b": self.b, "flaps": self.flaps, "period_ns": self.period_ns}

    @property
    def duration_ns(self) -> int:
        return 2 * self.flaps * self.period_ns


@dataclass
class CrashSwitch(FaultEvent):
    index: int = 0
    kind = "crash-switch"

    def fault_params(self) -> Dict[str, Any]:
        return {"index": self.index}


@dataclass
class RestartSwitch(FaultEvent):
    index: int = 0
    kind = "restart-switch"

    def fault_params(self) -> Dict[str, Any]:
        return {"index": self.index}


@dataclass
class PowerOffHost(FaultEvent):
    name: str = ""
    reflect: bool = True
    kind = "power-off-host"

    def fault_params(self) -> Dict[str, Any]:
        return {"name": self.name, "reflect": self.reflect}


@dataclass
class OnSpanEvent(FaultEvent):
    """Conditional injection: arm at ``at_ns``, fire ``action`` with
    ``delay_ns`` after the tracer next reports a ``match`` span event."""

    match: str = "epoch-start"
    delay_ns: int = 0
    action: Optional[FaultEvent] = None
    kind = "on-span-event"

    def fault_params(self) -> Dict[str, Any]:
        return {
            "match": self.match,
            "delay_ns": self.delay_ns,
            "action": self.action.to_dict() if self.action else None,
        }

    def apply(self, network) -> None:
        # never applied directly: the Injector arms it against the tracer
        raise RuntimeError("conditional events are armed by the Injector")

    def describe(self) -> str:
        inner = self.action.describe() if self.action else "nothing"
        return (
            f"{self.at_ns / 1e6:.0f}ms on-span-event({self.match} "
            f"+{self.delay_ns / 1e6:.0f}ms -> {inner})"
        )


_EVENT_TYPES: Dict[str, Type[FaultEvent]] = {
    cls.kind: cls
    for cls in (
        CutLink,
        RestoreLink,
        NoisyLink,
        FlapLink,
        CrashSwitch,
        RestartSwitch,
        PowerOffHost,
        OnSpanEvent,
    )
}


def event_from_dict(doc: Dict[str, Any]) -> FaultEvent:
    """Rebuild an event from its :meth:`FaultEvent.to_dict` form."""
    doc = dict(doc)
    kind = doc.pop("kind")
    cls = _EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown fault event kind {kind!r}")
    if cls is OnSpanEvent and doc.get("action") is not None:
        doc["action"] = event_from_dict(doc["action"])
    return cls(**doc)
