"""Reproducer artifacts: serialized failing schedules and their replay.

When a campaign finds a failing schedule the CLI shrinks it and writes a
``repro.chaos/1`` artifact -- a self-contained JSON file holding the
minimal schedule (topology name, network seed, event list) plus the
violations it provoked.  CI uploads these artifacts; anyone can pull one
and re-run it:

.. code-block:: console

    python -m repro.chaos --replay artifact.json

Replay rebuilds the identical installation (the seed pins clock skews
and every other randomized choice) and re-executes the schedule through
the same campaign machinery, so the recorded violations reproduce
bit-identically or the artifact is stale -- both useful answers.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.chaos.schedule import SCHEDULE_SCHEMA, Schedule


def reproducer_dict(
    schedule: Schedule,
    violations: List[str],
    original_events: Optional[int] = None,
    shrink_runs: Optional[int] = None,
) -> Dict[str, Any]:
    """The artifact document for a (usually shrunk) failing schedule."""
    doc: Dict[str, Any] = {
        "schema": SCHEDULE_SCHEMA,
        "kind": "reproducer",
        "schedule": schedule.to_dict(),
        "violations": list(violations),
    }
    if original_events is not None:
        doc["shrunk_from_events"] = original_events
    if shrink_runs is not None:
        doc["shrink_runs"] = shrink_runs
    return doc


def write_artifact(path: str, doc: Dict[str, Any]) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_artifact(path: str) -> Dict[str, Any]:
    """Load and structurally validate a reproducer artifact."""
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("schema") != SCHEDULE_SCHEMA:
        raise ValueError(f"{path}: not a {SCHEDULE_SCHEMA} artifact")
    if doc.get("kind") != "reproducer":
        raise ValueError(f"{path}: kind={doc.get('kind')!r}, expected 'reproducer'")
    Schedule.from_dict(doc["schedule"])  # validates the embedded schedule
    return doc


def replay_artifact(
    path: str,
    config=None,
    trace_path: Optional[str] = None,
    inband_path: Optional[str] = None,
    traffic_path: Optional[str] = None,
):
    """Re-run an artifact's schedule; returns its ScheduleResult.

    ``config`` (a :class:`~repro.chaos.campaign.CampaignConfig`)
    overrides everything except the topology, which always comes from
    the artifact.  ``trace_path`` records a flight trace of the replay
    and writes the Perfetto document there -- the causal timeline of the
    very run the reproducer provokes.  ``inband_path`` records in-band
    path telemetry (per-flow paths, SLO damage) and writes the
    ``repro.obs.inband/1`` artifact there.  ``traffic_path`` drives the
    fluid workload through the replay and writes the ``repro.traffic/1``
    SLO artifact (blackout cost, latency quantiles) there.
    """
    from repro.chaos.campaign import CampaignConfig, CampaignRunner

    doc = load_artifact(path)
    schedule = Schedule.from_dict(doc["schedule"])
    config = config or CampaignConfig()
    config.topology = schedule.topology
    runner = CampaignRunner(config)
    return runner.run_schedule(
        schedule,
        name=schedule.name or "replay",
        trace_path=trace_path,
        inband_path=inband_path,
        traffic_path=traffic_path,
    )
