"""Fault schedules: a timed event list, its sampler, and the injector.

A :class:`Schedule` is fully declarative -- topology name, seed, event
list -- and serializes to JSON, so a failing schedule travels as a CI
artifact and replays bit-identically anywhere.

The :class:`ScheduleSampler` draws random schedules from a forked
:class:`~repro.sim.rng.RngRegistry` stream.  Sampling happens entirely
before the simulation runs and from streams independent of the Network's
own registry, so fault generation can never perturb simulation
determinism: the same campaign seed always produces the same schedules
over the same simulated histories.

The :class:`Injector` arms a schedule onto a live Network: timed events
are pre-scheduled on the simulator clock; conditional
:class:`~repro.chaos.events.OnSpanEvent` entries subscribe to the
installation's :class:`~repro.obs.spans.ReconfigTracer` feed and fire
when their span event next occurs -- landing faults inside running
reconfigurations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.events import (
    MS,
    CrashSwitch,
    CutLink,
    FaultEvent,
    FlapLink,
    NoisyLink,
    OnSpanEvent,
    PowerOffHost,
    RestartSwitch,
    RestoreLink,
    event_from_dict,
)
from repro.topology.generators import TopologySpec

SEC = 1_000_000_000

#: schema tag for serialized schedules and reproducer artifacts
SCHEDULE_SCHEMA = "repro.chaos/1"


@dataclass
class Schedule:
    """One adversarial run: a topology, a seed, and timed fault events."""

    topology: str
    seed: int
    events: List[FaultEvent] = field(default_factory=list)
    name: str = ""

    def sorted_events(self) -> List[FaultEvent]:
        return sorted(self.events, key=lambda e: (e.at_ns, e.kind))

    @property
    def horizon_ns(self) -> int:
        """When the last scheduled activity (flap trains included) ends."""
        end = 0
        for event in self.events:
            tail = event.at_ns
            if isinstance(event, FlapLink):
                tail += event.duration_ns
            if isinstance(event, OnSpanEvent):
                tail += event.delay_ns
                if isinstance(event.action, FlapLink):
                    tail += event.action.duration_ns
            end = max(end, tail)
        return end

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEDULE_SCHEMA,
            "topology": self.topology,
            "seed": self.seed,
            "name": self.name,
            "events": [e.to_dict() for e in self.sorted_events()],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Schedule":
        if doc.get("schema") != SCHEDULE_SCHEMA:
            raise ValueError(f"expected schema {SCHEDULE_SCHEMA!r}, got {doc.get('schema')!r}")
        return cls(
            topology=doc["topology"],
            seed=doc["seed"],
            name=doc.get("name", ""),
            events=[event_from_dict(e) for e in doc["events"]],
        )

    @classmethod
    def from_json(cls, text: str) -> "Schedule":
        return cls.from_dict(json.loads(text))

    def describe(self) -> str:
        lines = [f"schedule {self.name or '?'} on {self.topology} seed={self.seed}"]
        lines.extend(f"  {e.describe()}" for e in self.sorted_events())
        return "\n".join(lines)


def _default_weights() -> Dict[str, float]:
    """Relative likelihood of each event family when sampling."""
    return {
        "cut-link": 3.0,
        "restore-link": 2.0,
        "flap-link": 1.5,
        "noisy-link": 1.0,
        "crash-switch": 2.0,
        "restart-switch": 2.0,
        "power-off-host": 0.5,
        "on-span-event": 1.5,
    }


@dataclass
class SampleParams:
    """Knobs for random schedule generation."""

    #: events per schedule (inclusive bounds)
    min_events: int = 3
    max_events: int = 8
    #: window within which event times are drawn (kept tight so a
    #: 50-schedule smoke campaign stays within a couple of minutes)
    horizon_ns: int = 4 * SEC
    #: relative likelihood of each event family
    weights: Dict[str, float] = field(default_factory=_default_weights)
    #: flap trains: bounded so skeptic hold-downs stay in the seconds
    max_flaps: int = 4
    flap_period_ns: Tuple[int, int] = (40 * MS, 250 * MS)
    #: fraction of switches that may be down simultaneously
    max_dead_fraction: float = 0.5
    #: append restores at the end so the final oracle state is clean
    heal_tail: bool = True


class ScheduleSampler:
    """Draw random-but-reproducible schedules for one topology.

    The sampler tracks the *planned* installation state (which links it
    has cut, which switches it has crashed) so drawn events are sensible
    -- restores target cut links, restarts target crashed switches, and
    the network never loses more than ``max_dead_fraction`` of its
    switches.  Conditional events may not fire at run time, so every
    fault application stays idempotent at the Network layer.
    """

    SPAN_MATCHES = ("epoch-start", "termination", "table-loaded")

    def __init__(
        self,
        spec: TopologySpec,
        rng,
        params: Optional[SampleParams] = None,
        host_names: Tuple[str, ...] = (),
    ) -> None:
        self.spec = spec
        self.rng = rng
        self.params = params or SampleParams()
        self.host_names = host_names
        #: unique switch-index pairs with at least one cable
        pairs = {(min(a, b), max(a, b)) for a, _pa, b, _pb in spec.cables if a != b}
        self.pairs = sorted(pairs)

    def sample(self, name: str = "") -> Schedule:
        params = self.params
        rng = self.rng
        n_events = rng.randint(params.min_events, params.max_events)
        cut: set = set()
        noisy: set = set()
        dead: set = set()
        hosts_off: set = set()
        max_dead = max(1, int(len(self.spec.uids) * params.max_dead_fraction))
        events: List[FaultEvent] = []

        for _ in range(n_events):
            at_ns = rng.randrange(0, params.horizon_ns)
            event = self._draw_event(at_ns, cut, noisy, dead, hosts_off, max_dead)
            if event is not None:
                events.append(event)

        if params.heal_tail:
            tail = params.horizon_ns
            for pair in sorted(noisy):
                tail += 50 * MS
                events.append(RestoreLink(at_ns=tail, a=pair[0], b=pair[1]))
            # leave cut links cut and crashed switches down: partitions are
            # legal final states the invariants must handle.  Only noise is
            # healed, because a NOISY link's membership in the oracle graph
            # is probabilistic.
        return Schedule(topology=self.spec.name, seed=0, events=events, name=name)

    # -- single event draws --------------------------------------------------------

    def _draw_event(
        self, at_ns: int, cut, noisy, dead, hosts_off, max_dead: int
    ) -> Optional[FaultEvent]:
        params = self.params
        rng = self.rng
        kinds = sorted(params.weights)
        weights = [params.weights[k] for k in kinds]
        for _attempt in range(8):
            kind = rng.choices(kinds, weights=weights)[0]
            event = self._make(kind, at_ns, cut, noisy, dead, hosts_off, max_dead)
            if event is not None:
                return event
        return None

    def _make(
        self, kind: str, at_ns: int, cut, noisy, dead, hosts_off, max_dead: int
    ) -> Optional[FaultEvent]:
        rng = self.rng
        params = self.params
        if kind == "cut-link":
            candidates = [p for p in self.pairs if p not in cut]
            if not candidates:
                return None
            pair = rng.choice(candidates)
            cut.add(pair)
            return CutLink(at_ns=at_ns, a=pair[0], b=pair[1])
        if kind == "restore-link":
            if not cut:
                return None
            pair = rng.choice(sorted(cut))
            cut.discard(pair)
            return RestoreLink(at_ns=at_ns, a=pair[0], b=pair[1])
        if kind == "noisy-link":
            candidates = [p for p in self.pairs if p not in cut and p not in noisy]
            if not candidates:
                return None
            pair = rng.choice(candidates)
            noisy.add(pair)
            return NoisyLink(at_ns=at_ns, a=pair[0], b=pair[1])
        if kind == "flap-link":
            candidates = [p for p in self.pairs if p not in cut]
            if not candidates:
                return None
            pair = rng.choice(candidates)
            return FlapLink(
                at_ns=at_ns,
                a=pair[0],
                b=pair[1],
                flaps=rng.randint(2, params.max_flaps),
                period_ns=rng.randrange(*params.flap_period_ns),
            )
        if kind == "crash-switch":
            if len(dead) >= max_dead:
                return None
            candidates = [i for i in range(len(self.spec.uids)) if i not in dead]
            index = rng.choice(candidates)
            dead.add(index)
            return CrashSwitch(at_ns=at_ns, index=index)
        if kind == "restart-switch":
            if not dead:
                return None
            index = rng.choice(sorted(dead))
            dead.discard(index)
            return RestartSwitch(at_ns=at_ns, index=index)
        if kind == "power-off-host":
            candidates = [h for h in self.host_names if h not in hosts_off]
            if not candidates:
                return None
            name = rng.choice(candidates)
            hosts_off.add(name)
            return PowerOffHost(at_ns=at_ns, name=name, reflect=rng.random() < 0.7)
        if kind == "on-span-event":
            action = self._make(
                rng.choice(["cut-link", "crash-switch", "flap-link"]),
                0,
                cut,
                noisy,
                dead,
                hosts_off,
                max_dead,
            )
            if action is None:
                return None
            return OnSpanEvent(
                at_ns=at_ns,
                match=rng.choice(self.SPAN_MATCHES),
                delay_ns=rng.randrange(0, 60 * MS),
                action=action,
            )
        raise ValueError(f"unknown kind {kind!r}")


class Injector:
    """Arms a schedule onto a live Network and counts what actually fired.

    Timed events are scheduled on the simulator clock relative to
    ``base_ns``; conditional events subscribe to the tracer feed.  Every
    injection funnels through ``Network.apply_fault``, so the
    installation's own telemetry counts it too.
    """

    def __init__(self, network, schedule: Schedule) -> None:
        self.network = network
        self.schedule = schedule
        #: fault kind -> number of injections actually applied
        self.injected: Dict[str, int] = {}
        #: conditional events armed but never fired
        self.unfired: List[OnSpanEvent] = []
        self._armed: List[Tuple[OnSpanEvent, List[bool]]] = []
        self._listening = False

    def arm(self, base_ns: Optional[int] = None) -> None:
        sim = self.network.sim
        base = sim.now if base_ns is None else base_ns
        for event in self.schedule.sorted_events():
            if isinstance(event, OnSpanEvent):
                sim.at(base + event.at_ns, self._arm_conditional, event)
            else:
                sim.at(base + event.at_ns, self._fire, event)
        if self.network.on_fault is None:
            self.network.on_fault = self._count_fault

    def _count_fault(self, kind: str, _detail: Dict) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def _fire(self, event: FaultEvent) -> None:
        event.apply(self.network)

    # -- conditional events ----------------------------------------------------------

    def _arm_conditional(self, event: OnSpanEvent) -> None:
        fired = [False]
        self._armed.append((event, fired))
        self.unfired.append(event)
        if not self._listening and self.network.tracer is not None:
            self.network.tracer.add_listener(self._on_span_event)
            self._listening = True

    def _on_span_event(self, time_ns: int, component: str, name: str, attrs: Dict) -> None:
        for event, fired in self._armed:
            if fired[0] or name != event.match:
                continue
            fired[0] = True
            self.unfired.remove(event)
            self.network.sim.after(event.delay_ns, self._fire, event.action)
