"""Quiescent-point invariant checks for chaos campaigns.

After a network settles, three families of properties must hold
regardless of the fault history that got it there:

* **Oracle agreement** (section 6.6): the set of switches each live
  Autopilot has configured equals the physically reachable component
  containing it -- physical partitions become separate configured
  networks, and nothing less (a stale or self-invented configuration)
  or more (a revived epoch naming dead switches) survives.
* **Routing invariants** (section 6.6.4): within every configured
  partition, the loaded forwarding tables reach all pairs, never forward
  a descended packet back up, and induce an acyclic channel-dependency
  graph (deadlock freedom, section 3.6).
* **Span hygiene** (repro.obs): the current epoch's reconfiguration span
  is closed -- an unclosed current span is a protocol stall even when the
  tables happen to look right.

Each check returns violations as strings rather than raising, so a
campaign can tally them, decide severity, and hand failing schedules to
the shrinker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import networkx as nx

from repro.analysis.deadlock import channel_dependency_graph
from repro.analysis.invariants import all_pairs_reachable, check_no_down_to_up


@dataclass
class CheckReport:
    """Outcome of one quiescent-point sweep."""

    checks_run: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def ran(self, kind: str) -> None:
        self.checks_run[kind] = self.checks_run.get(kind, 0) + 1

    def fail(self, message: str) -> None:
        self.violations.append(message)

    def merge(self, other: "CheckReport") -> None:
        for kind, count in other.checks_run.items():
            self.checks_run[kind] = self.checks_run.get(kind, 0) + count
        self.violations.extend(other.violations)


def check_oracle_agreement(network) -> CheckReport:
    """Every live switch's configured view == its physical component."""
    report = CheckReport()
    report.ran("oracle-agreement")
    oracle = {}
    for component in network.operational_components():
        members = frozenset(network.spec.uids[i] for i in component)
        for index in component:
            oracle[network.spec.uids[index]] = members
    for i, ap in enumerate(network.autopilots):
        if not ap.alive:
            continue
        if not (ap.configured and ap.engine.table_loaded):
            report.fail(f"sw{i}: not configured at quiescence")
            continue
        if ap.engine.topology is None:
            report.fail(f"sw{i}: configured without a topology")
            continue
        view = frozenset(ap.engine.topology.switches)
        expected = oracle.get(ap.uid, frozenset([ap.uid]))
        if view != expected:
            missing = sorted(str(u) for u in expected - view)
            extra = sorted(str(u) for u in view - expected)
            report.fail(
                f"sw{i}: view of {len(view)} switches != physical component "
                f"of {len(expected)} (missing={missing}, extra={extra})"
            )
    return report


def check_partition_routing(network) -> CheckReport:
    """Section 6.6 routing invariants on every configured partition."""
    report = CheckReport()
    index_of = {uid: i for i, uid in enumerate(network.spec.uids)}
    partitions: Dict[frozenset, object] = {}
    for ap in network.alive_autopilots():
        if ap.configured and ap.engine.table_loaded and ap.engine.topology:
            partitions.setdefault(frozenset(ap.engine.topology.switches), ap.engine.topology)
    for members, topology in sorted(partitions.items(), key=lambda kv: min(kv[0])):
        label = f"partition[{min(members)}]({len(members)} switches)"
        entries = {}
        for uid in members:
            index = index_of.get(uid)
            if index is None:
                continue  # foreign uid in view: oracle check reports it
            entries[uid] = network.switches[index].table.non_constant_entries()

        report.ran("reachability")
        try:
            reachable = all_pairs_reachable(topology, entries)
            unreachable = sorted(f"{s}->{t}" for (s, t), ok in reachable.items() if not ok)
            if unreachable:
                report.fail(
                    f"{label}: {len(unreachable)} unreachable pairs, "
                    f"e.g. {unreachable[:3]}"
                )
        except RuntimeError as error:  # table walk found a loop
            report.fail(f"{label}: {error}")

        report.ran("no-down-to-up")
        try:
            check_no_down_to_up(topology, entries)
        except AssertionError as error:
            report.fail(f"{label}: up/down rule violated: {error}")

        report.ran("deadlock-freedom")
        graph = channel_dependency_graph(topology, entries)
        if not nx.is_directed_acyclic_graph(graph):
            report.fail(f"{label}: channel dependency graph has a cycle")
    return report


def check_spans(network) -> CheckReport:
    """A stalled reconfiguration must not hide behind a closed shutter.

    Superseded epochs legitimately leave open spans behind (a preempting
    epoch re-closes every switch, so the old span's shutters never all
    reopen).  Epoch numbers also collide across partitions -- the tracer
    keys spans by epoch alone, so a split network can pin one side's
    span open with the other side's abandoned shutter even though both
    sides configured fine.  The genuine stall signal is therefore an
    open span at an epoch where some *alive, unconfigured* autopilot is
    still sitting at quiescence.
    """
    report = CheckReport()
    report.ran("span-hygiene")
    tracer = network.tracer
    if tracer is None:
        return report
    stalled_epochs = {
        ap.epoch for ap in network.alive_autopilots() if not ap.engine.configured
    }
    for span in tracer.open_spans():
        if span.key in stalled_epochs:
            report.fail(f"reconfiguration span for current epoch {span.key} never closed")
    return report


def quiescent_checks(network) -> CheckReport:
    """The full sweep: oracle agreement, routing, span hygiene."""
    report = CheckReport()
    report.merge(check_oracle_agreement(network))
    report.merge(check_partition_routing(network))
    report.merge(check_spans(network))
    return report
