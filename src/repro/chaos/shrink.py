"""Schedule minimization: ddmin over a failing schedule's event list.

A campaign failure usually arrives as an 8-event schedule where only two
events matter (the cut that started a reconfiguration and the crash that
landed inside it).  :func:`shrink_schedule` applies classic
delta-debugging (Zeller's ddmin) to the event list: repeatedly re-run
subsets, keep any subset that still fails, and stop at a 1-minimal
reproducer -- removing any single remaining event makes the failure
disappear.

The oracle is a caller-supplied predicate (typically "re-run the
schedule through :meth:`~repro.chaos.campaign.CampaignRunner.
run_schedule` and check ``passed``"), so shrinking works for any failure
the campaign can detect, including flaky-by-construction ones -- a
schedule that stops failing under ddmin simply stops shrinking.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Tuple

from repro.chaos.events import FaultEvent
from repro.chaos.schedule import Schedule


def shrink_schedule(
    schedule: Schedule,
    failing: Callable[[Schedule], bool],
    max_runs: int = 200,
) -> Tuple[Schedule, int]:
    """Minimize ``schedule`` while ``failing`` stays true.

    Returns ``(minimal_schedule, runs_used)``.  The input schedule is
    assumed to fail; if it does not, it is returned unchanged after one
    probe.  ``max_runs`` bounds total re-executions -- on exhaustion the
    best reduction found so far is returned.
    """
    runs = 0

    def probe(events: List[FaultEvent]) -> bool:
        nonlocal runs
        runs += 1
        return failing(replace(schedule, events=list(events)))

    events = schedule.sorted_events()
    if not probe(events):
        return schedule, runs

    granularity = 2
    while len(events) >= 2 and runs < max_runs:
        chunk = max(1, len(events) // granularity)
        reduced = False
        start = 0
        while start < len(events) and runs < max_runs:
            complement = events[:start] + events[start + chunk :]
            if complement and probe(complement):
                events = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                # re-test from the top of the shrunk list
                start = 0
                chunk = max(1, len(events) // granularity)
                continue
            start += chunk
        if not reduced:
            if granularity >= len(events):
                break  # 1-minimal: no single event can go
            granularity = min(len(events), granularity * 2)

    minimal = replace(schedule, events=list(events))
    minimal.name = (schedule.name + "-min") if schedule.name else "minimal"
    return minimal, runs
