"""Chaos campaigns: adversarial fault schedules against the reconfiguration
protocol.

The paper's central claim is that Autonet reconfigures automatically under
*any* sequence of link and switch failures (abstract, section 4.4).  Hand
written single-fault tests cannot substantiate "any sequence"; this package
samples seeded, declarative schedules of faults -- link cuts and flap
trains, noisy cables, switch crashes and restarts, host power-offs, and
faults triggered mid-reconfiguration on tracer span events -- runs them
against simulated installations, and checks the section 6.6 routing
invariants plus liveness at every quiescent point.  Failing schedules are
shrunk to minimal reproducers and serialized for replay.

Layout:

* :mod:`repro.chaos.events`   -- the declarative fault-event vocabulary
* :mod:`repro.chaos.schedule` -- schedules, sampling, and the injector
* :mod:`repro.chaos.checks`   -- quiescent-point invariant checks
* :mod:`repro.chaos.campaign` -- the seeded campaign runner + bench export
* :mod:`repro.chaos.shrink`   -- ddmin schedule minimization
* :mod:`repro.chaos.replay`   -- reproducer artifacts and replay

CLI: ``python -m repro.chaos --schedules 50 --topology torus-3x4 --seed 0``
"""

from repro.chaos.campaign import CampaignConfig, CampaignRunner, ScheduleResult
from repro.chaos.events import (
    CrashSwitch,
    CutLink,
    FaultEvent,
    FlapLink,
    NoisyLink,
    OnSpanEvent,
    PowerOffHost,
    RestartSwitch,
    RestoreLink,
    event_from_dict,
)
from repro.chaos.replay import load_artifact, replay_artifact, write_artifact
from repro.chaos.schedule import Injector, SampleParams, Schedule, ScheduleSampler
from repro.chaos.shrink import shrink_schedule

__all__ = [
    "CampaignConfig",
    "CampaignRunner",
    "CrashSwitch",
    "CutLink",
    "FaultEvent",
    "FlapLink",
    "Injector",
    "NoisyLink",
    "OnSpanEvent",
    "PowerOffHost",
    "RestartSwitch",
    "RestoreLink",
    "SampleParams",
    "Schedule",
    "ScheduleResult",
    "ScheduleSampler",
    "event_from_dict",
    "load_artifact",
    "replay_artifact",
    "shrink_schedule",
    "write_artifact",
]
