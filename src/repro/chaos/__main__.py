"""CLI for chaos campaigns.

.. code-block:: console

    # the CI smoke gate
    python -m repro.chaos --schedules 50 --topology torus-3x4 --seed 0

    # write the bench document and shrunk reproducers for any failures
    python -m repro.chaos --schedules 1000 --topology src-lan-30 \\
        --json campaign.json --artifact-dir chaos-artifacts

    # re-run a reproducer somebody attached to a bug report, recording
    # the causal flight trace of the failure (load it in Perfetto)
    python -m repro.chaos --replay chaos-artifacts/schedule-0007.json \\
        --trace schedule-0007.trace.json

Exit status is 0 when every schedule passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis.doctor import campaign_report
from repro.chaos.campaign import CampaignConfig, CampaignRunner
from repro.chaos.replay import reproducer_dict, write_artifact
from repro.chaos.schedule import SampleParams
from repro.chaos.shrink import shrink_schedule
from repro.obs.export import write_document

#: how many failures the CLI will shrink before giving up (each shrink
#: re-runs the schedule tens of times)
MAX_SHRINKS = 5


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Run seeded fault-schedule campaigns against the "
        "reconfiguration protocol and check the paper's invariants.",
    )
    parser.add_argument(
        "--schedules", type=int, default=50, help="number of schedules to sample (default 50)"
    )
    parser.add_argument(
        "--topology", default="torus-3x4", help="topology name, e.g. torus-3x4, ring-8, src-lan-30"
    )
    parser.add_argument("--seed", type=int, default=0, help="campaign master seed (default 0)")
    parser.add_argument("--max-events", type=int, default=None, help="cap events per schedule")
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="write the repro.bench/1 campaign summary here"
    )
    parser.add_argument(
        "--artifact-dir",
        metavar="DIR",
        default=None,
        help="shrink failures and write reproducer JSON here",
    )
    parser.add_argument(
        "--replay",
        metavar="ARTIFACT",
        default=None,
        help="replay one reproducer artifact instead of sampling",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="with --replay: record a flight trace of the replay "
        "and write the Perfetto JSON here",
    )
    parser.add_argument(
        "--inband",
        metavar="PATH",
        default=None,
        help="with --replay: record in-band path telemetry and write "
        "the repro.obs.inband/1 artifact here",
    )
    parser.add_argument(
        "--traffic",
        metavar="PATH",
        default=None,
        help="with --replay: drive the fluid workload through the "
        "replay and write the repro.traffic/1 SLO artifact here",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress per-schedule progress lines")
    args = parser.parse_args(argv)

    if args.replay:
        return _replay(args)

    sample = SampleParams()
    if args.max_events is not None:
        sample.max_events = args.max_events
        sample.min_events = min(sample.min_events, args.max_events)
    config = CampaignConfig(
        topology=args.topology,
        schedules=args.schedules,
        seed=args.seed,
        sample=sample,
    )
    runner = CampaignRunner(config)

    def progress(result) -> None:
        if args.quiet:
            return
        mark = "ok " if result.passed else "FAIL"
        print(
            f"  [{mark}] {result.name}: {len(result.schedule.events)} events, "
            f"{result.faults} faults, {result.epochs} epochs, "
            f"{result.sim_ns / 1e9:.1f}s simulated",
            flush=True,
        )
        for violation in result.violations:
            print(f"         {violation}", flush=True)

    print(
        f"chaos: {config.schedules} schedules on {config.topology} "
        f"(seed {config.seed})",
        flush=True,
    )
    runner.run(progress=progress)
    doc = runner.document()

    if args.json:
        write_document(args.json, doc)
        print(f"wrote {args.json}")

    failures = runner.failures
    if failures and args.artifact_dir:
        _shrink_failures(runner, args)

    print()
    print(campaign_report(doc))
    return 1 if failures else 0


def _shrink_failures(runner: CampaignRunner, args) -> None:
    for result in runner.failures[:MAX_SHRINKS]:
        print(f"shrinking {result.name} ({len(result.schedule.events)} events)...", flush=True)
        minimal, runs = shrink_schedule(
            result.schedule,
            lambda s: not runner.run_schedule(s).passed,
        )
        # the confirmation replay doubles as the recording pass: the
        # causal flight trace, the longitudinal timeseries, the in-band
        # path telemetry, and the workload SLO accounting land next to
        # the reproducer, so the event timeline, the port-state/FIFO/
        # epoch trajectory, and the data-plane SLO damage of the minimal
        # failure all ship with it (replayable via `python -m repro.obs
        # watch --replay` and inspectable via the repro.obs.inband and
        # repro.traffic validator/query APIs)
        trace_path = os.path.join(args.artifact_dir, f"{result.name}.trace.json")
        timeseries_path = os.path.join(
            args.artifact_dir, f"{result.name}.timeseries.json"
        )
        inband_path = os.path.join(args.artifact_dir, f"{result.name}.inband.json")
        traffic_path = os.path.join(args.artifact_dir, f"{result.name}.traffic.json")
        replayed = runner.run_schedule(
            minimal,
            trace_path=trace_path,
            timeseries_path=timeseries_path,
            inband_path=inband_path,
            traffic_path=traffic_path,
        )
        path = os.path.join(args.artifact_dir, f"{result.name}.json")
        artifact = reproducer_dict(
            minimal,
            violations=replayed.violations or result.violations,
            original_events=len(result.schedule.events),
            shrink_runs=runs,
        )
        write_artifact(path, artifact)
        print(
            f"  -> {len(minimal.events)} events after {runs} runs: {path} "
            f"(trace: {trace_path}, timeseries: {timeseries_path}, "
            f"inband: {inband_path}, traffic: {traffic_path})",
            flush=True,
        )
    skipped = len(runner.failures) - MAX_SHRINKS
    if skipped > 0:
        print(f"  ({skipped} further failure(s) left unshrunk)")


def _replay(args) -> int:
    from repro.chaos.replay import load_artifact, replay_artifact

    doc = load_artifact(args.replay)
    result = replay_artifact(
        args.replay,
        trace_path=args.trace,
        inband_path=args.inband,
        traffic_path=args.traffic,
    )
    print(result.schedule.describe())
    if args.trace:
        print(f"flight trace written to {args.trace}")
    if args.inband:
        print(f"in-band telemetry written to {args.inband}")
    if args.traffic:
        print(f"traffic SLO artifact written to {args.traffic}")
    print()
    if result.passed:
        print("replay PASSED: the artifact no longer reproduces a violation")
        if doc.get("violations"):
            print("originally recorded violations:")
            for violation in doc["violations"]:
                print(f"  - {violation}")
        return 0
    print("replay reproduced violations:")
    for violation in result.violations:
        print(f"  - {violation}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
