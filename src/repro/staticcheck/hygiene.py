"""RS4xx: mutable-state hygiene rules.

Two classic Python foot-guns matter more here than usual, because the
chaos campaigns construct thousands of :class:`Network` instances per
process and expect them to be independent:

* **RS401** -- a mutable default argument (``def f(x=[])``) is evaluated
  once and shared by every call and every instance; state leaks from one
  simulated network into the next and replays diverge.  Applies to the
  whole tree -- there is no good reason for it anywhere.
* **RS402** -- module-level mutable containers in the hot-path packages
  (``repro.net``/``repro.sim``/``repro.core``) are process-global state:
  two networks in one process would share them, and a chaos campaign's
  runs would stop being independent.  Constants belong in tuples or
  ``frozenset``s; per-run state belongs on a component object.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.staticcheck.framework import Finding, ParsedModule, Pass, Rule

#: constructors that build a mutable container
MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
    "OrderedDict",
})

#: packages where module-level mutable state breaks run independence
GLOBAL_STATE_PACKAGES = ("repro.net", "repro.sim", "repro.core")


def _mutable_kind(node: ast.AST) -> Optional[str]:
    """Human name of the mutable container an expression builds, if any."""
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        name = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        if name in MUTABLE_FACTORIES:
            return name
    return None


class HygienePass(Pass):
    name = "hygiene"
    rules = (
        Rule(
            id="RS401",
            title="mutable default argument",
            invariant="call sites never share hidden state through a default",
            paper="chaos campaign run-independence (DESIGN.md)",
            hint="default to None and create the container in the body, "
                 "or use dataclasses.field(default_factory=...)",
        ),
        Rule(
            id="RS402",
            title="module-level mutable state in a hot-path package",
            invariant="two Networks in one process share nothing",
            paper="chaos campaign run-independence (DESIGN.md)",
            hint="use a tuple/frozenset for constants, or hang per-run state "
                 "off the component object",
        ),
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                yield from self._check_defaults(module, node)
        if module.in_package(*GLOBAL_STATE_PACKAGES):
            yield from self._check_module_globals(module)

    def _check_defaults(self, module: ParsedModule,
                        func: ast.AST) -> Iterator[Finding]:
        args = func.args
        defaults = list(args.defaults) + [d for d in args.kw_defaults if d is not None]
        label = getattr(func, "name", "<lambda>")
        for default in defaults:
            kind = _mutable_kind(default)
            if kind is not None:
                yield self.finding(
                    "RS401", module, default,
                    f"{label}() has a mutable default ({kind}); it is created once "
                    f"and shared by every call",
                )

    def _check_module_globals(self, module: ParsedModule) -> Iterator[Finding]:
        for stmt in module.tree.body:
            value: Optional[ast.AST] = None
            target_name: Optional[str] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                target_name = stmt.targets[0].id
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                target_name = stmt.target.id
                value = stmt.value
            if value is None or target_name is None:
                continue
            if target_name == "__all__":
                continue  # module metadata, mutated by no one
            kind = _mutable_kind(value)
            if kind is not None:
                yield self.finding(
                    "RS402", module, stmt,
                    f"module-level {kind} {target_name!r} is process-global "
                    f"mutable state",
                )
