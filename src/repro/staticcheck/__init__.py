"""``repro.staticcheck``: determinism & protocol-discipline linter.

A pure-stdlib :mod:`ast` analysis suite that proves this repo's replay
contract statically instead of waiting for the CI double-run (or a
nightly chaos campaign) to flake:

* **RS1xx determinism** -- no wall clock, no global randomness, no
  hash-ordered iteration feeding the event schedule.
* **RS2xx event-handler purity** -- no blocking I/O or prints on the hot
  path, no cross-component state writes.
* **RS3xx observability discipline** -- literal metric names, bounded
  label cardinality, the one-load + ``None``-test recorder pattern.
* **RS4xx mutable-state hygiene** -- no mutable defaults, no hot-path
  module globals.

Run it with ``python -m repro.staticcheck src``; grandfather intentional
exceptions in ``staticcheck-baseline.json`` (one justification each).
"""

from repro.staticcheck.baseline import (
    Baseline,
    BaselineError,
    Suppression,
    find_default_baseline,
)
from repro.staticcheck.framework import (
    Finding,
    ParsedModule,
    Pass,
    Rule,
    SuiteResult,
    all_rules,
    check_module,
    check_source,
    default_passes,
    run_suite,
)
from repro.staticcheck.report import (
    SCHEMA,
    SchemaError,
    build_report,
    read_report,
    render_text,
    validate_report,
    write_report,
)

__all__ = [
    "Baseline",
    "BaselineError",
    "Finding",
    "ParsedModule",
    "Pass",
    "Rule",
    "SCHEMA",
    "SchemaError",
    "SuiteResult",
    "Suppression",
    "all_rules",
    "build_report",
    "check_module",
    "check_source",
    "default_passes",
    "find_default_baseline",
    "read_report",
    "render_text",
    "run_suite",
    "validate_report",
    "write_report",
]
