"""``repro.staticcheck``: determinism & protocol-discipline linter.

A pure-stdlib :mod:`ast` analysis suite that proves this repo's replay
contract statically instead of waiting for the CI double-run (or a
nightly chaos campaign) to flake:

* **RS1xx determinism** -- no wall clock, no global randomness, no
  hash-ordered iteration feeding the event schedule.
* **RS2xx event-handler purity** -- no blocking I/O or prints on the hot
  path, no cross-component state writes.
* **RS3xx observability discipline** -- literal metric names, bounded
  label cardinality, the one-load + ``None``-test recorder pattern.
* **RS4xx mutable-state hygiene** -- no mutable defaults, no hot-path
  module globals.
* **RS5xx whole-program dataflow** -- nondeterminism tainting the event
  schedule across function and module boundaries; port-FSM conformance.
* **RS6xx parallel readiness** -- module-level mutable state reachable
  from chaos campaigns and event handlers (the sharding gate).

The RS1xx-RS4xx families are per-file passes; RS5xx/RS6xx run over a
whole-program call graph (:mod:`repro.staticcheck.dataflow`).  Results
are cached incrementally by content hash
(:mod:`repro.staticcheck.cache`), so warm runs re-analyze only what
changed.

Run it with ``python -m repro.staticcheck src``; grandfather intentional
exceptions in ``staticcheck-baseline.json`` (one justification each).
"""

from repro.staticcheck.baseline import (
    Baseline,
    BaselineError,
    Suppression,
    find_default_baseline,
)
from repro.staticcheck.cache import ResultCache
from repro.staticcheck.framework import (
    RULESET_VERSION,
    Finding,
    ParsedModule,
    Pass,
    ProjectPass,
    Rule,
    SuiteResult,
    all_rules,
    check_module,
    check_project_sources,
    check_source,
    default_passes,
    default_project_passes,
    parse_sources,
    run_suite,
    suppression_in_scope,
)
from repro.staticcheck.report import (
    SCHEMA,
    SchemaError,
    build_report,
    cache_line,
    read_report,
    render_github,
    render_text,
    validate_report,
    write_report,
)

__all__ = [
    "Baseline",
    "BaselineError",
    "Finding",
    "ParsedModule",
    "Pass",
    "ProjectPass",
    "RULESET_VERSION",
    "ResultCache",
    "Rule",
    "SCHEMA",
    "SchemaError",
    "SuiteResult",
    "Suppression",
    "all_rules",
    "build_report",
    "cache_line",
    "check_module",
    "check_project_sources",
    "check_source",
    "default_passes",
    "default_project_passes",
    "find_default_baseline",
    "parse_sources",
    "read_report",
    "render_github",
    "render_text",
    "run_suite",
    "suppression_in_scope",
    "validate_report",
    "write_report",
]
