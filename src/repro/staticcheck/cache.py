"""Incremental result cache: re-analyze only what changed.

``.staticcheck-cache/cache.json`` stores, keyed by **content hash**:

* per file -- the findings of the per-file passes (RS000 parse errors
  included), valid as long as the file's bytes are unchanged;
* per tree -- the whole-program findings and artifacts of the project
  passes, keyed by a digest over *every* file's ``(path, hash)`` pair,
  since one changed file can change any cross-file flow.

Both keys mix in :data:`~repro.staticcheck.framework.RULESET_VERSION`
(bumped whenever a rule changes behavior) and the interpreter's
major.minor (the :mod:`ast` grammar changes between versions), so a
rule edit or interpreter switch invalidates everything at once.
Baseline matching happens *after* retrieval, so editing the baseline
never needs a cold run.

A fully warm run -- nothing changed -- skips parsing entirely, which is
what makes the warm path a small fraction of the cold one.  The cache
file is rewritten on every run holding only the files just scanned, so
it cannot grow without bound.  Corrupt or version-skewed caches are
discarded silently: the cache is an accelerator, never a correctness
dependency.
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.staticcheck.framework import RULESET_VERSION, Finding

CACHE_SCHEMA = "repro.staticcheck-cache/1"
DEFAULT_CACHE_DIR = ".staticcheck-cache"


def finding_to_json(finding: Finding) -> Dict[str, Any]:
    doc = finding.to_json()
    doc.pop("justification", None)  # baseline state is per-run, not cached
    return doc


def finding_from_json(doc: Dict[str, Any]) -> Finding:
    return Finding(
        rule=doc["rule"],
        path=doc["path"],
        line=doc["line"],
        col=doc["col"],
        message=doc["message"],
        hint=doc.get("hint", ""),
    )


class ResultCache:
    """Content-hash-keyed findings store under ``.staticcheck-cache/``."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR,
                 enabled: bool = True,
                 scope: Sequence[str] = ("src",)) -> None:
        self.root = Path(root)
        self.enabled = enabled
        # one cache file per scan-root set, so `staticcheck src` and
        # `staticcheck tests benchmarks` do not evict each other
        scope_key = hashlib.sha256(
            "\x00".join(sorted(str(s) for s in scope)).encode()).hexdigest()[:12]
        self._name = f"cache-{scope_key}.json"
        self._files: Dict[str, Dict[str, Any]] = {}
        self._project: Optional[Dict[str, Any]] = None
        self._dirty = False
        if enabled:
            self._load()

    @property
    def path(self) -> Path:
        return self.root / self._name

    def _salt(self) -> str:
        return f"{RULESET_VERSION}/py{sys.version_info[0]}.{sys.version_info[1]}"

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict) or raw.get("schema") != CACHE_SCHEMA \
                or raw.get("salt") != self._salt():
            return  # version bump or corruption: start cold
        files = raw.get("files")
        if isinstance(files, dict):
            self._files = files
        project = raw.get("project")
        if isinstance(project, dict):
            self._project = project

    # -- keys -----------------------------------------------------------------------

    def digest(self, text: str) -> str:
        return hashlib.sha256(text.encode("utf-8", "replace")).hexdigest()

    def project_key(self, digests: Sequence[Tuple[str, str]]) -> str:
        hasher = hashlib.sha256(self._salt().encode())
        for relpath, digest in digests:
            hasher.update(f"{relpath}\x00{digest}\x00".encode())
        return hasher.hexdigest()

    # -- per-file results -----------------------------------------------------------

    def get_file(self, relpath: str, digest: str) -> Optional[List[Finding]]:
        entry = self._files.get(relpath)
        if not isinstance(entry, dict) or entry.get("digest") != digest:
            return None
        try:
            return [finding_from_json(doc) for doc in entry["findings"]]
        except (KeyError, TypeError):
            return None

    def put_file(self, relpath: str, digest: str,
                 findings: Sequence[Finding]) -> None:
        self._files[relpath] = {
            "digest": digest,
            "findings": [finding_to_json(f) for f in findings],
        }
        self._dirty = True

    # -- whole-program results ------------------------------------------------------

    def get_project(self, key: Optional[str],
                    ) -> Optional[Tuple[List[Finding], Dict[str, Any]]]:
        entry = self._project
        if key is None or not isinstance(entry, dict) or entry.get("key") != key:
            return None
        try:
            findings = [finding_from_json(doc) for doc in entry["findings"]]
            artifacts = dict(entry.get("artifacts") or {})
        except (KeyError, TypeError):
            return None
        return findings, artifacts

    def put_project(self, key: Optional[str], findings: Sequence[Finding],
                    artifacts: Dict[str, Any]) -> None:
        if key is None:
            return
        self._project = {
            "key": key,
            "findings": [finding_to_json(f) for f in findings],
            "artifacts": artifacts,
        }
        self._dirty = True

    # -- persistence ----------------------------------------------------------------

    def save(self, digests: Sequence[Tuple[str, str]]) -> None:
        """Write back, keeping only the files of the run just finished."""
        if not self.enabled:
            return
        current = {relpath for relpath, _ in digests}
        self._files = {rel: entry for rel, entry in self._files.items()
                       if rel in current}
        doc = {
            "schema": CACHE_SCHEMA,
            "salt": self._salt(),
            "files": dict(sorted(self._files.items())),
            "project": self._project,
        }
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            gitignore = self.root / ".gitignore"
            if not gitignore.exists():
                gitignore.write_text("*\n", encoding="utf-8")
            self.path.write_text(
                json.dumps(doc, indent=None, sort_keys=True) + "\n",
                encoding="utf-8")
        except OSError:
            pass  # read-only checkout: run cold every time
        self._dirty = False
