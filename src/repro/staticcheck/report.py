"""The ``repro.staticcheck/1`` report document.

Sibling of ``repro.bench/1`` (:mod:`repro.obs.export`) and
``repro.chaos/1`` (:mod:`repro.chaos.replay`): a JSON artifact CI
uploads on every run, deterministic byte-for-byte for a given tree --
findings are sorted, the rule table is sorted, and no timestamps or
host details are embedded.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.staticcheck.framework import Pass, Rule, SuiteResult, all_rules

SCHEMA = "repro.staticcheck/1"


class SchemaError(ValueError):
    """A document does not conform to ``repro.staticcheck/1``."""


def build_report(result: SuiteResult,
                 passes: Optional[Sequence[Pass]] = None) -> Dict[str, Any]:
    """A JSON-ready document for one suite run."""
    rules: List[Rule] = all_rules(passes)
    doc: Dict[str, Any] = {
        "schema": SCHEMA,
        "tool": "repro.staticcheck",
        "roots": list(result.roots),
        "files_scanned": result.files_scanned,
        "rules": [
            {
                "id": rule.id,
                "title": rule.title,
                "invariant": rule.invariant,
                "paper": rule.paper,
                "hint": rule.hint,
            }
            for rule in rules
        ],
        "findings": [f.to_json() for f in result.findings],
        "suppressed": [f.to_json() for f in result.suppressed],
        "stale_suppressions": list(result.stale_suppressions),
        "summary": {
            "findings": len(result.findings),
            "suppressed": len(result.suppressed),
            "stale_suppressions": len(result.stale_suppressions),
            "by_rule": result.by_rule(),
            "ok": result.ok,
        },
    }
    if result.artifacts:
        # whole-program side outputs: the RS6xx shared-state inventory,
        # the extracted port FSM -- machine-readable gates for later PRs
        doc["dataflow"] = result.artifacts
    if result.cache_stats is not None:
        doc["cache"] = dict(result.cache_stats)
    return doc


def write_report(doc: Dict[str, Any], path: Union[str, Path]) -> None:
    validate_report(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def read_report(path: Union[str, Path]) -> Dict[str, Any]:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    validate_report(doc)
    return doc


def validate_report(doc: Any) -> None:
    """Structural check; raises :class:`SchemaError` on any violation."""
    if not isinstance(doc, dict):
        raise SchemaError(f"document must be an object, got {type(doc).__name__}")
    if doc.get("schema") != SCHEMA:
        raise SchemaError(f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")
    for key in ("roots", "rules", "findings", "suppressed", "stale_suppressions"):
        if not isinstance(doc.get(key), list):
            raise SchemaError(f"{key!r} must be a list")
    if not isinstance(doc.get("files_scanned"), int):
        raise SchemaError("'files_scanned' must be an integer")
    summary = doc.get("summary")
    if not isinstance(summary, dict) or not isinstance(summary.get("ok"), bool):
        raise SchemaError("'summary' must be an object with a boolean 'ok'")
    for rule in doc["rules"]:
        if not (isinstance(rule, dict) and isinstance(rule.get("id"), str)
                and rule["id"].startswith("RS")):
            raise SchemaError(f"malformed rule entry: {rule!r}")
    known_rules = {rule["id"] for rule in doc["rules"]}
    for section in ("findings", "suppressed"):
        for finding in doc[section]:
            if not isinstance(finding, dict):
                raise SchemaError(f"{section} entries must be objects")
            for key, kind in (("rule", str), ("path", str), ("line", int),
                              ("col", int), ("message", str)):
                if not isinstance(finding.get(key), kind):
                    raise SchemaError(
                        f"{section} entry missing {key!r}: {finding!r}")
            if finding["rule"] not in known_rules:
                raise SchemaError(
                    f"finding references unknown rule {finding['rule']!r}")
        if section == "suppressed":
            for finding in doc[section]:
                if not finding.get("justification"):
                    raise SchemaError(
                        "suppressed findings must carry their justification")
    counted = summary.get("findings")
    if counted != len(doc["findings"]):
        raise SchemaError(
            f"summary.findings ({counted}) disagrees with the findings "
            f"list ({len(doc['findings'])})")


def render_text(result: SuiteResult, verbose: bool = False) -> str:
    """Human-readable run summary for terminals and CI logs."""
    lines: List[str] = []
    for finding in result.findings:
        lines.append(f"{finding.location()}: {finding.rule}: {finding.message}")
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    if verbose and result.suppressed:
        lines.append("")
        lines.append(f"baselined ({len(result.suppressed)}):")
        for finding in result.suppressed:
            lines.append(
                f"  {finding.location()}: {finding.rule} -- {finding.justification}")
    for entry in result.stale_suppressions:
        lines.append(
            f"stale baseline entry: {entry['rule']} at {entry['path']} matched "
            f"nothing (delete it, or run --prune-baseline)")
    if result.cache_stats is not None:
        lines.append(cache_line(result))
    verdict = "OK" if result.ok else "FAIL"
    by_rule = ", ".join(f"{k}={v}" for k, v in result.by_rule().items())
    lines.append(
        f"staticcheck {verdict}: {result.files_scanned} files, "
        f"{len(result.findings)} finding(s)"
        + (f" [{by_rule}]" if by_rule else "")
        + (f", {len(result.suppressed)} baselined" if result.suppressed else "")
        + (f", {len(result.stale_suppressions)} stale baseline entr"
           f"{'y' if len(result.stale_suppressions) == 1 else 'ies'}"
           if result.stale_suppressions else "")
    )
    return "\n".join(lines)


def cache_line(result: SuiteResult) -> str:
    """One line of incremental-cache accounting for the text report."""
    stats = result.cache_stats
    if stats is None or not stats.get("enabled"):
        return "cache: disabled"
    project = "reused" if stats.get("project_hit") else "re-analyzed"
    return (
        f"cache: {stats.get('file_hits', 0)}/{stats.get('files', 0)} file "
        f"results reused, project analysis {project}"
    )


def render_github(result: SuiteResult) -> str:
    """GitHub Actions workflow-command output: inline PR annotations.

    One ``::error`` per active finding and per stale baseline entry
    (both fail the run), then the same verdict line as the text format
    so logs stay greppable.
    """
    lines: List[str] = []
    for finding in result.findings:
        message = finding.message
        if finding.hint:
            message += f" -- fix: {finding.hint}"
        lines.append(
            f"::error file={finding.path},line={max(finding.line, 1)},"
            f"col={max(finding.col, 1)},title={finding.rule}::{_escape(message)}"
        )
    for entry in result.stale_suppressions:
        lines.append(
            f"::error file={entry['path']},line=1,title=stale-baseline::"
            + _escape(
                f"baseline entry {entry['rule']} at {entry['path']} matched "
                f"nothing -- delete it or run --prune-baseline")
        )
    if result.cache_stats is not None:
        lines.append(cache_line(result))
    verdict = "OK" if result.ok else "FAIL"
    lines.append(
        f"staticcheck {verdict}: {result.files_scanned} files, "
        f"{len(result.findings)} finding(s), "
        f"{len(result.stale_suppressions)} stale baseline entries"
    )
    return "\n".join(lines)


def _escape(message: str) -> str:
    """GitHub workflow-command data escaping (%, CR, LF)."""
    return (message.replace("%", "%25")
            .replace("\r", "%0D").replace("\n", "%0A"))
