"""The suppression baseline: grandfathered findings, each justified.

``staticcheck-baseline.json`` at the repo root lists findings that are
*intentional* -- an artifact serializer that must ``open()`` a file, the
profiler's ``perf_counter_ns`` reads -- so the CI gate can be blocking
without forcing contortions on legitimate exceptions.  Every entry
requires a non-empty one-line justification; entries match by
``(rule, path)`` rather than line number so routine edits to a file do
not invalidate its suppressions.  Entries that match nothing are
reported as *stale* so the baseline shrinks as violations are fixed.

Schema (``repro.staticcheck-baseline/1``)::

    {
      "schema": "repro.staticcheck-baseline/1",
      "suppressions": [
        {"rule": "RS201", "path": "src/repro/obs/export.py",
         "justification": "artifact serializer: open() is its purpose"}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

from repro.staticcheck.framework import Finding

BASELINE_SCHEMA = "repro.staticcheck-baseline/1"
DEFAULT_BASELINE_NAME = "staticcheck-baseline.json"


class BaselineError(ValueError):
    """The baseline file is malformed or missing a justification."""


@dataclass(frozen=True)
class Suppression:
    rule: str
    path: str
    justification: str


@dataclass
class Baseline:
    suppressions: List[Suppression] = field(default_factory=list)
    _used: Set[Suppression] = field(default_factory=set)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        try:
            raw = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise BaselineError(f"{path}: not valid JSON: {error}") from error
        return cls.from_dict(raw, source=str(path))

    @classmethod
    def from_dict(cls, raw: Dict[str, Any], source: str = "<dict>") -> "Baseline":
        if not isinstance(raw, dict) or raw.get("schema") != BASELINE_SCHEMA:
            raise BaselineError(
                f"{source}: expected schema {BASELINE_SCHEMA!r}, "
                f"got {raw.get('schema') if isinstance(raw, dict) else type(raw).__name__!r}"
            )
        entries = raw.get("suppressions")
        if not isinstance(entries, list):
            raise BaselineError(f"{source}: 'suppressions' must be a list")
        suppressions: List[Suppression] = []
        for index, entry in enumerate(entries):
            where = f"{source}: suppressions[{index}]"
            if not isinstance(entry, dict):
                raise BaselineError(f"{where}: must be an object")
            rule = entry.get("rule")
            spath = entry.get("path")
            justification = entry.get("justification")
            if not (isinstance(rule, str) and rule.startswith("RS")):
                raise BaselineError(f"{where}: 'rule' must be an RSxxx id")
            if not isinstance(spath, str) or not spath:
                raise BaselineError(f"{where}: 'path' must be a non-empty string")
            if not isinstance(justification, str) or not justification.strip():
                raise BaselineError(
                    f"{where}: a non-empty 'justification' is required -- "
                    f"unexplained suppressions defeat the gate"
                )
            suppressions.append(Suppression(rule, spath.replace("\\", "/"), justification))
        return cls(suppressions=suppressions)

    def match(self, finding: Finding) -> Optional[Suppression]:
        """The first suppression covering this finding, marking it used."""
        for suppression in self.suppressions:
            if finding.rule != suppression.rule:
                continue
            if _path_matches(suppression.path, finding.path):
                self._used.add(suppression)
                return suppression
        return None

    def stale(self) -> List[Suppression]:
        """Entries that matched no finding in the run (candidates to delete)."""
        return [s for s in self.suppressions if s not in self._used]


def _path_matches(baseline_path: str, finding_path: str) -> bool:
    """Suffix-tolerant path equality.

    The baseline stores repo-root-relative paths ("src/repro/obs/export.py")
    while a scan rooted at ``src`` may report "repro/obs/export.py" (or an
    absolute path when run from elsewhere) -- treat one being a ``/``-suffix
    of the other as a match.
    """
    a = baseline_path.strip("/")
    b = finding_path.replace("\\", "/").strip("/")
    return a == b or a.endswith("/" + b) or b.endswith("/" + a)


def find_default_baseline(start: Union[str, Path] = ".") -> Optional[Path]:
    """Nearest ``staticcheck-baseline.json`` walking up from ``start``."""
    current = Path(start).resolve()
    for candidate in [current] + list(current.parents):
        path = candidate / DEFAULT_BASELINE_NAME
        if path.is_file():
            return path
    return None
