"""RS51x: port-state-machine conformance (§6.2 / §6.5.1 / §6.6).

The paper's correctness argument treats the port FSM (Figure 8) as an
analyzable artifact; this pass does the same to the code.  It extracts
the :class:`PortState` enum and the ``*_TRANSITIONS`` tables from the
``portstate`` module *syntactically* (no import of analyzed code) and
checks:

* **RS510** -- a handler that *dispatches* on port state (an if/elif
  chain or ``match`` testing three or more distinct states against one
  subject) must handle the full state set: every remaining state, an
  ``else`` branch, or follow-on statements.  A dispatch that is the last
  statement of its block with neither is a silent fall-through -- the
  §6.6 self-stabilization argument assumes every state is acted on.
* **RS511** -- the transition tables themselves stay total and well
  formed: every enum member appears as a source state in some table,
  and every state a table mentions is a declared member (a typo would
  otherwise silently delete an arrow from Figure 8).
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.dataflow.callgraph import FunctionInfo, Project
from repro.staticcheck.framework import Finding, ProjectPass, Rule

#: class name of the port FSM enum, as in :mod:`repro.core.portstate`
ENUM_NAME = "PortState"

#: minimum distinct states compared against one subject before a chain
#: counts as a *dispatch* (single-state guards are not dispatches)
DISPATCH_THRESHOLD = 3

_MATCH = getattr(ast, "Match", None)
_MATCH_VALUE = getattr(ast, "MatchValue", None)
_MATCH_AS = getattr(ast, "MatchAs", None)
_MATCH_OR = getattr(ast, "MatchOr", None)


class _Fsm:
    """The syntactically-extracted state machine."""

    def __init__(self) -> None:
        self.module: Optional[str] = None
        self.relpath: str = ""
        self.members: List[str] = []
        #: table name -> (lineno, source-state member names)
        self.tables: Dict[str, Tuple[int, List[str]]] = {}
        #: every member name referenced inside any table, with locations
        self.referenced: List[Tuple[str, int]] = []

    @property
    def member_set(self) -> Set[str]:
        return set(self.members)


def extract_fsm(project: Project) -> Optional[_Fsm]:
    """Find the ``portstate`` module and pull out enum + tables."""
    for module in sorted(project.modules):
        if not (module == "portstate" or module.endswith(".portstate")):
            continue
        parsed = project.modules[module]
        fsm = _Fsm()
        fsm.module = module
        fsm.relpath = parsed.relpath
        for stmt in parsed.tree.body:
            if isinstance(stmt, ast.ClassDef) and stmt.name == ENUM_NAME:
                for sub in stmt.body:
                    if isinstance(sub, ast.Assign) and len(sub.targets) == 1 \
                            and isinstance(sub.targets[0], ast.Name) \
                            and isinstance(sub.value, ast.Constant):
                        fsm.members.append(sub.targets[0].id)
                continue
            target: Optional[ast.Name] = None
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                target, value = stmt.target, stmt.value
            if target is not None and value is not None \
                    and target.id.endswith("_TRANSITIONS"):
                table = _unwrap_dict(value)
                if table is None:
                    continue
                sources: List[str] = []
                for key in table.keys:
                    member = _portstate_member(key)
                    if member is not None:
                        sources.append(member)
                        fsm.referenced.append((member, key.lineno))
                for val in table.values:
                    for node in ast.walk(val):
                        member = _portstate_member(node)
                        if member is not None:
                            fsm.referenced.append((member, node.lineno))
                fsm.tables[target.id] = (stmt.lineno, sources)
        if fsm.members:
            return fsm
    return None


def _unwrap_dict(node: ast.AST) -> Optional[ast.Dict]:
    """The dict literal inside ``MappingProxyType({...})`` or bare."""
    if isinstance(node, ast.Call) and node.args:
        return _unwrap_dict(node.args[0])
    if isinstance(node, ast.Dict):
        return node
    return None


def _portstate_member(node: ast.AST) -> Optional[str]:
    """``PortState.X`` (or ``portstate.PortState.X``) -> ``"X"``."""
    if not isinstance(node, ast.Attribute):
        return None
    value = node.value
    if isinstance(value, ast.Name) and value.id == ENUM_NAME:
        return node.attr
    if isinstance(value, ast.Attribute) and value.attr == ENUM_NAME:
        return node.attr
    return None


def _subject_and_states(test: ast.AST) -> Optional[Tuple[str, Set[str]]]:
    """``(subject dump, states)`` for a PortState comparison test."""
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
        subject: Optional[str] = None
        states: Set[str] = set()
        for value in test.values:
            part = _subject_and_states(value)
            if part is None:
                return None
            if subject is None:
                subject = part[0]
            elif subject != part[0]:
                return None
            states |= part[1]
        return (subject, states) if subject is not None else None
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return None
    op = test.ops[0]
    left, right = test.left, test.comparators[0]
    if isinstance(op, (ast.Is, ast.Eq)):
        member = _portstate_member(right)
        if member is not None:
            return ast.dump(left), {member}
        member = _portstate_member(left)
        if member is not None:
            return ast.dump(right), {member}
        return None
    if isinstance(op, ast.In) and isinstance(right, (ast.Tuple, ast.Set, ast.List)):
        members: Set[str] = set()
        for elt in right.elts:
            member = _portstate_member(elt)
            if member is None:
                return None
            members.add(member)
        if members:
            return ast.dump(left), members
    return None


class PortFsmPass(ProjectPass):
    name = "port-fsm"
    rules = (
        Rule(
            id="RS510",
            title="port-state dispatch silently falls through",
            invariant="every handler dispatching on PortState handles the "
                      "full state set",
            paper="§6.5.1 Figure 8 / §6.6 (self-stabilization acts on every state)",
            hint="handle the missing states or add an explicit else "
                 "(raise / return) so new states cannot be dropped silently",
        ),
        Rule(
            id="RS511",
            title="port FSM transition table incomplete or malformed",
            invariant="the coded transition tables stay total over PortState",
            paper="§6.5.1 Figure 8 (the transition relation is the spec)",
            hint="give every PortState a source entry in some *_TRANSITIONS "
                 "table and reference only declared members",
        ),
    )

    def run(self, project: Project) -> Tuple[List[Finding], Dict[str, Any]]:
        fsm = extract_fsm(project)
        if fsm is None:
            return [], {}
        findings: List[Finding] = []
        findings.extend(self._check_tables(fsm))
        for info in project.iter_functions():
            findings.extend(self._check_dispatches(fsm, info))
        findings.sort(key=Finding.sort_key)
        artifact = {
            "module": fsm.module,
            "states": sorted(fsm.members),
            "tables": {name: sorted(set(sources))
                       for name, (_, sources) in sorted(fsm.tables.items())},
        }
        return findings, {"port_fsm": artifact}

    # -- RS511 -----------------------------------------------------------------------

    def _check_tables(self, fsm: _Fsm) -> Iterator[Finding]:
        if not fsm.tables:
            return
        covered: Set[str] = set()
        first_line = min(line for line, _ in fsm.tables.values())
        for _, sources in fsm.tables.values():
            covered.update(sources)
        missing = sorted(fsm.member_set - covered)
        if missing:
            yield self.finding(
                "RS511", fsm.relpath, first_line, 0,
                f"transition tables have no source entry for state(s) "
                f"{', '.join(missing)}: Figure 8 must stay total",
            )
        for member, line in sorted(set(fsm.referenced)):
            if member not in fsm.member_set:
                yield self.finding(
                    "RS511", fsm.relpath, line, 0,
                    f"transition table references unknown state "
                    f"PortState.{member}",
                )

    # -- RS510 -----------------------------------------------------------------------

    def _check_dispatches(self, fsm: _Fsm, info: FunctionInfo) -> Iterator[Finding]:
        if info.module == fsm.module:
            return  # the FSM module itself is the spec, not a handler
        # an elif arm is an If that is the sole statement of another If's
        # orelse; those are continuations of a chain, not chain starts
        continuations: Set[int] = set()
        for sub in ast.walk(info.node):
            if isinstance(sub, ast.If) and len(sub.orelse) == 1 \
                    and isinstance(sub.orelse[0], ast.If):
                continuations.add(id(sub.orelse[0]))
        for block in _blocks(info.node):
            for index, stmt in enumerate(block):
                last = index == len(block) - 1
                if isinstance(stmt, ast.If) and id(stmt) not in continuations:
                    yield from self._check_chain(fsm, info, stmt, last)
                elif _MATCH is not None and isinstance(stmt, _MATCH):
                    yield from self._check_match(fsm, info, stmt)

    def _check_chain(self, fsm: _Fsm, info: FunctionInfo, chain: ast.If,
                     is_last: bool) -> Iterator[Finding]:
        subject: Optional[str] = None
        states: Set[str] = set()
        node: ast.stmt = chain
        while isinstance(node, ast.If):
            part = _subject_and_states(node.test)
            if part is None:
                return  # mixed-condition chain: not a pure state dispatch
            if subject is None:
                subject = part[0]
            elif subject != part[0]:
                return
            states |= part[1]
            if len(node.orelse) == 1 and isinstance(node.orelse[0], ast.If):
                node = node.orelse[0]
            elif node.orelse:
                return  # explicit else branch: fall-through handled
            else:
                break
        if len(states) < DISPATCH_THRESHOLD:
            return
        missing = sorted(fsm.member_set - states)
        if missing and is_last:
            yield self.finding(
                "RS510", info.relpath, chain.lineno, chain.col_offset,
                f"{info.qname} dispatches on PortState but silently falls "
                f"through for {', '.join('PortState.' + m for m in missing)}",
            )

    def _check_match(self, fsm: _Fsm, info: FunctionInfo,
                     stmt: ast.AST) -> Iterator[Finding]:
        states: Set[str] = set()
        for case in stmt.cases:  # type: ignore[attr-defined]
            patterns = [case.pattern]
            if _MATCH_OR is not None and isinstance(case.pattern, _MATCH_OR):
                patterns = list(case.pattern.patterns)
            for pattern in patterns:
                if _MATCH_AS is not None and isinstance(pattern, _MATCH_AS) \
                        and pattern.pattern is None:
                    return  # wildcard case: everything handled
                if _MATCH_VALUE is not None and isinstance(pattern, _MATCH_VALUE):
                    member = _portstate_member(pattern.value)
                    if member is None:
                        return  # matching something other than PortState
                    states.add(member)
                else:
                    return
        if len(states) < DISPATCH_THRESHOLD:
            return
        missing = sorted(fsm.member_set - states)
        if missing:
            yield self.finding(
                "RS510", info.relpath, stmt.lineno, stmt.col_offset,
                f"{info.qname} matches on PortState but has no case for "
                f"{', '.join('PortState.' + m for m in missing)} and no "
                f"wildcard",
            )


def _blocks(node: ast.AST) -> Iterator[Sequence[ast.stmt]]:
    """Every statement list in a function: body, orelse, try parts..."""
    for sub in ast.walk(node):
        for field_name in ("body", "orelse", "finalbody"):
            block = getattr(sub, field_name, None)
            if isinstance(block, list) and block \
                    and all(isinstance(s, ast.stmt) for s in block):
                yield block
