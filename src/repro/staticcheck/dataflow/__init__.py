"""Whole-program dataflow layer for :mod:`repro.staticcheck`.

The RS1xx-RS4xx passes are per-file pattern matches; this package adds
the project-wide analyses they cannot express:

* :mod:`~repro.staticcheck.dataflow.callgraph` -- the :class:`Project`
  model: every parsed module, a module-qualified function/class index,
  and a call graph with method, ``super()``, decorator, lambda and
  import-alias resolution.
* :mod:`~repro.staticcheck.dataflow.taint` -- RS50x: interprocedural
  nondeterminism taint (wall clock, OS entropy, the global ``random``
  stream, ``id()``/``hash()`` keys) propagated through returns,
  arguments and attribute stores into scheduler / packet-emission /
  RNG-seed sinks.
* :mod:`~repro.staticcheck.dataflow.fsm` -- RS51x: port-state-machine
  conformance against the :mod:`repro.core.portstate` transition tables.
* :mod:`~repro.staticcheck.dataflow.parallel` -- RS6xx: the
  parallel-readiness inventory of module-level mutable state reachable
  from ``repro.chaos`` campaign entry points and event handlers.
"""

from repro.staticcheck.dataflow.callgraph import CallGraph, Project, build_project
from repro.staticcheck.dataflow.fsm import PortFsmPass
from repro.staticcheck.dataflow.parallel import ParallelReadinessPass
from repro.staticcheck.dataflow.taint import TaintPass

__all__ = [
    "CallGraph",
    "Project",
    "build_project",
    "TaintPass",
    "PortFsmPass",
    "ParallelReadinessPass",
]
