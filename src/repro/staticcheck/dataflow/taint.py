"""RS50x: interprocedural nondeterminism taint.

RS1xx flags a wall-clock *call site*; it cannot see ``time.monotonic()``
laundered through two helpers before it lands in ``sim.at(...)``.  This
pass tracks where nondeterministic values *flow*:

* **sources** -- wall-clock reads, OS entropy, the process-global
  ``random`` stream, and ``id()``/``hash()`` values (hash order varies
  per process), including module-level callable aliases
  (``_clock = time.monotonic``) that hide the dotted name from RS101;
* **propagation** -- through local assignments, returns, call arguments
  (caller arg taint becomes callee parameter taint), and attribute
  stores (``self.t0 = ...`` taints ``Class.t0`` for every reader);
* **sinks** -- event scheduling and packet emission
  (:data:`~repro.staticcheck.determinism.SCHEDULE_SINKS`), and RNG
  seeding (``random.seed``, any ``.seed(...)``, any ``seed=`` keyword).

Summaries are computed by a bounded fixpoint over the project call
graph (:data:`MAX_ROUNDS` propagation rounds, so taint crossing more
call layers than that is dropped -- deliberately bounded rather than
unbounded recursion).  Findings are only emitted when the flow crosses
a function boundary: same-function flows are RS1xx's job, and reporting
them twice would double every existing baseline entry.

Rules:

* **RS501** -- a wall-clock / OS-entropy / global-random value reaches a
  schedule or packet-emission sink through at least one call boundary.
* **RS502** -- such a value (or a hash-order value) seeds an RNG.
* **RS503** -- an ``id()``/``hash()``-derived value reaches a schedule
  or emission sink: event order would depend on ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.staticcheck.dataflow.callgraph import FunctionInfo, Project, iter_calls
from repro.staticcheck.determinism import (
    OS_ENTROPY_CALLS,
    SCHEDULE_SINKS,
    WALL_CLOCK_CALLS,
)
from repro.staticcheck.framework import Finding, ProjectPass, Rule

#: propagation rounds over the call graph: the bounded call-depth of
#: every function summary
MAX_ROUNDS = 10

#: taint kinds that make scheduling nondeterministic across runs
NONDET_KINDS = ("global-random", "os-entropy", "wall-clock")

#: taint kind for id()/hash() values: stable within a run, different
#: across processes
HASH_KIND = "hash-order"

#: a taint environment: kind -> (source call, function it happened in);
#: merged by lexicographic min so reports are deterministic
Taint = Dict[str, Tuple[str, str]]


def classify_source(canonical: Optional[str]) -> Optional[str]:
    """Taint kind introduced by calling this canonical dotted name."""
    if canonical is None:
        return None
    if canonical in WALL_CLOCK_CALLS:
        return "wall-clock"
    if canonical in OS_ENTROPY_CALLS or canonical.startswith("secrets."):
        return "os-entropy"
    if canonical in ("id", "hash"):
        return HASH_KIND
    if canonical.startswith("random.") and canonical not in (
            "random.seed", "random.Random"):
        return "global-random"
    return None


def merge(into: Taint, add: Taint) -> bool:
    """Union ``add`` into ``into``; True when anything changed."""
    changed = False
    for kind, origin in add.items():
        have = into.get(kind)
        if have is None or origin < have:
            into[kind] = origin
            changed = True
    return changed


class _FunctionAnalysis:
    """One flow-insensitive pass over one function's body."""

    def __init__(self, engine: "_TaintEngine", info: FunctionInfo) -> None:
        self.engine = engine
        self.info = info
        self.env: Dict[str, Taint] = {}
        for param in info.param_names():
            taint = engine.param_taint.get((info.qname, param))
            if taint:
                self.env[param] = dict(taint)

    def run(self) -> None:
        # two sweeps so a name defined later in the body (loop carried,
        # helper-below-use) still feeds earlier reads
        for _ in range(2):
            for stmt in self.info.body:
                self._stmt(stmt)

    # -- statements ------------------------------------------------------------------

    def _stmt(self, stmt: ast.AST) -> None:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                taint = self.eval(node.value)
                for target in node.targets:
                    self._bind(target, taint)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._bind(node.target, self.eval(node.value))
            elif isinstance(node, ast.AugAssign):
                self._bind(node.target, self.eval(node.value))
            elif isinstance(node, ast.Return) and node.value is not None:
                self.engine.note_return(self.info.qname, self.eval(node.value))
            elif isinstance(node, ast.Call):
                self._propagate_args(node)

    def _bind(self, target: ast.AST, taint: Taint) -> None:
        if not taint:
            return
        if isinstance(target, ast.Name):
            merge(self.env.setdefault(target.id, {}), taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taint)
        elif isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name) \
                and target.value.id in ("self", "cls") and self.info.cls is not None:
            key = (f"{self.info.module}.{self.info.cls}", target.attr)
            self.engine.note_attr(key, taint)

    def _propagate_args(self, call: ast.Call) -> None:
        """Caller argument taint becomes callee parameter taint."""
        callee = self.engine.project.resolve_call(self.info, call)
        if callee is None:
            return
        callee_info = self.engine.project.functions.get(callee)
        if callee_info is None:
            return
        params = callee_info.param_names()
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred) or index >= len(params):
                break
            taint = self.eval(arg)
            if taint:
                self.engine.note_param(callee, params[index], taint)
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in params:
                taint = self.eval(keyword.value)
                if taint:
                    self.engine.note_param(callee, keyword.arg, taint)

    # -- expressions -----------------------------------------------------------------

    def eval(self, node: Optional[ast.AST]) -> Taint:
        if node is None or isinstance(node, ast.Constant):
            return {}
        if isinstance(node, ast.Name):
            return dict(self.env.get(node.id, {}))
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id in ("self", "cls") \
                    and self.info.cls is not None:
                key = (f"{self.info.module}.{self.info.cls}", node.attr)
                return dict(self.engine.attr_taint.get(key, {}))
            return self.eval(node.value)
        if isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
            return {}
        # generic expression: the union of its child expressions
        out: Taint = {}
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.expr, ast.comprehension, ast.keyword)):
                merge(out, self.eval(
                    child.value if isinstance(child, ast.keyword) else child))
        return out

    def _eval_call(self, call: ast.Call) -> Taint:
        canonical = self.engine.project.external_for_dotted(
            self.info.module, call.func)
        kind = classify_source(canonical)
        if kind is not None:
            return {kind: (f"{canonical}()", self.info.qname)}
        callee = self.engine.project.resolve_call(self.info, call)
        if callee is not None:
            return dict(self.engine.returns.get(callee, {}))
        # unresolved call: conservatively pass its inputs through
        # (int(tainted), str(tainted), tainted.total_seconds(), ...)
        out: Taint = {}
        if isinstance(call.func, ast.Attribute):
            merge(out, self.eval(call.func.value))
        for arg in call.args:
            merge(out, self.eval(arg))
        for keyword in call.keywords:
            merge(out, self.eval(keyword.value))
        return out


class _TaintEngine:
    """The project-wide fixpoint: summaries, attr taint, param taint."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.returns: Dict[str, Taint] = {}
        self.attr_taint: Dict[Tuple[str, str], Taint] = {}
        self.param_taint: Dict[Tuple[str, str], Taint] = {}
        self.changed = False

    def note_return(self, qname: str, taint: Taint) -> None:
        if taint and merge(self.returns.setdefault(qname, {}), taint):
            self.changed = True

    def note_attr(self, key: Tuple[str, str], taint: Taint) -> None:
        if taint and merge(self.attr_taint.setdefault(key, {}), taint):
            self.changed = True

    def note_param(self, qname: str, param: str, taint: Taint) -> None:
        if taint and merge(self.param_taint.setdefault((qname, param), {}), taint):
            self.changed = True

    def solve(self) -> None:
        for _ in range(MAX_ROUNDS):
            self.changed = False
            for info in self.project.iter_functions():
                _FunctionAnalysis(self, info).run()
            if not self.changed:
                break


class TaintPass(ProjectPass):
    name = "taint"
    rules = (
        Rule(
            id="RS501",
            title="nondeterministic value flows into the event schedule",
            invariant="no wall-clock/entropy value reaches scheduling or "
                      "packet emission, even through helper calls",
            paper="§6.2 (timeouts are protocol constants) / §6.6",
            hint="thread the sim clock or a seeded stream through the call "
                 "chain instead of sampling host state",
        ),
        Rule(
            id="RS502",
            title="nondeterministic value seeds an RNG",
            invariant="every RNG seed derives from the run's master seed",
            paper="DESIGN.md determinism contract",
            hint="derive seeds via RngRegistry.child_seed/fork, never from "
                 "host time or entropy",
        ),
        Rule(
            id="RS503",
            title="id()/hash() value flows into the event schedule",
            invariant="event order never depends on PYTHONHASHSEED",
            paper="§6.6.1 (UID-based total orders)",
            hint="key on a stable field (uid, name, port number) instead of "
                 "id()/hash()",
        ),
    )

    def run(self, project: Project) -> Tuple[List[Finding], Dict[str, Any]]:
        engine = _TaintEngine(project)
        engine.solve()
        findings: List[Finding] = []
        seen = set()
        for info in project.iter_functions():
            analysis = _FunctionAnalysis(engine, info)
            analysis.run()  # rebuild the local env with settled summaries
            for call in iter_calls(info.node):
                for finding in self._check_sinks(engine, analysis, info, call):
                    key = (finding.rule, finding.path, finding.line,
                           finding.col, finding.message)
                    if key not in seen:
                        seen.add(key)
                        findings.append(finding)
        findings.sort(key=Finding.sort_key)
        return findings, {}

    # -- sink checks ----------------------------------------------------------------

    def _check_sinks(self, engine: _TaintEngine, analysis: _FunctionAnalysis,
                     info: FunctionInfo, call: ast.Call) -> Iterable[Finding]:
        is_schedule = (isinstance(call.func, ast.Attribute)
                       and call.func.attr in SCHEDULE_SINKS)
        canonical = engine.project.external_for_dotted(info.module, call.func)
        is_seed = (
            canonical == "random.seed"
            or (isinstance(call.func, ast.Attribute) and call.func.attr == "seed")
        )
        if is_schedule or is_seed:
            taint: Taint = {}
            for arg in call.args:
                merge(taint, analysis.eval(arg))
            for keyword in call.keywords:
                merge(taint, analysis.eval(keyword.value))
            sink_name = call.func.attr if isinstance(call.func, ast.Attribute) \
                else canonical or "?"
            yield from self._emit(info, call, taint, sink_name,
                                  seed_sink=is_seed, schedule_sink=is_schedule)
        # any call taking a tainted seed= keyword seeds an RNG downstream
        for keyword in call.keywords:
            if keyword.arg == "seed" and not is_seed:
                taint = analysis.eval(keyword.value)
                yield from self._emit(info, call, taint, "seed=",
                                      seed_sink=True, schedule_sink=False)

    def _emit(self, info: FunctionInfo, call: ast.Call, taint: Taint,
              sink_name: str, seed_sink: bool, schedule_sink: bool,
              ) -> Iterable[Finding]:
        for kind in sorted(taint):
            origin_call, origin_fn = taint[kind]
            if origin_fn == info.qname:
                continue  # same-function flows are RS1xx territory
            if seed_sink:
                rule = "RS502"
            elif kind == HASH_KIND:
                rule = "RS503"
            else:
                rule = "RS501"
            if not seed_sink and not schedule_sink:
                continue
            what = "RNG seed" if seed_sink else "event-schedule/emission sink"
            yield self.finding(
                rule, info.relpath,
                getattr(call, "lineno", 0), getattr(call, "col_offset", 0),
                f"{kind} value from {origin_call} (in {origin_fn}) reaches "
                f"{what} .{sink_name}() in {info.qname}",
            )
