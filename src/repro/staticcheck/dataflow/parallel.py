"""RS6xx: parallel-readiness analysis for process-pool sharding.

ROADMAP item 4 shards chaos campaigns across a process pool with
deterministic per-shard seed forking.  That is only sound if a campaign
run touches no module-level mutable state: forked workers each get a
copy-on-write snapshot, so a write that was shared in-process silently
diverges across shards (and on spawn-based pools it is simply lost).

This pass computes, over the whole-program call graph, the set of
module-level mutable objects transitively **read or written** from

* ``repro.chaos`` campaign entry points (every function and method the
  chaos package defines), and
* event handlers (every method of a class in the hot component
  packages: ``repro.net`` / ``repro.core`` / ``repro.sim`` /
  ``repro.host``),

and emits a machine-readable **shared-state inventory** (the report's
``dataflow.shared_state`` section) that directly gates the sharding
work: an empty ``writes`` section is the green light.

Rules (writes only -- read-only module state is fork-safe):

* **RS601** -- module-level mutable state written from code reachable
  from a chaos campaign entry point.
* **RS602** -- module-level mutable state written from code reachable
  from an event handler: two Networks in one process would couple.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.staticcheck.dataflow.callgraph import FunctionInfo, Project, iter_calls
from repro.staticcheck.framework import Finding, ProjectPass, Rule
from repro.staticcheck.hygiene import _mutable_kind

#: package whose functions/methods are campaign entry points
CHAOS_PACKAGE = "repro.chaos"

#: packages whose class methods run inside the event loop
HANDLER_PACKAGES = ("repro.net", "repro.core", "repro.sim", "repro.host")

#: method names that mutate their receiver in place
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "sort", "reverse",
    "add", "discard", "update", "setdefault", "popitem",
    "appendleft", "extendleft", "rotate",
})

#: bound on reachability propagation rounds over the call graph
MAX_ROUNDS = 30

#: cap on names listed per inventory entry (counts stay exact)
LIST_CAP = 8


@dataclass(frozen=True)
class GlobalVar:
    """One module-level mutable binding."""

    qname: str  # "repro.obs.registry.DEFAULT"
    module: str
    name: str
    kind: str  # "dict", "list", ...
    relpath: str
    line: int


def _in_package(module: str, *packages: str) -> bool:
    return any(module == pkg or module.startswith(pkg + ".") for pkg in packages)


def collect_globals(project: Project) -> Dict[str, GlobalVar]:
    """Every module-level mutable container binding in the project."""
    out: Dict[str, GlobalVar] = {}
    for module in sorted(project.modules):
        parsed = project.modules[module]
        for stmt in parsed.tree.body:
            target: Optional[ast.Name] = None
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                target, value = stmt.target, stmt.value
            if target is None or value is None or target.id == "__all__":
                continue
            kind = _mutable_kind(value)
            if kind is None:
                continue
            var = GlobalVar(
                qname=f"{module}.{target.id}",
                module=module,
                name=target.id,
                kind=kind,
                relpath=parsed.relpath,
                line=stmt.lineno,
            )
            out[var.qname] = var
    return out


#: access map: global qname -> mode ("read"/"write") -> accessor qname (min)
Accesses = Dict[Tuple[str, str], str]


class _AccessCollector:
    """Direct global reads/writes of one function body."""

    def __init__(self, project: Project, globals_: Dict[str, GlobalVar],
                 info: FunctionInfo) -> None:
        self.project = project
        self.globals = globals_
        self.info = info
        self.declared_global: Set[str] = set()
        self.local_names: Set[str] = set()
        self.accesses: Accesses = {}
        self._scan_scope()

    def _scan_scope(self) -> None:
        for node in ast.walk(self.info.node):
            if isinstance(node, ast.Global):
                self.declared_global.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                self.local_names.add(node.id)
            elif isinstance(node, ast.arg):
                self.local_names.add(node.arg)
        self.local_names -= self.declared_global

    def _module_global(self, name: str) -> Optional[str]:
        if name in self.local_names:
            return None
        qname = f"{self.info.module}.{name}"
        return qname if qname in self.globals else None

    def _foreign_global(self, node: ast.AST) -> Optional[str]:
        """``othermod.NAME`` resolved through imports to a known global."""
        if not isinstance(node, ast.Attribute):
            return None
        dotted = self.project.external_for_dotted(self.info.module, node)
        if dotted is not None and dotted in self.globals:
            return dotted
        return None

    def note(self, qname: Optional[str], mode: str) -> None:
        if qname is not None:
            key = (qname, mode)
            if key not in self.accesses or self.info.qname < self.accesses[key]:
                self.accesses[key] = self.info.qname

    def collect(self) -> Accesses:
        for node in ast.walk(self.info.node):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                self.note(self._module_global(node.id), "read")
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store) \
                    and node.id in self.declared_global:
                self.note(self._module_global_declared(node.id), "write")
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                self.note(self._foreign_global(node), "read")
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Store):
                self.note(self._foreign_global(node), "write")
            elif isinstance(node, (ast.Subscript, ast.Delete)):
                self._subscript(node)
        for call in iter_calls(self.info.node):
            self._mutator_call(call)
        return self.accesses

    def _module_global_declared(self, name: str) -> Optional[str]:
        qname = f"{self.info.module}.{name}"
        return qname if qname in self.globals else None

    def _subscript(self, node: ast.AST) -> None:
        targets: List[ast.AST] = []
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, (ast.Store, ast.Del)):
            targets.append(node.value)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    targets.append(target.value)
        for target in targets:
            if isinstance(target, ast.Name):
                self.note(self._module_global(target.id), "write")
            else:
                self.note(self._foreign_global(target), "write")

    def _mutator_call(self, call: ast.Call) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in MUTATOR_METHODS:
            return
        receiver = func.value
        if isinstance(receiver, ast.Name):
            self.note(self._module_global(receiver.id), "write")
        else:
            self.note(self._foreign_global(receiver), "write")


class ParallelReadinessPass(ProjectPass):
    name = "parallel-readiness"
    rules = (
        Rule(
            id="RS601",
            title="chaos campaign reaches writable module-level state",
            invariant="campaign runs are shard-independent: a process pool "
                      "may fork them without sharing writes",
            paper="§6.6 run independence / ROADMAP item 4 (chaos sharding)",
            hint="move the state onto the campaign/Network object, or "
                 "baseline it with a justification until the sharding PR",
        ),
        Rule(
            id="RS602",
            title="event handler reaches writable module-level state",
            invariant="two Networks in one process share nothing",
            paper="§6.6 (switches share no memory)",
            hint="hang per-run state off a component object; module globals "
                 "couple every simulator in the process",
        ),
    )

    def run(self, project: Project) -> Tuple[List[Finding], Dict[str, Any]]:
        globals_ = collect_globals(project)
        own: Dict[str, Accesses] = {}
        for info in project.iter_functions():
            own[info.qname] = _AccessCollector(project, globals_, info).collect()

        reach: Dict[str, Accesses] = {q: dict(a) for q, a in own.items()}
        for _ in range(MAX_ROUNDS):
            changed = False
            for qname in sorted(reach):
                mine = reach[qname]
                for callee in project.callgraph.callees(qname):
                    for key, accessor in reach.get(callee, {}).items():
                        if key not in mine or accessor < mine[key]:
                            mine[key] = accessor
                            changed = True
            if not changed:
                break

        chaos_entries = [
            info.qname for info in project.iter_functions()
            if _in_package(info.module, CHAOS_PACKAGE)
        ]
        handler_entries = [
            info.qname for info in project.iter_functions()
            if info.cls is not None and _in_package(info.module, *HANDLER_PACKAGES)
        ]

        inventory, findings = self._summarize(
            globals_, reach, chaos_entries, handler_entries)
        findings.sort(key=Finding.sort_key)
        return findings, {"shared_state": inventory}

    def _summarize(
        self,
        globals_: Dict[str, GlobalVar],
        reach: Dict[str, Accesses],
        chaos_entries: List[str],
        handler_entries: List[str],
    ) -> Tuple[List[Dict[str, Any]], List[Finding]]:
        per_global: Dict[str, Dict[str, Dict[str, Set[str]]]] = {}

        def note(var: str, mode: str, role: str, entry: str, accessor: str) -> None:
            slot = per_global.setdefault(var, {}).setdefault(
                mode, {"chaos": set(), "handler": set(), "accessors": set()})
            slot[role].add(entry)
            slot["accessors"].add(accessor)

        for role, entries in (("chaos", chaos_entries), ("handler", handler_entries)):
            for entry in entries:
                for (var, mode), accessor in reach.get(entry, {}).items():
                    note(var, mode, role, entry, accessor)

        inventory: List[Dict[str, Any]] = []
        findings: List[Finding] = []
        for var_qname in sorted(per_global):
            var = globals_[var_qname]
            modes = per_global[var_qname]
            entry: Dict[str, Any] = {
                "name": var.qname,
                "kind": var.kind,
                "path": var.relpath,
                "line": var.line,
            }
            for mode in ("read", "write"):
                slot = modes.get(mode)
                if slot is None:
                    continue
                entry[mode + "s"] = {
                    "accessors": _capped(slot["accessors"]),
                    "chaos_entrypoints": _capped(slot["chaos"]),
                    "handler_entrypoints": _capped(slot["handler"]),
                }
            inventory.append(entry)
            write_slot = modes.get("write")
            if not write_slot:
                continue
            accessor = min(write_slot["accessors"])
            if write_slot["chaos"]:
                findings.append(self.finding(
                    "RS601", var.relpath, var.line, 0,
                    f"module-level {var.kind} {var.qname!r} is written by "
                    f"{accessor}, reachable from chaos entry point "
                    f"{min(write_slot['chaos'])}: campaign shards would "
                    f"share it",
                ))
            if write_slot["handler"]:
                findings.append(self.finding(
                    "RS602", var.relpath, var.line, 0,
                    f"module-level {var.kind} {var.qname!r} is written by "
                    f"{accessor}, reachable from event handler "
                    f"{min(write_slot['handler'])}: simulators in one "
                    f"process would couple",
                ))
        return inventory, findings


def _capped(names: Set[str]) -> Dict[str, Any]:
    ordered = sorted(names)
    return {
        "count": len(ordered),
        "names": ordered[:LIST_CAP],
    }
