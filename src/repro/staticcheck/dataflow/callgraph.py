"""The :class:`Project` model and whole-program call graph.

Everything here is still pure :mod:`ast` -- no code under analysis is
imported or executed -- but unlike the per-file passes the resolver sees
*all* parsed modules at once, so a call like ``self.monitor.sample()``
can be followed into another module's class.

Name resolution, in decreasing order of confidence:

* plain names: module-local functions, ``name = lambda ...`` bindings,
  ``alias = function`` re-bindings, then import-map lookups
  (``from x import f as g`` resolves ``g`` back to ``x.f``);
* methods: ``self.m()`` / ``cls.m()`` via class-attribute lookup in the
  defining class and its resolved bases; ``super().m()`` starting at the
  first base; ``obj.m()`` when ``obj`` is a parameter annotated with a
  project class, a local assigned from a project-class constructor, or a
  ``self.attr`` whose type was inferred from ``__init__``;
* dotted calls: ``pkg.mod.f()`` through the import map, following
  package ``__init__`` re-exports for a bounded number of hops.

Decorated functions keep their name (the common case: the decorator
wraps and re-binds), so a call to a decorated function still resolves to
its body.  Lookup depth, re-export hops and summary propagation are all
bounded (:data:`MAX_LOOKUP_DEPTH`, :data:`MAX_REEXPORT_HOPS`) so cyclic
imports and deep hierarchies can never hang the linter.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.framework import ImportMap, ParsedModule, annotation_name

#: schema id of the serialized call graph (the golden-snapshot artifact)
CALLGRAPH_SCHEMA = "repro.staticcheck.callgraph/1"

#: bound on base-class walks while resolving a method
MAX_LOOKUP_DEPTH = 8

#: bound on package-``__init__`` re-export hops while resolving a name
MAX_REEXPORT_HOPS = 3


@dataclass
class FunctionInfo:
    """One analyzable function: a def, a method, or a named lambda."""

    qname: str  # "repro.net.switch.Switch.handle"
    module: str  # "repro.net.switch"
    relpath: str
    name: str  # "handle"
    cls: Optional[str]  # enclosing class name, if a method
    node: ast.AST  # FunctionDef / AsyncFunctionDef / Lambda
    lineno: int

    @property
    def body(self) -> List[ast.stmt]:
        if isinstance(self.node, ast.Lambda):
            return [ast.Expr(value=self.node.body)]
        return list(self.node.body)  # type: ignore[attr-defined]

    def param_names(self) -> List[str]:
        args = self.node.args  # type: ignore[attr-defined]
        names = [a.arg for a in
                 list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)]
        if names and self.cls is not None and names[0] in ("self", "cls"):
            names = names[1:]
        return names


@dataclass
class ClassInfo:
    """One project class: methods, bases, and inferred attribute types."""

    qname: str  # "repro.net.switch.Switch"
    module: str
    name: str
    node: ast.ClassDef
    base_names: List[str] = field(default_factory=list)  # as written
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fn qname
    attr_types: Dict[str, str] = field(default_factory=dict)  # attr -> raw type name


class CallGraph:
    """Caller -> callees over function qualified names, deterministic."""

    def __init__(self) -> None:
        self._edges: Dict[str, Set[str]] = {}

    def add(self, caller: str, callee: str) -> None:
        self._edges.setdefault(caller, set()).add(callee)

    def callees(self, caller: str) -> Tuple[str, ...]:
        return tuple(sorted(self._edges.get(caller, ())))

    def callers_of(self, callee: str) -> Tuple[str, ...]:
        return tuple(sorted(
            caller for caller, callees in self._edges.items() if callee in callees
        ))

    def edges(self) -> Dict[str, Tuple[str, ...]]:
        return {caller: tuple(sorted(callees))
                for caller, callees in sorted(self._edges.items())}

    def to_json(self, functions: Sequence[str] = ()) -> Dict[str, Any]:
        """Stable document for golden snapshots and debugging dumps."""
        return {
            "schema": CALLGRAPH_SCHEMA,
            "functions": sorted(functions),
            "edges": {caller: sorted(callees)
                      for caller, callees in sorted(self._edges.items())},
        }


class Project:
    """All parsed modules plus the indices whole-program passes share."""

    def __init__(self, modules: Sequence[ParsedModule]) -> None:
        self.modules: Dict[str, ParsedModule] = {}
        self.imports: Dict[str, ImportMap] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: module-level ``g = f`` where f is a project function
        self.function_aliases: Dict[str, str] = {}
        #: module-level ``clock = time.monotonic``: name qname -> canonical dotted
        self.external_aliases: Dict[str, str] = {}
        self.callgraph = CallGraph()
        #: per-function local-variable class types (name -> class qname)
        self._local_types: Dict[str, Dict[str, str]] = {}

        for parsed in sorted(modules, key=lambda m: m.module):
            if parsed.module in self.modules:
                continue  # duplicate dotted name: keep the first, deterministic
            self.modules[parsed.module] = parsed
            self.imports[parsed.module] = ImportMap(parsed.tree)
        for parsed in self.modules.values():
            self._index_module(parsed)
        self._resolve_attr_types()
        for info in self.functions.values():
            self._local_types[info.qname] = self._infer_local_types(info)
        self._build_edges()

    # -- indexing ------------------------------------------------------------------

    def _index_module(self, parsed: ParsedModule) -> None:
        for stmt in parsed.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(parsed, stmt, cls=None)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(parsed, stmt)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                self._index_binding(parsed, stmt.targets[0].id, stmt.value, stmt)

    def _add_function(self, parsed: ParsedModule, node: ast.AST,
                      cls: Optional[str], name: Optional[str] = None) -> FunctionInfo:
        fname = name if name is not None else node.name  # type: ignore[attr-defined]
        qname = ".".join(filter(None, [parsed.module, cls, fname]))
        info = FunctionInfo(
            qname=qname,
            module=parsed.module,
            relpath=parsed.relpath,
            name=fname,
            cls=cls,
            node=node,
            lineno=getattr(node, "lineno", 0),
        )
        self.functions[qname] = info
        return info

    def _index_class(self, parsed: ParsedModule, node: ast.ClassDef) -> None:
        qname = f"{parsed.module}.{node.name}"
        info = ClassInfo(qname=qname, module=parsed.module, name=node.name, node=node)
        for base in node.bases:
            written = _dotted_of(base)
            if written is not None:
                info.base_names.append(written)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._add_function(parsed, stmt, cls=node.name)
                info.methods[stmt.name] = fn.qname
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and isinstance(stmt.value, ast.Lambda):
                fn = self._add_function(parsed, stmt.value, cls=node.name,
                                        name=stmt.targets[0].id)
                fn.lineno = stmt.lineno
                info.methods[stmt.targets[0].id] = fn.qname
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                type_name = annotation_name(stmt.annotation)
                if type_name is not None:
                    info.attr_types.setdefault(stmt.target.id, type_name)
        self.classes[qname] = info

    def _index_binding(self, parsed: ParsedModule, name: str,
                       value: ast.AST, stmt: ast.Assign) -> None:
        mod = parsed.module
        qname = f"{mod}.{name}"
        if isinstance(value, ast.Lambda):
            fn = self._add_function(parsed, value, cls=None, name=name)
            fn.lineno = stmt.lineno
            return
        written = _dotted_of(value)
        if written is None:
            return
        local = f"{mod}.{written}"
        if local in self.functions or local in self.function_aliases:
            self.function_aliases[qname] = self.function_aliases.get(local, local)
            return
        canonical = self.imports[mod].resolve(value)
        if canonical is None or canonical == written.split(".")[0] and "." not in written:
            canonical = written if "." in written else None
        if canonical is None:
            return
        target = self.function_for_dotted(canonical)
        if target is not None:
            self.function_aliases[qname] = target
        else:
            self.external_aliases[qname] = canonical

    def _resolve_attr_types(self) -> None:
        """Second pass: ``self.attr = ClassName(...)`` type inference."""
        for cls in self.classes.values():
            imap = self.imports[cls.module]
            for method_qname in cls.methods.values():
                method = self.functions[method_qname]
                for node in ast.walk(method.node):
                    target: Optional[ast.AST] = None
                    value: Optional[ast.AST] = None
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target = node.target
                        ann = annotation_name(node.annotation)
                        if ann is not None and self._is_self_attr(target):
                            cls.attr_types.setdefault(target.attr, ann)  # type: ignore[union-attr]
                        continue
                    if target is None or not self._is_self_attr(target):
                        continue
                    if isinstance(value, ast.Call):
                        constructed = self._constructed_class(cls.module, imap, value)
                        if constructed is not None:
                            cls.attr_types.setdefault(
                                target.attr, constructed)  # type: ignore[union-attr]

    @staticmethod
    def _is_self_attr(node: ast.AST) -> bool:
        return (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self")

    # -- lookup helpers -------------------------------------------------------------

    def class_for_name(self, module: str, written: str,
                       _hops: int = 0) -> Optional[str]:
        """Resolve a class name as written in ``module`` to a class qname."""
        if _hops > MAX_REEXPORT_HOPS:
            return None
        local = f"{module}.{written}"
        if local in self.classes:
            return local
        imap = self.imports.get(module)
        canonical = imap.resolve(_name_node(written)) if imap else None
        for candidate in (canonical, written):
            if candidate is None:
                continue
            if candidate in self.classes:
                return candidate
            # re-export hop: "repro.net.Switch" where repro.net/__init__ says
            # "from repro.net.switch import Switch"
            holder, _, leaf = candidate.rpartition(".")
            if holder in self.modules and holder != module:
                hop = self.class_for_name(holder, leaf, _hops + 1)
                if hop is not None:
                    return hop
        return None

    def lookup_method(self, class_qname: str, method: str,
                      _depth: int = 0) -> Optional[str]:
        """Class-attribute lookup through resolved bases, depth-bounded."""
        if _depth > MAX_LOOKUP_DEPTH:
            return None
        cls = self.classes.get(class_qname)
        if cls is None:
            return None
        if method in cls.methods:
            return cls.methods[method]
        for base_written in cls.base_names:
            base = self.class_for_name(cls.module, base_written)
            if base is not None and base != class_qname:
                found = self.lookup_method(base, method, _depth + 1)
                if found is not None:
                    return found
        return None

    def function_for_dotted(self, dotted: str, _hops: int = 0) -> Optional[str]:
        """Project function for a canonical dotted path, following re-exports."""
        if _hops > MAX_REEXPORT_HOPS:
            return None
        if dotted in self.functions:
            return dotted
        if dotted in self.function_aliases:
            return self.function_aliases[dotted]
        holder, _, leaf = dotted.rpartition(".")
        if not holder:
            return None
        if holder in self.classes:
            return self.lookup_method(holder, leaf)
        if holder in self.modules:
            imap = self.imports[holder]
            canonical = imap.resolve(_name_node(leaf))
            if canonical is not None and canonical != dotted and canonical != leaf:
                return self.function_for_dotted(canonical, _hops + 1)
        return None

    def external_for_dotted(self, module: str, node: ast.AST) -> Optional[str]:
        """Canonical external dotted path of a call target, alias-aware.

        Resolves through the module's import map first, then through
        module-level ``clock = time.monotonic`` style callable aliases.
        """
        imap = self.imports.get(module)
        if imap is None:
            return None
        resolved = imap.resolve(node)
        if isinstance(node, ast.Name):
            alias = self.external_aliases.get(f"{module}.{node.id}")
            if alias is not None:
                return alias
        if resolved is not None:
            # cross-module: "helpers.clock" is the alias qname in its
            # defining module
            alias = self.external_aliases.get(resolved)
            if alias is not None:
                return alias
        return resolved

    # -- type inference -------------------------------------------------------------

    def _constructed_class(self, module: str, imap: ImportMap,
                           call: ast.Call) -> Optional[str]:
        written = _dotted_of(call.func)
        if written is None:
            return None
        return self.class_for_name(module, written)

    def _infer_local_types(self, info: FunctionInfo) -> Dict[str, str]:
        """Parameter annotations + ``x = ClassName(...)`` constructor locals."""
        types: Dict[str, str] = {}
        node = info.node
        imap = self.imports[info.module]
        args = getattr(node, "args", None)
        if args is not None:
            for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
                ann = annotation_name(arg.annotation)
                if ann is None:
                    continue
                resolved = self.class_for_name(info.module, ann)
                if resolved is not None:
                    types[arg.arg] = resolved
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1 \
                    and isinstance(sub.targets[0], ast.Name) \
                    and isinstance(sub.value, ast.Call):
                constructed = self._constructed_class(info.module, imap, sub.value)
                if constructed is not None:
                    types.setdefault(sub.targets[0].id, constructed)
        return types

    def local_types(self, qname: str) -> Dict[str, str]:
        return self._local_types.get(qname, {})

    # -- call resolution ------------------------------------------------------------

    def resolve_call(self, caller: FunctionInfo, call: ast.Call) -> Optional[str]:
        """Project function qname this call dispatches to, or None."""
        func = call.func
        mod = caller.module
        # super().m(...)
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Call) \
                and isinstance(func.value.func, ast.Name) \
                and func.value.func.id == "super":
            if caller.cls is not None:
                cls = self.classes.get(f"{mod}.{caller.cls}")
                if cls is not None:
                    for base_written in cls.base_names:
                        base = self.class_for_name(mod, base_written)
                        if base is not None:
                            found = self.lookup_method(base, func.attr)
                            if found is not None:
                                return found
            return None
        if isinstance(func, ast.Name):
            return self._resolve_plain(caller, func.id)
        if isinstance(func, ast.Attribute):
            receiver = func.value
            # self.m() / cls.m()
            if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls") \
                    and caller.cls is not None:
                return self.lookup_method(f"{mod}.{caller.cls}", func.attr)
            # self.attr.m() via inferred attribute types
            if isinstance(receiver, ast.Attribute) \
                    and isinstance(receiver.value, ast.Name) \
                    and receiver.value.id in ("self", "cls") and caller.cls is not None:
                cls = self.classes.get(f"{mod}.{caller.cls}")
                if cls is not None:
                    written = cls.attr_types.get(receiver.attr)
                    if written is not None:
                        typed = self.class_for_name(mod, written) \
                            if written not in self.classes else written
                        if typed is not None:
                            return self.lookup_method(typed, func.attr)
            # obj.m() via annotated parameters / constructor locals
            if isinstance(receiver, ast.Name):
                typed = self.local_types(caller.qname).get(receiver.id)
                if typed is not None:
                    return self.lookup_method(typed, func.attr)
            # pkg.mod.f() through the import map
            dotted = self.imports[mod].resolve(func)
            if dotted is not None:
                return self.function_for_dotted(dotted)
        return None

    def _resolve_plain(self, caller: FunctionInfo, name: str) -> Optional[str]:
        mod = caller.module
        local = f"{mod}.{name}"
        if local in self.functions:
            return local
        if local in self.function_aliases:
            return self.function_aliases[local]
        canonical = self.imports[mod].resolve(_name_node(name))
        if canonical is not None and canonical != name:
            found = self.function_for_dotted(canonical)
            if found is not None:
                return found
            # constructing an imported project class dispatches its __init__
            if canonical in self.classes:
                return self.lookup_method(canonical, "__init__")
        if local in self.classes:
            return self.lookup_method(local, "__init__")
        return None

    # -- edges ----------------------------------------------------------------------

    def _build_edges(self) -> None:
        for qname in sorted(self.functions):
            info = self.functions[qname]
            for call in iter_calls(info.node):
                callee = self.resolve_call(info, call)
                if callee is not None and callee != qname:
                    self.callgraph.add(qname, callee)

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for qname in sorted(self.functions):
            yield self.functions[qname]

    def to_json(self) -> Dict[str, Any]:
        return self.callgraph.to_json(functions=sorted(self.functions))


def iter_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Every call in a function body, including inside nested defs.

    Nested defs and lambdas are not separately indexed functions; their
    calls are attributed to the enclosing definition, which is what both
    taint propagation and reachability want.
    """
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield sub


def _dotted_of(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _name_node(written: str) -> ast.AST:
    """A synthetic Name/Attribute node for resolver reuse."""
    parts = written.split(".")
    node: ast.AST = ast.Name(id=parts[0], ctx=ast.Load())
    for attr in parts[1:]:
        node = ast.Attribute(value=node, attr=attr, ctx=ast.Load())
    return node


def build_project(modules: Sequence[ParsedModule]) -> Project:
    """Build the shared project model whole-program passes consume."""
    return Project(modules)
