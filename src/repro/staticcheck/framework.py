"""Core machinery for the ``repro.staticcheck`` analysis suite.

The suite is a set of *passes*, each owning a family of rules with stable
IDs (``RS1xx`` determinism, ``RS2xx`` event-handler purity, ``RS3xx``
observability discipline, ``RS4xx`` mutable-state hygiene).  A pass is a
pure function from a parsed module to findings: no imports of the code
under analysis, no execution, just :mod:`ast`.  That keeps the linter
safe to run on broken trees and byte-deterministic -- the same source
always yields the same report, which is itself a determinism invariant
this repo cares about.

Layout of a run:

1. :func:`discover` walks the scan roots for ``*.py`` files (sorted, so
   report order never depends on filesystem order).
2. :func:`parse_module` builds a :class:`ParsedModule` with a best-effort
   dotted module name (walking ``__init__.py`` parents), which rules use
   to scope themselves to hot-path packages vs CLI/analysis modules.
3. Each pass's :meth:`Pass.check` yields :class:`Finding` objects.
4. A :class:`~repro.staticcheck.baseline.Baseline` splits findings into
   *active* (fail the build) and *suppressed* (grandfathered, each with a
   recorded justification).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: rule id for files the parser itself rejects -- always active, never
#: baselined away silently (a file that cannot be parsed cannot be checked)
PARSE_ERROR_RULE = "RS000"

#: bumped whenever any rule's behavior changes; invalidates the
#: incremental result cache (:mod:`repro.staticcheck.cache`) wholesale
RULESET_VERSION = "9.0"


@dataclass(frozen=True)
class Rule:
    """Stable metadata for one check.

    ``invariant`` names what the rule protects; ``paper`` points at the
    section of the Autonet paper (or of DESIGN.md) that motivates it;
    ``hint`` is the one-line fix suggestion attached to every finding.
    """

    id: str
    title: str
    invariant: str
    paper: str
    hint: str


@dataclass
class Finding:
    """One rule violation at a specific location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    #: set when a baseline suppression matched; carries its justification
    justification: Optional[str] = None

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }
        if self.justification is not None:
            out["justification"] = self.justification
        return out


@dataclass
class ParsedModule:
    """A source file plus the context rules need to scope themselves."""

    path: Path
    relpath: str  # posix-style, as reported in findings
    module: str  # best-effort dotted name ("repro.net.switch")
    tree: ast.Module
    source: str

    @property
    def is_main(self) -> bool:
        """True for ``python -m`` entry points (CLI modules)."""
        return self.module.endswith("__main__")

    def in_package(self, *packages: str) -> bool:
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in packages
        )


class Pass:
    """Base class: one family of rules sharing an AST traversal."""

    name = "base"
    rules: Tuple[Rule, ...] = ()

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        raise NotImplementedError

    def rule(self, rule_id: str) -> Rule:
        for rule in self.rules:
            if rule.id == rule_id:
                return rule
        raise KeyError(rule_id)

    def finding(self, rule_id: str, module: ParsedModule, node: ast.AST,
                message: str) -> Finding:
        rule = self.rule(rule_id)
        return Finding(
            rule=rule_id,
            path=module.relpath,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=rule.hint,
        )


class ProjectPass:
    """Base class: a whole-program analysis over the parsed project.

    Unlike :class:`Pass`, a project pass sees every module at once (via
    the :class:`~repro.staticcheck.dataflow.callgraph.Project` model) so
    it can follow a value through calls, returns and attribute stores
    across files.  :meth:`run` returns its findings plus a dict of
    machine-readable artifacts (e.g. the RS6xx shared-state inventory)
    that the report embeds under ``dataflow``.
    """

    name = "project-base"
    rules: Tuple[Rule, ...] = ()

    def run(self, project: Any) -> Tuple[List[Finding], Dict[str, Any]]:
        raise NotImplementedError

    def rule(self, rule_id: str) -> Rule:
        for rule in self.rules:
            if rule.id == rule_id:
                return rule
        raise KeyError(rule_id)

    def finding(self, rule_id: str, path: str, line: int, col: int,
                message: str) -> Finding:
        rule = self.rule(rule_id)
        return Finding(
            rule=rule_id,
            path=path,
            line=line,
            col=col,
            message=message,
            hint=rule.hint,
        )


# -- shared AST helpers ----------------------------------------------------------


class ImportMap:
    """Resolves names back to the dotted path they were imported from.

    ``import time as t`` maps ``t`` -> ``time``; ``from datetime import
    datetime`` maps ``datetime`` -> ``datetime.datetime``.  With that,
    :meth:`resolve_call` turns ``t.monotonic()`` into the canonical
    ``time.monotonic`` every rule table is written against.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.module_aliases: Dict[str, str] = {}
        self.name_origins: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.name_origins[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of an expression, or None if unknown."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        if root in self.name_origins:
            base = self.name_origins[root]
        elif root in self.module_aliases:
            base = self.module_aliases[root]
        elif not parts:
            # a bare name that was never imported: a builtin or local
            return root
        else:
            return None
        return ".".join([base] + list(reversed(parts)))


def dotted_name(node: ast.AST) -> Optional[str]:
    """Literal dotted form of an attribute chain (``self.sim.metrics``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """Outermost type name of a parameter annotation.

    Unwraps ``Optional[X]``/``"X"`` string annotations to ``X`` so purity
    rules can recognize component-typed parameters.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # string annotation: take the outer identifier
        text = node.value.strip().strip("'\"")
        for wrapper in ("Optional[", "Union["):
            if text.startswith(wrapper) and text.endswith("]"):
                text = text[len(wrapper):-1].split(",")[0].strip()
        return text.split("[")[0].split(".")[-1] or None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        outer = annotation_name(node.value)
        if outer in ("Optional", "Union"):
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                return annotation_name(inner.elts[0])
            return annotation_name(inner)
        return outer
    return None


def function_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """The module plus every (possibly nested) function definition."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# -- discovery and parsing --------------------------------------------------------


def discover(paths: Sequence[Path]) -> List[Path]:
    """All ``*.py`` files under the given files/directories, sorted."""
    found: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            found.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            found.add(path)
    return sorted(found)


def module_name_for(path: Path) -> str:
    """Best-effort dotted module name, walking ``__init__.py`` parents."""
    parts: List[str] = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) or path.stem


def display_path(path: Path) -> str:
    """Stable posix-style path for reports: CWD-relative when possible."""
    try:
        rel = path.resolve().relative_to(Path.cwd().resolve())
        return rel.as_posix()
    except ValueError:
        return path.as_posix()


def parse_module(path: Path,
                 source: Optional[str] = None,
                 ) -> Tuple[Optional[ParsedModule], Optional[Finding]]:
    """Parse one file; on a syntax error return an RS000 finding instead."""
    if source is None:
        source = path.read_text(encoding="utf-8", errors="replace")
    relpath = display_path(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return None, Finding(
            rule=PARSE_ERROR_RULE,
            path=relpath,
            line=error.lineno or 0,
            col=error.offset or 0,
            message=f"file does not parse: {error.msg}",
            hint="fix the syntax error; unparsable files cannot be checked",
        )
    return ParsedModule(
        path=path,
        relpath=relpath,
        module=module_name_for(path),
        tree=tree,
        source=source,
    ), None


# -- suite driver ------------------------------------------------------------------


def default_passes() -> List[Pass]:
    from repro.staticcheck.determinism import DeterminismPass
    from repro.staticcheck.hygiene import HygienePass
    from repro.staticcheck.obsrules import ObsDisciplinePass
    from repro.staticcheck.purity import PurityPass

    return [DeterminismPass(), PurityPass(), ObsDisciplinePass(), HygienePass()]


def default_project_passes() -> List[ProjectPass]:
    from repro.staticcheck.dataflow import (
        ParallelReadinessPass,
        PortFsmPass,
        TaintPass,
    )

    return [TaintPass(), PortFsmPass(), ParallelReadinessPass()]


def all_rules(passes: Optional[Sequence[Pass]] = None,
              project_passes: Optional[Sequence[ProjectPass]] = None) -> List[Rule]:
    rules: List[Rule] = [
        Rule(
            id=PARSE_ERROR_RULE,
            title="file does not parse",
            invariant="every checked file is analyzable",
            paper="-",
            hint="fix the syntax error; unparsable files cannot be checked",
        )
    ]
    for pass_ in passes if passes is not None else default_passes():
        rules.extend(pass_.rules)
    projects = project_passes if project_passes is not None \
        else default_project_passes()
    for project_pass in projects:
        rules.extend(project_pass.rules)
    return sorted(rules, key=lambda r: r.id)


@dataclass
class SuiteResult:
    """Outcome of one suite run, before rendering."""

    findings: List[Finding]  # active: fail the run
    suppressed: List[Finding]  # matched a baseline entry
    stale_suppressions: List[Dict[str, str]]  # in-scope baseline entries that matched nothing
    files_scanned: int
    roots: List[str]
    #: machine-readable side outputs of project passes (e.g. the RS6xx
    #: shared-state inventory), keyed by artifact name
    artifacts: Dict[str, Any] = field(default_factory=dict)
    #: incremental-cache accounting for the report's cache line; None
    #: when no cache was offered to the run
    cache_stats: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        # stale suppressions fail the run: a baseline may only shrink,
        # and a dead entry means a fix landed without its cleanup
        return not self.findings and not self.stale_suppressions

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def check_module(module: ParsedModule,
                 passes: Optional[Sequence[Pass]] = None) -> List[Finding]:
    """All findings for one parsed module (test seam for fixture snippets)."""
    found: List[Finding] = []
    for pass_ in passes if passes is not None else default_passes():
        found.extend(pass_.check(module))
    return sorted(found, key=Finding.sort_key)


def check_source(source: str, module: str = "repro.fixture",
                 path: str = "src/repro/fixture.py",
                 passes: Optional[Sequence[Pass]] = None) -> List[Finding]:
    """Check an in-memory snippet as if it were the named module.

    The unit-test entry point: rule fixtures feed violating and clean
    snippets through here without touching the filesystem.
    """
    parsed = ParsedModule(
        path=Path(path),
        relpath=path,
        module=module,
        tree=ast.parse(source),
        source=source,
    )
    return check_module(parsed, passes=passes)


def parse_sources(sources: Dict[str, str]) -> List[ParsedModule]:
    """Parse an in-memory ``{module name: source}`` mapping.

    The multi-module analogue of :func:`check_source`'s single snippet:
    fixture projects for the dataflow passes are built from a dict
    without touching the filesystem.  Paths are synthesized as
    ``src/<module path>.py``.
    """
    parsed: List[ParsedModule] = []
    for module in sorted(sources):
        path = "src/" + module.replace(".", "/") + ".py"
        parsed.append(ParsedModule(
            path=Path(path),
            relpath=path,
            module=module,
            tree=ast.parse(sources[module]),
            source=sources[module],
        ))
    return parsed


def check_project_sources(
    sources: Dict[str, str],
    project_passes: Optional[Sequence[ProjectPass]] = None,
) -> Tuple[List[Finding], Dict[str, Any]]:
    """Run project passes over an in-memory fixture project.

    Returns ``(findings, artifacts)``, findings sorted.  The unit-test
    entry point for the RS5xx/RS6xx whole-program rules.
    """
    modules = parse_sources(sources)
    from repro.staticcheck.dataflow import build_project

    project = build_project(modules)
    passes = list(project_passes) if project_passes is not None \
        else default_project_passes()
    findings: List[Finding] = []
    artifacts: Dict[str, Any] = {}
    for project_pass in passes:
        pass_findings, pass_artifacts = project_pass.run(project)
        findings.extend(pass_findings)
        artifacts.update(pass_artifacts)
    return sorted(findings, key=Finding.sort_key), artifacts


def suppression_in_scope(rule: str, path: str, roots: Sequence[str],
                         prefixes: Sequence[str]) -> bool:
    """Whether a baseline entry could possibly match in this run.

    Stale detection (and :option:`--prune-baseline`) must only judge
    entries the run actually looked at: an ``src/`` suppression is not
    stale just because this invocation scanned ``tests/``, and an RS101
    entry is not stale under ``--select RS4``.
    """
    if prefixes and not (rule == PARSE_ERROR_RULE
                         or any(rule.startswith(p) for p in prefixes)):
        return False
    entry = path.replace("\\", "/").strip("/")
    for root in roots:
        r = str(root).replace("\\", "/").strip("/")
        if r in ("", "."):
            return True
        # suffix-tolerant containment, mirroring Baseline path matching:
        # a scan rooted at "/abs/src" still covers "src/repro/x.py"
        parts = r.split("/")
        for i in range(len(parts)):
            suffix = "/".join(parts[i:])
            if entry == suffix or entry.startswith(suffix + "/"):
                return True
    return False


def run_suite(
    paths: Sequence[Path],
    passes: Optional[Sequence[Pass]] = None,
    select: Optional[Iterable[str]] = None,
    baseline: Optional[Any] = None,  # Baseline; Any avoids a cycle
    project_passes: Optional[Sequence[ProjectPass]] = None,
    cache: Optional[Any] = None,  # ResultCache; Any avoids a cycle
) -> SuiteResult:
    """Run every per-file pass and every project pass under ``paths``.

    ``project_passes`` defaults to :func:`default_project_passes` when
    both pass lists are left at their defaults; a caller customizing
    ``passes`` (rule unit tests, the doctor's quick modes) gets no
    project analysis unless it asks.  The ``cache`` (a
    :class:`repro.staticcheck.cache.ResultCache`) is consulted only for
    all-default runs -- cached results are keyed by file content, so a
    custom pass list would read stale findings.
    """
    default_local = passes is None
    passes = list(passes) if passes is not None else default_passes()
    if project_passes is None:
        project_list: List[ProjectPass] = (
            default_project_passes() if default_local else []
        )
    else:
        project_list = list(project_passes)
    use_cache = (cache is not None and getattr(cache, "enabled", False)
                 and default_local and project_passes is None)
    prefixes = tuple(select) if select else ()
    files = discover([Path(p) for p in paths])

    sources: Dict[Path, str] = {}
    digests: List[Tuple[str, str]] = []  # (relpath, content digest) per file
    for path in files:
        text = path.read_text(encoding="utf-8", errors="replace")
        sources[path] = text
        digests.append((display_path(path), cache.digest(text) if use_cache else ""))

    findings: List[Finding] = []
    project_findings: List[Finding] = []
    artifacts: Dict[str, Any] = {}
    stats: Dict[str, Any] = {
        "enabled": bool(use_cache),
        "files": len(files),
        "file_hits": 0,
        "project_hit": False,
    }

    project_key = cache.project_key(digests) if use_cache else None
    cached_project = cache.get_project(project_key) if use_cache else None
    cached_files: Dict[Path, List[Finding]] = {}
    if use_cache:
        for (rel, digest), path in zip(digests, files):
            hit = cache.get_file(rel, digest)
            if hit is not None:
                cached_files[path] = hit

    if cached_project is not None and len(cached_files) == len(files):
        # fully warm: every per-file result and the whole-program result
        # are reusable, so nothing needs parsing at all
        stats["file_hits"] = len(files)
        stats["project_hit"] = True
        for path in files:
            findings.extend(cached_files[path])
        project_findings, artifacts = cached_project
    else:
        parsed_modules: List[ParsedModule] = []
        for (rel, digest), path in zip(digests, files):
            parsed, parse_error = parse_module(path, source=sources[path])
            hit = cached_files.get(path)
            if hit is not None:
                stats["file_hits"] += 1
                findings.extend(hit)
            else:
                found = [parse_error] if parse_error is not None \
                    else check_module(parsed, passes=passes)  # type: ignore[arg-type]
                if use_cache:
                    cache.put_file(rel, digest, found)
                findings.extend(found)
            if parsed is not None:
                parsed_modules.append(parsed)
        if cached_project is not None:
            stats["project_hit"] = True
            project_findings, artifacts = cached_project
        elif project_list:
            from repro.staticcheck.dataflow import build_project

            project = build_project(parsed_modules)
            for project_pass in project_list:
                pass_findings, pass_artifacts = project_pass.run(project)
                project_findings.extend(pass_findings)
                artifacts.update(pass_artifacts)
            if use_cache:
                cache.put_project(project_key, project_findings, artifacts)
        if use_cache:
            cache.save(digests)

    findings = findings + project_findings
    if prefixes:
        findings = [
            f for f in findings
            if f.rule == PARSE_ERROR_RULE or any(f.rule.startswith(p) for p in prefixes)
        ]
    findings.sort(key=Finding.sort_key)

    roots = [display_path(Path(p)) for p in paths]
    active: List[Finding] = []
    suppressed: List[Finding] = []
    stale: List[Dict[str, str]] = []
    if baseline is not None:
        for finding in findings:
            entry = baseline.match(finding)
            if entry is not None and finding.rule != PARSE_ERROR_RULE:
                finding.justification = entry.justification
                suppressed.append(finding)
            else:
                active.append(finding)
        stale = [
            {"rule": s.rule, "path": s.path, "justification": s.justification}
            for s in baseline.stale()
            if suppression_in_scope(s.rule, s.path, roots, prefixes)
        ]
    else:
        active = findings
    return SuiteResult(
        findings=active,
        suppressed=suppressed,
        stale_suppressions=stale,
        files_scanned=len(files),
        roots=roots,
        artifacts=artifacts,
        cache_stats=stats if cache is not None else None,
    )
