"""RS1xx: determinism rules.

The simulator's replayability contract (DESIGN.md, CI determinism job)
is that a run is a pure function of ``(topology, seed, schedule)``: all
time comes from the sim clock (`Simulator.now`), all randomness from
named :class:`repro.sim.rng.RngRegistry` streams, and all iteration that
feeds the event queue or an RNG draw happens in a deterministic order.
These rules catch the ways that contract silently breaks:

* **RS101** -- wall-clock reads (``time.time``, ``datetime.now``,
  ``time.monotonic``, ``perf_counter`` ...).  One of these feeding a
  timeout or a metric turns byte-for-byte replay into flake.
* **RS102** -- the process-global ``random`` stream or an unseeded
  ``random.Random()``.  Global draws entangle every component's
  sequence; the fix is a named registry stream.
* **RS103** -- OS entropy (``os.urandom``, ``uuid.uuid4``, ``secrets``,
  ``random.SystemRandom``): irreproducible by construction.
* **RS104** -- ordering by ``id()`` or ``hash()``: both vary across
  processes (``PYTHONHASHSEED``), so any order they induce does too.
* **RS105** -- iterating a ``set``/``frozenset``/``dict.keys()`` result
  and, inside the loop, scheduling events or drawing randomness.  Set
  order is hash order; sorting first restores determinism.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.staticcheck.framework import (
    Finding,
    ImportMap,
    ParsedModule,
    Pass,
    Rule,
    function_scopes,
)

#: canonical dotted names that read the host's clock
WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: canonical dotted names that read OS entropy
OS_ENTROPY_CALLS = frozenset({
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "random.SystemRandom",
})

#: method names whose call order is observable in the replay contract:
#: event scheduling (Simulator / TaskScheduler) and packet emission
SCHEDULE_SINKS = frozenset({
    "at", "after", "call_soon", "run_after", "run_soon", "every",
    "send", "send_packet", "transmit", "emit", "inject", "arm",
})

#: RNG draw methods: consuming a stream in unordered-iteration order
#: perturbs every later draw from the same stream
RNG_DRAW_SINKS = frozenset({
    "choice", "choices", "shuffle", "sample", "random", "randint",
    "randrange", "uniform", "gauss", "expovariate",
})


class DeterminismPass(Pass):
    name = "determinism"
    rules = (
        Rule(
            id="RS101",
            title="wall-clock read",
            invariant="simulated behavior is a function of (topology, seed, schedule) only",
            paper="§6.2 (timeouts are protocol constants, not host time)",
            hint="use the sim clock (Simulator.now / sim.after) instead of host time",
        ),
        Rule(
            id="RS102",
            title="global or unseeded random stream",
            invariant="every random draw comes from a named, seeded stream",
            paper="DESIGN.md determinism contract",
            hint="draw from a named sim.rng.RngRegistry stream (rng.stream('component'))",
        ),
        Rule(
            id="RS103",
            title="OS entropy source",
            invariant="runs are reproducible from the seed alone",
            paper="DESIGN.md determinism contract",
            hint="derive ids/nonces from an RngRegistry stream or a counter",
        ),
        Rule(
            id="RS104",
            title="ordering by id() or hash()",
            invariant="orderings are stable across processes and hash seeds",
            paper="§6.6.1 (UID-based total orders)",
            hint="order by a stable field (uid, name, port number), never id()/hash()",
        ),
        Rule(
            id="RS105",
            title="unordered iteration feeds the schedule or an RNG",
            invariant="event and draw order never depends on set/hash iteration order",
            paper="§6.2 (deterministic timer/packet order)",
            hint="iterate sorted(...) over the set, or keep a list/ordered dict",
        ),
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, imports, node)
        for scope in function_scopes(module.tree):
            yield from self._check_unordered_iteration(module, scope)

    # -- RS101/RS102/RS103/RS104 ---------------------------------------------------

    def _check_call(self, module: ParsedModule, imports: ImportMap,
                    node: ast.Call) -> Iterator[Finding]:
        resolved = imports.resolve(node.func)
        if resolved in WALL_CLOCK_CALLS:
            yield self.finding(
                "RS101", module, node,
                f"wall-clock read {resolved}() can leak host time into simulated behavior",
            )
        elif resolved in OS_ENTROPY_CALLS:
            yield self.finding(
                "RS103", module, node,
                f"{resolved}() draws OS entropy and can never replay",
            )
        elif resolved is not None and resolved.startswith("secrets."):
            yield self.finding(
                "RS103", module, node,
                f"{resolved}() draws OS entropy and can never replay",
            )
        elif resolved == "random.Random":
            if not node.args and not node.keywords:
                yield self.finding(
                    "RS102", module, node,
                    "random.Random() with no seed falls back to OS entropy",
                )
        elif resolved is not None and resolved.startswith("random.") and resolved != "random.seed":
            # any other function of the random *module* is the global stream
            yield self.finding(
                "RS102", module, node,
                f"{resolved}() draws from the process-global random stream",
            )
        elif resolved == "random.seed":
            yield self.finding(
                "RS102", module, node,
                "random.seed() mutates the process-global stream other code shares",
            )
        yield from self._check_sort_key(module, node)

    def _check_sort_key(self, module: ParsedModule,
                        node: ast.Call) -> Iterator[Finding]:
        is_order_call = (
            (isinstance(node.func, ast.Name) and node.func.id in ("sorted", "min", "max"))
            or (isinstance(node.func, ast.Attribute) and node.func.attr == "sort")
        )
        if not is_order_call:
            return
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            bad = self._id_hash_key(keyword.value)
            if bad is not None:
                yield self.finding(
                    "RS104", module, keyword.value,
                    f"ordering by {bad}() varies across processes and hash seeds",
                )

    @staticmethod
    def _id_hash_key(key: ast.AST) -> Optional[str]:
        if isinstance(key, ast.Name) and key.id in ("id", "hash"):
            return key.id
        if isinstance(key, ast.Lambda):
            for sub in ast.walk(key.body):
                if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
                        and sub.func.id in ("id", "hash")):
                    return sub.func.id
        return None

    # -- RS105 -----------------------------------------------------------------------

    def _check_unordered_iteration(self, module: ParsedModule,
                                   scope: ast.AST) -> Iterator[Finding]:
        set_names = self._set_typed_names(scope)
        body = scope.body if isinstance(
            scope, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)) else []
        for stmt in body:
            for loop in self._walk_own(stmt):
                if isinstance(loop, (ast.For, ast.AsyncFor)):
                    if not self._is_set_expr(loop.iter, set_names):
                        continue
                    sink = self._order_sensitive_sink(loop.body)
                    if sink is not None:
                        yield self.finding(
                            "RS105", module, loop,
                            f"iterating an unordered set/dict-view while calling "
                            f".{sink}() makes {('schedule' if sink in SCHEDULE_SINKS else 'draw')} "
                            f"order depend on hash order",
                        )
                elif isinstance(loop, ast.Call):
                    # rng.choice([p for p in some_set]): the sink consumes a
                    # sequence whose order is hash order
                    yield from self._check_sink_args(module, loop, set_names)

    def _check_sink_args(self, module: ParsedModule, call: ast.Call,
                         set_names: Set[str]) -> Iterator[Finding]:
        if not (isinstance(call.func, ast.Attribute)
                and call.func.attr in SCHEDULE_SINKS | RNG_DRAW_SINKS):
            return
        for arg in list(call.args) + [k.value for k in call.keywords]:
            for node in ast.walk(arg):
                if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                    gen = node.generators[0]
                    if self._is_set_expr(gen.iter, set_names):
                        yield self.finding(
                            "RS105", module, node,
                            f".{call.func.attr}() consumes a comprehension over an "
                            f"unordered set/dict-view; its order is hash order",
                        )
                elif self._is_set_expr(node, set_names) and node is arg:
                    yield self.finding(
                        "RS105", module, node,
                        f".{call.func.attr}() consumes a set/dict-view directly; "
                        f"its order is hash order",
                    )

    @staticmethod
    def _walk_own(stmt: ast.AST) -> Iterator[ast.AST]:
        """Walk a statement without descending into nested functions."""
        yield stmt
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            yield from DeterminismPass._walk_own(child)

    def _set_typed_names(self, scope: ast.AST) -> Set[str]:
        """Names bound (flow-insensitively) to set-typed values in scope."""
        names: Set[str] = set()
        body = getattr(scope, "body", [])
        for stmt in body:
            for node in self._walk_own(stmt):
                if isinstance(node, ast.Assign) and self._is_set_expr(node.value, names):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
                elif (isinstance(node, ast.AnnAssign) and node.value is not None
                        and isinstance(node.target, ast.Name)
                        and self._is_set_expr(node.value, names)):
                    names.add(node.target.id)
        return names

    def _is_set_expr(self, node: ast.AST, set_names: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return (self._is_set_expr(node.left, set_names)
                    or self._is_set_expr(node.right, set_names))
        return False

    @staticmethod
    def _order_sensitive_sink(body: List[ast.stmt]) -> Optional[str]:
        for stmt in body:
            for node in DeterminismPass._walk_own(stmt):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in SCHEDULE_SINKS | RNG_DRAW_SINKS):
                    return node.func.attr
        return None
