"""RS2xx: event-handler purity rules.

Everything in the hot-path packages runs inside the discrete-event loop:
a method on a :class:`Switch`, :class:`Autopilot`, or link unit *is* an
event handler (it is only ever entered from ``Simulator.run``).  Two
disciplines keep that loop honest:

* **RS201/RS202 -- no blocking I/O, no prints.**  A handler that opens a
  file, talks to a socket, or sleeps stalls simulated time against wall
  time; a stray ``print`` corrupts CLI/JSON output and costs formatting
  on the hot path.  CLI entry points (``__main__``), ``repro.analysis``,
  ``repro.experiments`` and ``repro.baselines`` are exempt -- presenting
  results is their job.  Artifact serializers that must touch the
  filesystem are grandfathered explicitly in the baseline file, each
  with a justification.
* **RS203 -- no cross-component writes.**  The paper's switches share no
  memory; coordination is packets on links (§4, §6.6).  A method that
  assigns into another component object (a parameter named/typed as a
  Switch/Host/Autopilot peer) bypasses the channel, the flight recorder,
  and flow control all at once.  Send a message instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.staticcheck.framework import (
    Finding,
    ImportMap,
    ParsedModule,
    Pass,
    Rule,
    annotation_name,
)

#: packages whose code runs inside the event loop
HOT_PACKAGES = (
    "repro.net",
    "repro.core",
    "repro.sim",
    "repro.host",
    "repro.obs",
    "repro.topology",
    "repro.chaos",
)

#: CLI / analysis / presentation packages: I/O and print are their job
EXEMPT_PACKAGES = (
    "repro.analysis",
    "repro.experiments",
    "repro.baselines",
    "repro.staticcheck",
)

#: canonical dotted prefixes that block or touch the outside world
BLOCKING_PREFIXES = (
    "socket.",
    "subprocess.",
    "urllib.",
    "http.",
    "requests.",
)

BLOCKING_CALLS = frozenset({
    "open",
    "input",
    "breakpoint",
    "time.sleep",
    "os.system",
    "os.popen",
    "socket.socket",
    "subprocess.run",
    "subprocess.Popen",
    "subprocess.check_output",
    "subprocess.check_call",
})

#: attribute calls that are file I/O regardless of receiver type
BLOCKING_ATTRS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})

#: parameter names that conventionally denote *another* component
PEER_PARAM_NAMES = frozenset({"other", "peer", "neighbor", "neighbour", "remote"})

#: annotations that denote a component object
COMPONENT_TYPES = frozenset({
    "Switch", "Host", "Autopilot", "LinkUnit", "SwitchPort", "HostInterface",
})

#: component packages where RS203 applies (sim/obs hold no peer objects)
COMPONENT_PACKAGES = ("repro.net", "repro.core", "repro.host")


class PurityPass(Pass):
    name = "purity"
    rules = (
        Rule(
            id="RS201",
            title="blocking I/O in an event handler",
            invariant="handlers advance simulated time only, never wall time",
            paper="§5.4 (Autopilot tasks run to completion)",
            hint="move I/O to a CLI/analysis module, or baseline a serializer with a justification",
        ),
        Rule(
            id="RS202",
            title="print() on the hot path",
            invariant="simulation output goes through repro.obs, not stdout",
            paper="§6.7 (logging goes to the merged event log)",
            hint="record through repro.obs (metrics/flight recorder) or log from the CLI layer",
        ),
        Rule(
            id="RS203",
            title="cross-component state write",
            invariant="components share no memory; coordination is messages on links",
            paper="§4 / §6.6 (switches coordinate by packets only)",
            hint="send a message via the channel instead of writing the peer's attributes",
        ),
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        if not module.in_package(*HOT_PACKAGES):
            return
        if module.is_main or module.in_package(*EXEMPT_PACKAGES):
            return
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_io(module, imports, node)
        if module.in_package(*COMPONENT_PACKAGES):
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    yield from self._check_cross_component(module, node)

    # -- RS201 / RS202 ----------------------------------------------------------------

    def _check_io(self, module: ParsedModule, imports: ImportMap,
                  node: ast.Call) -> Iterator[Finding]:
        resolved = imports.resolve(node.func)
        if resolved == "print":
            yield self.finding(
                "RS202", module, node,
                "print() in a hot-path module writes to stdout from inside the event loop",
            )
            return
        blocking = (
            resolved in BLOCKING_CALLS
            or (resolved is not None and resolved.startswith(BLOCKING_PREFIXES))
        )
        if not blocking and isinstance(node.func, ast.Attribute):
            if node.func.attr in BLOCKING_ATTRS:
                blocking = True
                resolved = f"*.{node.func.attr}"
        if blocking:
            yield self.finding(
                "RS201", module, node,
                f"{resolved}() blocks the event loop / touches the outside world",
            )

    # -- RS203 -------------------------------------------------------------------------

    def _check_cross_component(self, module: ParsedModule,
                               cls: ast.ClassDef) -> Iterator[Finding]:
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name.startswith("__"):
                continue  # constructors/dunders may wire components together
            peers = self._peer_params(method)
            if not peers:
                continue
            for stmt in ast.walk(method):
                target = self._write_target(stmt)
                if target is None:
                    continue
                root = self._attr_root(target)
                if root in peers:
                    yield self.finding(
                        "RS203", module, stmt,
                        f"{cls.name}.{method.name} writes attributes of peer "
                        f"component {root!r} directly",
                    )

    @staticmethod
    def _peer_params(method: ast.FunctionDef) -> Set[str]:
        peers: Set[str] = set()
        args = list(method.args.posonlyargs) + list(method.args.args) + \
            list(method.args.kwonlyargs)
        for index, arg in enumerate(args):
            if index == 0 and arg.arg in ("self", "cls"):
                continue
            type_name = annotation_name(arg.annotation)
            if arg.arg in PEER_PARAM_NAMES or type_name in COMPONENT_TYPES:
                peers.add(arg.arg)
        return peers

    @staticmethod
    def _write_target(stmt: ast.AST) -> Optional[ast.Attribute]:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Attribute):
                    return target
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(stmt.target, ast.Attribute):
                return stmt.target
        return None

    @staticmethod
    def _attr_root(node: ast.Attribute) -> Optional[str]:
        value: ast.AST = node
        while isinstance(value, ast.Attribute):
            value = value.value
        if isinstance(value, ast.Name):
            return value.id
        return None
