"""RS3xx: observability discipline rules.

The telemetry layer (``repro.obs``) promises two things the rest of the
repo leans on: metric identity is *static* (a fixed set of names with
bounded label cardinality, so dashboards and the ``repro.bench/1``
schema stay stable), and a *disabled* instrument costs one attribute
load plus a ``None`` test -- no allocation, no formatting.  These rules
keep call sites inside that contract:

* **RS301** -- metric/collector names passed to the registry must be
  string literals.  A computed name mints unbounded series and breaks
  the exported-document schema.
* **RS302** -- label *values* must not be f-strings / ``%``- or
  ``.format``-built strings.  Labels fan out one series per distinct
  value; formatted strings are how cardinality explodes (the registry's
  runtime cap then silently drops series).
* **RS303** -- flight-recorder hooks must follow the established
  pattern: load the recorder into a local once, test it against
  ``None``, then record.  Calling through ``x.recorder.record(...)``
  either double-loads the attribute on the hot path or, unguarded,
  crashes when the recorder is off.
* **RS304** -- time-series sampler discipline: collectors registered via
  ``add_collector`` must use literal series names (same schema-stability
  argument as RS301), sampler ring capacities must be literal ints (a
  computed capacity defeats the "bounded everything" audit), and a
  collector callback must not ``.append`` to anything -- collectors are
  pure reads sampled every tick; an appending callback is an unbounded
  buffer growing at the sampling rate.
* **RS305** -- in-band telemetry stamps (``record_hop`` and friends on
  ``sim.inband``) must follow the same one-load+None-test pattern as
  RS303.  The stamp sites live on the per-packet hot path in
  ``switch``/``linkunit``/``fifo``/``host``; a chained or unguarded call
  silently regresses the disabled fast path (or crashes when the layer
  is off).
* **RS306** -- control-plane accounting hooks (``record_send`` /
  ``record_retx`` / ``record_srp`` on ``sim.control``) must follow the
  same one-load+None-test pattern.  The hooks sit on every control
  message send in ``autopilot``/``reconfig``/``srp``; an unguarded call
  crashes every network built without ``control=True``.
* **RS307** -- sweep collectors must use literal metric names:
  ``point.set_metric(...)`` takes its series name as a string literal so
  the ``repro.obs.sweep/1`` metric set stays a static, greppable
  vocabulary (same schema-stability argument as RS301/RS304).
* **RS308** -- traffic-engine stamps (``record_delivery`` /
  ``record_drop`` / ``note_fault`` on ``sim.traffic``) must follow the
  same one-load+None-test pattern as RS305.  The stamp sites share the
  per-packet hot path with the in-band layer; an unguarded call crashes
  every network built without ``traffic=...`` and a chained call
  regresses the disabled fast path.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.staticcheck.framework import (
    Finding,
    ParsedModule,
    Pass,
    Rule,
    dotted_name,
    function_scopes,
)

#: registry factory / registration methods whose first argument is a
#: metric name and whose keywords are labels
METRIC_METHODS = frozenset({"counter", "gauge", "histogram", "highwater", "collect"})

#: keywords of those methods that are configuration, not labels
NON_LABEL_KWARGS = frozenset({"buckets"})

#: receivers that look like a metrics registry ("self.sim.metrics", "registry")
REGISTRY_HINTS = ("metrics", "registry")

#: modules that implement the instruments themselves (their internals
#: necessarily pass names around as variables)
IMPLEMENTATION_MODULES = frozenset({
    "repro.obs.registry",
    "repro.obs.flight",
    "repro.obs.spans",
    "repro.obs.timeseries",
    "repro.obs.inband",
    "repro.obs.control",
    "repro.obs.sweep",
    "repro.traffic.engine",
})

#: receivers that look like a time-series sampler
SAMPLER_HINTS = ("sampler",)

#: sampler configuration keywords that must stay literal ints so the
#: "bounded everything" promise is auditable statically
CAPACITY_KWARGS = frozenset({"capacity", "mark_capacity", "max_series"})

#: constructors whose capacity keywords RS304 audits
SAMPLER_CTORS = frozenset({"TimeSeriesConfig", "SeriesRing"})

#: maximum labels per instrument call: more is a cardinality smell
MAX_LABELS = 4

#: attribute names holding the flight recorder (RS303)
RECORDER_ATTRS = frozenset({"recorder", "flight"})

#: methods RS303 audits on a recorder
RECORDER_METHODS = frozenset({"record"})

#: attribute names holding the in-band telemetry layer (RS305)
INBAND_ATTRS = frozenset({"inband"})

#: hot-path stamp methods RS305 audits on the in-band layer
INBAND_METHODS = frozenset({
    "record_hop",
    "record_drop",
    "record_queue_drop",
    "record_delivery",
})

#: attribute names holding the control-plane accounting layer (RS306)
CONTROL_ATTRS = frozenset({"control"})

#: hot-path hooks RS306 audits on the accounting layer
CONTROL_METHODS = frozenset({"record_send", "record_retx", "record_srp"})

#: receivers that look like a sweep point / harness (RS307)
SWEEP_HINTS = ("point", "sweep")

#: attribute names holding the traffic engine (RS308)
TRAFFIC_ATTRS = frozenset({"traffic"})

#: hot-path stamp methods RS308 audits on the traffic engine
TRAFFIC_METHODS = frozenset({"record_delivery", "record_drop", "note_fault"})


class ObsDisciplinePass(Pass):
    name = "obs-discipline"
    rules = (
        Rule(
            id="RS301",
            title="metric name is not a string literal",
            invariant="the metric namespace is a static, enumerable set",
            paper="§6.7 / repro.bench/1 schema stability",
            hint="pass a literal name and put the variable part in a label",
        ),
        Rule(
            id="RS302",
            title="formatted string as a label value",
            invariant="label cardinality is bounded by the topology, not by data",
            paper="repro.obs registry cap (ISSUE 1)",
            hint="use the raw value (name, port number, cause enum) as the label",
        ),
        Rule(
            id="RS303",
            title="flight-recorder call bypasses the None-test pattern",
            invariant="a disabled recorder costs one attribute load + None test",
            paper="DESIGN.md flight-recorder disabled path",
            hint="load it once (rec = <owner>.recorder), test 'if rec is not None', then record",
        ),
        Rule(
            id="RS304",
            title="sampler collector breaks the bounded-ring discipline",
            invariant="every sampler buffer is bounded and statically auditable",
            paper="repro.obs.timeseries ring discipline (§6.7)",
            hint="use a literal series name, a literal ring capacity, and a "
                 "read-only collector callback (no .append)",
        ),
        Rule(
            id="RS305",
            title="in-band stamp bypasses the None-test pattern",
            invariant="a disabled in-band layer costs one attribute load + None test",
            paper="repro.obs.inband disabled fast path (§6.7 data-plane SLO)",
            hint="load it once (ib = <owner>.inband), test 'if ib is not None', "
                 "then stamp",
        ),
        Rule(
            id="RS306",
            title="control-accounting hook bypasses the None-test pattern",
            invariant="disabled control accounting costs one attribute load + None test",
            paper="repro.obs.control disabled fast path (§6 control-plane cost)",
            hint="load it once (acct = <owner>.control), test 'if acct is not "
                 "None', then record",
        ),
        Rule(
            id="RS307",
            title="sweep metric name is not a string literal",
            invariant="the repro.obs.sweep/1 metric set is static and greppable",
            paper="repro.obs.sweep/1 schema stability",
            hint="pass a literal SWEEP_METRICS name to set_metric()",
        ),
        Rule(
            id="RS308",
            title="traffic-engine stamp bypasses the None-test pattern",
            invariant="a disabled traffic engine costs one attribute load + None test",
            paper="repro.traffic disabled fast path (§6.7 blackout cost)",
            hint="load it once (tr = <owner>.traffic), test 'if tr is not "
                 "None', then stamp",
        ),
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        if module.module in IMPLEMENTATION_MODULES:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_metric_call(module, node)
                yield from self._check_sampler_call(module, node)
                yield from self._check_sweep_call(module, node)
        for scope in function_scopes(module.tree):
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_guarded_calls(
                    module, scope, RECORDER_ATTRS, RECORDER_METHODS,
                    "RS303", "recorder",
                )
                yield from self._check_guarded_calls(
                    module, scope, INBAND_ATTRS, INBAND_METHODS,
                    "RS305", "in-band layer",
                )
                yield from self._check_guarded_calls(
                    module, scope, CONTROL_ATTRS, CONTROL_METHODS,
                    "RS306", "control accounting",
                )
                yield from self._check_guarded_calls(
                    module, scope, TRAFFIC_ATTRS, TRAFFIC_METHODS,
                    "RS308", "traffic engine",
                )

    # -- RS301 / RS302 -----------------------------------------------------------------

    def _check_metric_call(self, module: ParsedModule,
                           node: ast.Call) -> Iterator[Finding]:
        if not isinstance(node.func, ast.Attribute):
            return
        if node.func.attr not in METRIC_METHODS:
            return
        receiver = dotted_name(node.func.value) or ""
        tail = receiver.rsplit(".", 1)[-1]
        if not any(hint in tail for hint in REGISTRY_HINTS):
            return
        if node.args:
            name_arg = node.args[0]
            if not (isinstance(name_arg, ast.Constant)
                    and isinstance(name_arg.value, str)):
                yield self.finding(
                    "RS301", module, name_arg,
                    f"{receiver}.{node.func.attr}() metric name is computed, "
                    f"not a string literal",
                )
        labels = [k for k in node.keywords
                  if k.arg is not None and k.arg not in NON_LABEL_KWARGS]
        if len(labels) > MAX_LABELS:
            yield self.finding(
                "RS302", module, node,
                f"{len(labels)} labels on one instrument (max {MAX_LABELS}): "
                f"cardinality is a product over label values",
            )
        for keyword in labels:
            if self._is_formatted_string(keyword.value):
                yield self.finding(
                    "RS302", module, keyword.value,
                    f"label {keyword.arg!r} is a formatted string; every distinct "
                    f"value mints a new series",
                )

    @staticmethod
    def _is_formatted_string(node: ast.AST) -> bool:
        if isinstance(node, ast.JoinedStr):
            return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Mod)):
            return any(
                isinstance(side, (ast.Constant, ast.JoinedStr))
                and (not isinstance(side, ast.Constant)
                     or isinstance(side.value, str))
                for side in (node.left, node.right)
            )
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                and node.func.attr == "format"):
            return True
        return False

    # -- RS304 -------------------------------------------------------------------------

    def _check_sampler_call(self, module: ParsedModule,
                            node: ast.Call) -> Iterator[Finding]:
        # literal capacities on the sampler's own configuration objects
        ctor = None
        if isinstance(node.func, ast.Name):
            ctor = node.func.id
        elif isinstance(node.func, ast.Attribute):
            ctor = node.func.attr
        if ctor in SAMPLER_CTORS:
            for keyword in node.keywords:
                if keyword.arg in CAPACITY_KWARGS and not (
                    isinstance(keyword.value, ast.Constant)
                    and isinstance(keyword.value.value, int)
                    and not isinstance(keyword.value.value, bool)
                ):
                    yield self.finding(
                        "RS304", module, keyword.value,
                        f"{ctor}({keyword.arg}=...) is not a literal int: "
                        f"ring bounds must be auditable without running the code",
                    )

        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_collector"):
            return
        receiver = dotted_name(node.func.value) or ""
        tail = receiver.rsplit(".", 1)[-1]
        if not any(hint in tail for hint in SAMPLER_HINTS):
            return
        if node.args:
            name_arg = node.args[0]
            if not (isinstance(name_arg, ast.Constant)
                    and isinstance(name_arg.value, str)):
                yield self.finding(
                    "RS304", module, name_arg,
                    f"{receiver}.add_collector() series name is computed, "
                    f"not a string literal",
                )
        for value in list(node.args[1:]) + [k.value for k in node.keywords]:
            if not isinstance(value, ast.Lambda):
                continue
            for inner in ast.walk(value.body):
                if (isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Attribute)
                        and inner.func.attr == "append"):
                    yield self.finding(
                        "RS304", module, inner,
                        "collector callback calls .append(): collectors are "
                        "read-only samples, not accumulators -- this grows "
                        "without bound at the sampling rate",
                    )

    # -- RS307 -------------------------------------------------------------------------

    def _check_sweep_call(self, module: ParsedModule,
                          node: ast.Call) -> Iterator[Finding]:
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr == "set_metric"):
            return
        receiver = dotted_name(node.func.value) or ""
        tail = receiver.rsplit(".", 1)[-1]
        if not any(hint in tail for hint in SWEEP_HINTS):
            return
        if node.args:
            name_arg = node.args[0]
            if not (isinstance(name_arg, ast.Constant)
                    and isinstance(name_arg.value, str)):
                yield self.finding(
                    "RS307", module, name_arg,
                    f"{receiver}.set_metric() metric name is computed, "
                    f"not a string literal",
                )

    # -- RS303 / RS305 / RS306 ---------------------------------------------------------

    def _check_guarded_calls(self, module: ParsedModule,
                             func: ast.FunctionDef,
                             attrs: frozenset, methods: frozenset,
                             rule_id: str, noun: str) -> Iterator[Finding]:
        instrument_locals = self._instrument_locals(func, attrs)
        yield from self._scan_guarded(
            module, func.body, instrument_locals, set(),
            attrs, methods, rule_id, noun,
        )

    @staticmethod
    def _instrument_locals(func: ast.FunctionDef, attrs: frozenset) -> Set[str]:
        """Local names assigned from one of ``attrs`` attribute chains."""
        names: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Attribute):
                if node.value.attr in attrs:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
        return names

    def _scan_guarded(self, module: ParsedModule, body: List[ast.stmt],
                      instrument_locals: Set[str], guarded: Set[str],
                      attrs: frozenset, methods: frozenset,
                      rule_id: str, noun: str) -> Iterator[Finding]:
        guarded = set(guarded)
        for stmt in body:
            if isinstance(stmt, ast.If):
                newly = self._names_guarded_by(stmt.test)
                yield from self._scan_guarded(
                    module, stmt.body, instrument_locals, guarded | newly,
                    attrs, methods, rule_id, noun)
                yield from self._scan_guarded(
                    module, stmt.orelse, instrument_locals, guarded,
                    attrs, methods, rule_id, noun)
                # 'if rec is None: return' guards the rest of this body
                if stmt.body and isinstance(
                        stmt.body[-1], (ast.Return, ast.Continue, ast.Break, ast.Raise)):
                    guarded |= self._names_refuted_by(stmt.test)
                continue
            if isinstance(stmt, ast.Assert):
                guarded |= self._names_guarded_by(stmt.test)
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                yield from self._scan_guarded(
                    module, stmt.body + stmt.orelse, instrument_locals, guarded,
                    attrs, methods, rule_id, noun)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                yield from self._scan_guarded(
                    module, stmt.body, instrument_locals, guarded,
                    attrs, methods, rule_id, noun)
                continue
            if isinstance(stmt, ast.Try):
                inner = stmt.body + stmt.orelse + stmt.finalbody
                for handler in stmt.handlers:
                    inner = inner + handler.body
                yield from self._scan_guarded(
                    module, inner, instrument_locals, guarded,
                    attrs, methods, rule_id, noun)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # handled as their own scope
            for node in ast.walk(stmt):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in methods):
                    continue
                receiver = node.func.value
                if (isinstance(receiver, ast.Attribute)
                        and receiver.attr in attrs):
                    yield self.finding(
                        rule_id, module, node,
                        f"chained '<owner>.{receiver.attr}.{node.func.attr}(...)' "
                        f"re-loads the attribute and crashes when the {noun} "
                        f"is detached",
                    )
                elif (isinstance(receiver, ast.Name)
                        and receiver.id in instrument_locals
                        and receiver.id not in guarded):
                    yield self.finding(
                        rule_id, module, node,
                        f"{noun} local {receiver.id!r} is used without an "
                        f"'is not None' guard",
                    )

    @staticmethod
    def _names_guarded_by(test: ast.AST) -> Set[str]:
        """Names proven non-None by an if-test (x, 'x is not None', and-chains)."""
        names: Set[str] = set()
        queue: List[ast.AST] = [test]
        while queue:
            node = queue.pop()
            if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
                queue.extend(node.values)
            elif isinstance(node, ast.Name):
                names.add(node.id)
            elif (isinstance(node, ast.Compare) and len(node.ops) == 1
                    and isinstance(node.ops[0], ast.IsNot)
                    and isinstance(node.left, ast.Name)
                    and isinstance(node.comparators[0], ast.Constant)
                    and node.comparators[0].value is None):
                names.add(node.left.id)
        return names

    @staticmethod
    def _names_refuted_by(test: ast.AST) -> Set[str]:
        """Names that are None when the test holds ('x is None', 'not x')."""
        names: Set[str] = set()
        if (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Is)
                and isinstance(test.left, ast.Name)
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None):
            names.add(test.left.id)
        elif (isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)
                and isinstance(test.operand, ast.Name)):
            names.add(test.operand.id)
        return names
