"""CLI: ``python -m repro.staticcheck [paths...]``.

Exit codes: 0 clean (baselined findings allowed), 1 active findings or
parse errors, 2 usage/configuration errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.staticcheck.baseline import (
    Baseline,
    BaselineError,
    find_default_baseline,
)
from repro.staticcheck.framework import all_rules, run_suite
from repro.staticcheck.report import build_report, render_text, write_report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="AST-based determinism & protocol-discipline linter",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--json", metavar="FILE",
        help="write the repro.staticcheck/1 report document here",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="suppression file (default: nearest staticcheck-baseline.json)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline: report every finding",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids or prefixes (e.g. RS1,RS203)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print only the verdict line",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="also list baselined findings with their justifications",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.title}")
            print(f"       protects: {rule.invariant}")
            print(f"       motivated by: {rule.paper}")
            print(f"       fix: {rule.hint}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    baseline = None
    if not args.no_baseline:
        baseline_path = (
            Path(args.baseline) if args.baseline else find_default_baseline()
        )
        if args.baseline and not baseline_path.is_file():
            print(f"error: baseline not found: {baseline_path}", file=sys.stderr)
            return 2
        if baseline_path is not None:
            try:
                baseline = Baseline.load(baseline_path)
            except BaselineError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2

    select = None
    if args.select:
        select = [s.strip() for s in args.select.split(",") if s.strip()]

    result = run_suite([Path(p) for p in args.paths], select=select,
                       baseline=baseline)
    if args.json:
        write_report(build_report(result), args.json)

    text = render_text(result, verbose=args.verbose)
    if args.quiet:
        text = text.splitlines()[-1]
    print(text)
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
