"""CLI: ``python -m repro.staticcheck [paths...]``.

Exit codes: 0 clean (baselined findings allowed), 1 active findings,
parse errors, or stale baseline entries, 2 usage/configuration errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.staticcheck.baseline import (
    Baseline,
    BaselineError,
    find_default_baseline,
)
from repro.staticcheck.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.staticcheck.framework import all_rules, run_suite
from repro.staticcheck.report import (
    build_report,
    render_github,
    render_text,
    write_report,
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="AST-based determinism & protocol-discipline linter",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--json", metavar="FILE",
        help="write the repro.staticcheck/1 report document here",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="suppression file (default: nearest staticcheck-baseline.json)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline: report every finding",
    )
    parser.add_argument(
        "--prune-baseline", action="store_true",
        help="rewrite the baseline file without in-scope stale entries",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids or prefixes (e.g. RS1,RS203)",
    )
    parser.add_argument(
        "--format", choices=("text", "github"), default="text",
        help="output format: terminal text or GitHub ::error annotations",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the incremental result cache",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
        help=f"incremental cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--shared-state", metavar="FILE",
        help="write the RS6xx shared-state inventory (JSON) here",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print only the verdict line",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="also list baselined findings with their justifications",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.title}")
            print(f"       protects: {rule.invariant}")
            print(f"       motivated by: {rule.paper}")
            print(f"       fix: {rule.hint}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    baseline = None
    baseline_path: Optional[Path] = None
    if not args.no_baseline:
        if args.baseline:
            baseline_path = Path(args.baseline)
            if not baseline_path.is_file():
                print(f"error: baseline not found: {baseline_path}",
                      file=sys.stderr)
                return 2
        else:
            baseline_path = find_default_baseline()
        if baseline_path is not None:
            try:
                baseline = Baseline.load(baseline_path)
            except BaselineError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2

    select = None
    if args.select:
        select = [s.strip() for s in args.select.split(",") if s.strip()]

    cache = ResultCache(
        root=args.cache_dir,
        enabled=not args.no_cache,
        scope=[str(p) for p in args.paths],
    )
    result = run_suite([Path(p) for p in args.paths], select=select,
                       baseline=baseline, cache=cache)

    pruned = 0
    if args.prune_baseline and result.stale_suppressions \
            and baseline_path is not None:
        pruned = _prune_baseline(baseline_path, result.stale_suppressions)
        result.stale_suppressions = []

    if args.json:
        write_report(build_report(result), args.json)
    if args.shared_state:
        inventory = result.artifacts.get("shared_state", [])
        with open(args.shared_state, "w", encoding="utf-8") as fh:
            json.dump({"schema": "repro.staticcheck-shared-state/1",
                       "shared_state": inventory}, fh, indent=2, sort_keys=True)
            fh.write("\n")

    if args.format == "github":
        text = render_github(result)
    else:
        text = render_text(result, verbose=args.verbose)
        if args.quiet:
            text = text.splitlines()[-1]
    if pruned:
        entries = "entry" if pruned == 1 else "entries"
        text = f"pruned {pruned} stale baseline {entries} from " \
               f"{baseline_path}\n" + text
    print(text)
    return 0 if result.ok else 1


def _prune_baseline(path: Path, stale: List[Dict[str, str]]) -> int:
    """Rewrite the baseline file minus the given stale entries."""
    doc = json.loads(path.read_text(encoding="utf-8"))
    dead = {(s["rule"], s["path"]) for s in stale}
    entries = doc.get("suppressions", [])
    kept = [
        entry for entry in entries
        if (entry.get("rule"),
            str(entry.get("path", "")).replace("\\", "/")) not in dead
    ]
    doc["suppressions"] = kept
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return len(entries) - len(kept)


if __name__ == "__main__":
    sys.exit(main())
