"""Topology recovery over SRP (section 6.7).

The paper built "a protocol to recover the physical network topology and
the current spanning tree" on top of the source-routed protocol --
exactly what an operator needs when the configured state is suspect,
because SRP works even while routing is down.  :class:`NetworkExplorer`
crawls outward from one switch, one hop of source route at a time, and
reconstructs the topology and tree entirely from the per-switch answers
(never consulting the simulation's global state).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.messages import SrpMessage
from repro.core.topo import NetLink, PortRef, SwitchRecord, TopologyMap
from repro.core.treepos import TreePosition
from repro.types import Uid


@dataclass
class ExplorationResult:
    """What the crawl discovered."""

    topology: TopologyMap
    #: source route (outbound port lists) to each discovered switch
    routes: Dict[Uid, Tuple[int, ...]] = field(default_factory=dict)
    queries: int = 0

    def spanning_tree_edges(self) -> Set[Tuple[Uid, Uid]]:
        return {
            (record.parent_uid, uid)
            for uid, record in self.topology.switches.items()
            if record.parent_uid is not None
        }


class NetworkExplorer:
    """Crawls a live network via SRP from one switch's control processor."""

    def __init__(self, network, origin: int = 0, step_ns: int = 200_000_000) -> None:
        self.network = network
        self.origin = origin
        self.step_ns = step_ns

    def _query(self, route: Tuple[int, ...]) -> Optional[dict]:
        """Issue one get-neighbors query and run the simulation until the
        reply returns (or a timeout passes)."""
        replies: List[SrpMessage] = []
        ap = self.network.autopilots[self.origin]
        ap.srp.handle(
            0,
            SrpMessage(
                epoch=0,
                sender_uid=ap.uid,
                route=route,
                command="get-neighbors",
                payload=replies.append,
            ),
        )
        deadline = self.network.sim.now + self.step_ns
        while not replies and self.network.sim.now < deadline:
            self.network.sim.run_for(self.step_ns // 20)
        return replies[0].response if replies else None

    def explore(self) -> ExplorationResult:
        """Breadth-first crawl; returns the recovered topology."""
        origin_info = self._query(())
        if origin_info is None:
            raise RuntimeError("origin switch did not answer SRP")

        switches: Dict[Uid, dict] = {origin_info["uid"]: origin_info}
        routes: Dict[Uid, Tuple[int, ...]] = {origin_info["uid"]: ()}
        queries = 1
        frontier = deque([origin_info["uid"]])
        links: Set[NetLink] = set()

        while frontier:
            uid = frontier.popleft()
            info = switches[uid]
            for port, (far_uid, far_port) in sorted(info["neighbors"].items()):
                links.add(NetLink(PortRef(uid, port), PortRef(far_uid, far_port)))
                if far_uid in switches:
                    continue
                route = routes[uid] + (port,)
                reply = self._query(route)
                queries += 1
                if reply is None:
                    continue  # unreachable right now; a later route may work
                switches[reply["uid"]] = reply
                routes[reply["uid"]] = route
                frontier.append(reply["uid"])

        topology = TopologyMap(root=self._root_of(switches), links=links)
        for uid, info in switches.items():
            position: TreePosition = info["position"]
            topology.switches[uid] = SwitchRecord(
                uid=uid,
                level=position.level,
                parent_port=position.parent_port,
                parent_uid=position.parent_uid,
                host_ports=frozenset(info["host_ports"]),
                proposed_number=info["number"],
            )
            topology.numbers[uid] = info["number"]
        return ExplorationResult(topology=topology, routes=routes, queries=queries)

    @staticmethod
    def _root_of(switches: Dict[Uid, dict]) -> Uid:
        roots = {info["position"].root for info in switches.values()}
        if len(roots) != 1:
            raise RuntimeError(f"switches disagree on the root: {roots}")
        return roots.pop()
