"""Topology performance characteristics (section 7 future work).

"The number of switches and the pattern of the switch-to-switch and
host-to-switch links determine network capacity, reliability, and cost"
-- and the paper closes wanting to "understand the performance
characteristics of different topologies and different routing
algorithms."  These analyzers quantify a configuration:

* legal-route path-length statistics (latency proxy),
* expected per-link load under uniform all-pairs traffic with equal
  splitting over the minimum-hop legal routes (the multipath tables
  actually built), whose maximum is the **bottleneck load**: the inverse
  of the uniform-traffic capacity per flow,
* root-congestion factor: how much of all traffic crosses the spanning
  tree root's links (up*/down* concentrates load near the root; one of
  its known costs, visible against tree-only routing and across
  topologies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.routing import UP, legal_distances, next_hop_ports
from repro.core.topo import NetLink, PortRef, TopologyMap
from repro.types import Uid


@dataclass
class CapacityReport:
    """Uniform-traffic characteristics of one routed configuration."""

    n_switches: int
    n_links: int
    mean_path_length: float
    max_path_length: int
    #: expected traversals per link for one unit of traffic between every
    #: ordered switch pair
    link_loads: Dict[NetLink, float]
    #: the most loaded link's share (bottleneck)
    bottleneck_load: float
    #: fraction of all link traversals that use a root-attached link
    root_share: float

    @property
    def capacity_per_flow(self) -> float:
        """Sustainable per-pair injection rate (in link-bandwidth units)
        under uniform traffic: the bottleneck link saturates first."""
        return 1.0 / self.bottleneck_load if self.bottleneck_load else float("inf")


def analyze_capacity(
    topology: TopologyMap,
    next_hops: Optional[Callable[[Uid, int, Uid], Tuple[int, ...]]] = None,
) -> CapacityReport:
    """Characterize the routed topology under uniform all-pairs traffic.

    ``next_hops(uid, phase, dest)`` overrides the route choice (defaults
    to the up*/down* minimum-hop multipath the tables implement); flow is
    split equally over the alternatives, mirroring the hardware's
    pick-any-free-port behaviour in the long-run average.
    """
    uids = sorted(topology.switches)
    link_loads: Dict[NetLink, float] = {link: 0.0 for link in topology.links}
    total_length = 0.0
    max_length = 0
    pairs = 0

    for dest in uids:
        dist = legal_distances(topology, dest)
        for src in uids:
            if src == dest:
                continue
            pairs += 1
            length = dist[(src, UP)]
            total_length += length
            max_length = max(max_length, int(length))
            # push one unit of flow from src toward dest, splitting
            # equally at every branch point
            flows: Dict[Tuple[Uid, int], float] = {(src, UP): 1.0}
            guard = 0
            while flows and guard < 10 * len(uids):
                guard += 1
                next_flows: Dict[Tuple[Uid, int], float] = {}
                for (uid, phase), amount in flows.items():
                    if uid == dest:
                        continue
                    if next_hops is not None:
                        ports = next_hops(uid, phase, dest)
                    else:
                        ports = next_hop_ports(topology, uid, phase, dest, dist)
                    if not ports:
                        continue
                    share = amount / len(ports)
                    neighbors = topology.neighbors(uid)
                    for port in ports:
                        far = neighbors[port]
                        link = NetLink(PortRef(uid, port), far)
                        link_loads[link] = link_loads.get(link, 0.0) + share
                        from repro.core.routing import link_direction

                        up_end = link_direction(topology, link)
                        next_phase = (
                            UP if (up_end.uid, up_end.port) == (far.uid, far.port) else 1
                        )
                        key = (far.uid, next_phase if phase == UP else 1)
                        next_flows[key] = next_flows.get(key, 0.0) + share
                flows = next_flows

    traversals = sum(link_loads.values())
    root_links = {
        link for link in topology.links
        if topology.root in (link.a.uid, link.b.uid)
    }
    root_traffic = sum(link_loads[ln] for ln in root_links if ln in link_loads)

    return CapacityReport(
        n_switches=len(uids),
        n_links=len(topology.links),
        mean_path_length=total_length / pairs if pairs else 0.0,
        max_path_length=max_length,
        link_loads=link_loads,
        bottleneck_load=max(link_loads.values()) / pairs if link_loads and pairs else 0.0,
        root_share=root_traffic / traversals if traversals else 0.0,
    )
