"""A network health report: the §7 "monitoring and management tools".

`diagnose` sweeps a live installation the way an operator's management
station would -- over SRP, which works even during reconfiguration -- and
cross-checks what the switches believe: every switch configured, on the
same epoch, holding the same topology and numbering; ports in expected
states; skeptics not holding links out of service; looped or reflecting
cables; congestion residue (FIFO backlogs, blocked transmitters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.analysis.explorer import NetworkExplorer
from repro.core.portstate import PortState


@dataclass
class Finding:
    """One observation, ranked by severity."""

    severity: str  # "info" | "warning" | "critical"
    where: str
    what: str

    def __str__(self) -> str:
        return f"[{self.severity:<8}] {self.where}: {self.what}"


@dataclass
class HealthReport:
    """The doctor's verdict: findings plus sweep context."""

    findings: List[Finding] = field(default_factory=list)
    switches_seen: int = 0
    epoch: int = -1

    @property
    def healthy(self) -> bool:
        return not any(f.severity == "critical" for f in self.findings)

    def criticals(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "critical"]

    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def render(self) -> str:
        lines = [
            f"health report: {self.switches_seen} switches, epoch {self.epoch}, "
            f"{'HEALTHY' if self.healthy else 'PROBLEMS FOUND'}"
        ]
        lines.extend(str(f) for f in self.findings)
        return "\n".join(lines)


def diagnose(network, origin: int = 0) -> HealthReport:
    """Sweep the network from one switch and report anomalies."""
    report = HealthReport()
    live = network.alive_autopilots()
    report.switches_seen = len(live)

    # 1. agreement: epoch, configuration, topology, numbering
    epochs = {ap.epoch for ap in live}
    report.epoch = max(epochs) if epochs else -1
    if len(epochs) > 1:
        report.findings.append(
            Finding("critical", "network", f"switches disagree on the epoch: {sorted(epochs)}")
        )
    for ap in live:
        if not (ap.configured and ap.engine.table_loaded):
            report.findings.append(
                Finding("critical", ap.switch.name, "not configured (reconfiguration in progress or stuck)")
            )
    views = {
        frozenset(ap.engine.topology.switches)
        for ap in live
        if ap.engine.topology is not None
    }
    if len(views) > 1:
        report.findings.append(
            Finding(
                "warning", "network",
                f"{len(views)} distinct topology views (partition or churn)",
            )
        )

    # 2. SRP sweep: does the recovered picture match the configured one?
    try:
        recovered = NetworkExplorer(network, origin=origin).explore()
        configured = live[origin].engine.topology if origin < len(live) else None
        if configured is not None:
            missing = set(configured.switches) - set(recovered.topology.switches)
            extra = set(recovered.topology.switches) - set(configured.switches)
            if missing:
                report.findings.append(
                    Finding("critical", "srp-sweep", f"configured switches unreachable: {sorted(map(str, missing))}")
                )
            if extra:
                report.findings.append(
                    Finding("warning", "srp-sweep", f"switches present but not configured: {sorted(map(str, extra))}")
                )
            if recovered.topology.links != configured.links:
                report.findings.append(
                    Finding("warning", "srp-sweep", "live link set differs from the configured topology")
                )
    except RuntimeError as error:
        report.findings.append(Finding("critical", "srp-sweep", str(error)))

    # 3. per-port conditions
    for ap in live:
        for port in range(1, ap.switch.n_ports + 1):
            unit = ap.switch.ports[port]
            if not unit.connected:
                continue
            monitor = ap.monitoring.ports[port]
            state = monitor.state
            where = f"{ap.switch.name}.p{port}"
            if state is PortState.SWITCH_LOOP:
                report.findings.append(
                    Finding("warning", where, "looped or reflecting cable (s.switch.loop)")
                )
            elif state is PortState.DEAD:
                hold = monitor.status_skeptic.hold_ns / 1e6
                severity = "warning" if monitor.status_skeptic.failures > 1 else "info"
                report.findings.append(
                    Finding(severity, where,
                            f"port dead ({monitor.status_skeptic.failures} failures, "
                            f"holding period {hold:.0f} ms)")
                )
            if monitor.conn_skeptic.required > monitor.conn_skeptic.base_required:
                report.findings.append(
                    Finding("warning", where,
                            f"connectivity skeptic elevated: needs "
                            f"{monitor.conn_skeptic.required} consecutive good probes")
                )
            backlog = unit.fifo.level
            if backlog > unit.fifo.stop_threshold:
                report.findings.append(
                    Finding("warning", where, f"receive FIFO backed up ({backlog:.0f} bytes)")
                )
    return report


def telemetry_dashboard(network) -> str:
    """Render ``network.telemetry()`` as an operator-facing text dashboard:
    the health report's quantitative sibling.  Covers the forwarding-plane
    counters, congestion residue (FIFO high-water, stop time), and the
    per-epoch reconfiguration spans with their blackout intervals."""
    snap = network.telemetry()
    lines = [f"telemetry @ {snap['time_ns'] / 1e9:.3f}s "
             f"({'enabled' if snap['enabled'] else 'DISABLED'})"]

    lines.append("")
    lines.append("  switch        fwd     disc   to-cp  resets  epochs(i/j)  term")
    for name, sw in snap["switches"].items():
        lines.append(
            f"  {name:<12} {sw['packets_forwarded']:>6} {sw['packets_discarded']:>8} "
            f"{sw['packets_to_cp']:>7} {sw['resets']:>7} "
            f"{sw['epochs_initiated']:>5}/{sw['epochs_joined']:<5} "
            f"{sw['terminations']:>4}"
        )

    port_rows = []
    for name, sw in snap["switches"].items():
        for p, port in sorted(sw["ports"].items()):
            interesting = (
                port["forwarded"] or port["dropped"]
                or port["stop_ns"] or port["fifo_highwater_bytes"] > 0
            )
            if interesting:
                drops = ",".join(f"{c}={n}" for c, n in sorted(port["dropped"].items()))
                port_rows.append(
                    f"  {name}.p{p:<3} fwd={port['forwarded']:<6} "
                    f"ct/buf={port['cut_through']}/{port['buffered']:<5} "
                    f"hw={port['fifo_highwater_bytes']:>6.0f}B "
                    f"stop={port['stop_ns'] / 1e6:>8.2f}ms"
                    + (f" drops[{drops}]" if drops else "")
                )
    if port_rows:
        lines.append("")
        lines.append("  port activity:")
        lines.extend(port_rows)

    holds = []
    for name, sw in snap["switches"].items():
        for p, skeptic in sorted(sw["skeptic_holds"].items()):
            holds.append(
                f"  {name}.p{p}: {skeptic['failures']} failures, "
                f"holding {skeptic['hold_ns'] / 1e6:.0f} ms, "
                f"needs {skeptic['probes_required']} good probes"
            )
    if holds:
        lines.append("")
        lines.append("  skeptic hold-downs:")
        lines.extend(holds)

    for span in snap.get("reconfigurations", []):
        lines.append("")
        header = f"  reconfiguration epoch {span['key']}:"
        if span["duration_ns"] is not None:
            header += f" {span['duration_ns'] / 1e6:.1f} ms"
        else:
            header += " (incomplete)"
        if span.get("max_blackout_ns") is not None:
            header += f", worst switch blackout {span['max_blackout_ns'] / 1e6:.1f} ms"
        lines.append(header)
        for ev in span["events"]:
            who = f" [{ev['component']}]" if ev.get("component") else ""
            lines.append(f"    {ev['t_ns'] / 1e6:>10.2f} ms  {ev['event']}{who}")
    unclosed = snap.get("unclosed_spans", 0)
    if unclosed:
        lines.append("")
        lines.append(f"  WARNING: {unclosed} reconfiguration span(s) never closed")

    if (
        getattr(network, "flight", None) is not None
        or getattr(network, "profiler", None) is not None
    ):
        lines.append("")
        lines.append(flight_report(network))
    if getattr(network, "sampler", None) is not None:
        lines.append("")
        lines.append(timeseries_report(network))
    if getattr(network, "inband", None) is not None:
        lines.append("")
        lines.append(path_report(network))
    if getattr(network, "control", None) is not None:
        lines.append("")
        lines.append(control_report(network))
    if getattr(network, "traffic", None) is not None:
        lines.append("")
        lines.append(traffic_report(network))
    return "\n".join(lines)


def flight_report(network, hotspot_limit: int = 8) -> str:
    """The ``flight`` section of the doctor's output: what the event-loop
    profiler and the flight recorder know about the last reconfiguration.

    Covers the slowest handler categories (when ``Network(...,
    profile=True)`` attached a profiler), ring-buffer drop counts, and
    the deepest retained causal chain of the last epoch -- the "story"
    a §6.7 merged log was read for, reconstructed mechanically.
    """
    from repro.obs.flight import render_chain

    lines = ["flight recorder:"]
    profiler = getattr(network, "profiler", None)
    recorder = getattr(network, "flight", None)
    if profiler is None and recorder is None:
        lines.append(
            "  off (build Network(flight=True, profile=True) to record)"
        )
        return "\n".join(lines)

    if profiler is not None:
        lines.append("")
        for line in profiler.render(limit=hotspot_limit).splitlines():
            lines.append(f"  {line}")

    if recorder is not None:
        lines.append("")
        lines.append(
            f"  {recorder.total_recorded} events recorded on "
            f"{len(recorder.components())} components, "
            f"{recorder.total_dropped} dropped"
        )
        for component, dropped in recorder.dropped_by_component().items():
            lines.append(f"    {component}: {dropped} oldest events evicted")
        chain = recorder.deepest_chain()
        if chain:
            epoch = chain[-1].attrs.get("epoch")
            lines.append("")
            lines.append(
                f"  deepest causal chain"
                + (f" (epoch {epoch})" if epoch is not None else "")
                + f", {len(chain)} events:"
            )
            for line in render_chain(chain).splitlines():
                lines.append(f"    {line}")
    return "\n".join(lines)


def timeseries_report(network, width: int = 32) -> str:
    """The ``timeseries`` section of the doctor's output: what the
    longitudinal sampler saw -- the watch dashboard's frame (per-switch
    port-state/FIFO sparklines, epoch, blackout flags) plus ring health
    (samples, series, drops).  Off unless the network was built with
    ``Network(timeseries=...)``."""
    from repro.obs.watch import render_frame

    sampler = getattr(network, "sampler", None)
    lines = ["timeseries:"]
    if sampler is None:
        lines.append("  off (build Network(timeseries=True) to sample)")
        return "\n".join(lines)
    doc = sampler.document()
    lines.append(
        f"  {doc['samples_taken']} samples every "
        f"{doc['interval_ns'] / 1e6:g} ms, {len(doc['series'])} series, "
        f"{doc['dropped_ticks']} ticks evicted, "
        f"{doc['dropped_series']} series refused"
    )
    lines.append("")
    frame = render_frame(sampler.view(), now_ns=network.sim.now, width=width)
    lines.extend(f"  {line}".rstrip() for line in frame.splitlines())
    return "\n".join(lines)


def path_report(network, width: int = 32, top: int = 6) -> str:
    """The ``path telemetry`` section of the doctor's output: what the
    in-band layer saw ride the data plane -- per-flow delivery p50/p99
    and detected path changes, the SLO drop ledger, per-epoch blackout
    windows, and the per-link congestion heat rows the watch dashboard
    shows.  Off unless the network was built with ``Network(inband=...)``."""
    from repro.obs.watch import congestion_rows

    inband = getattr(network, "inband", None)
    lines = ["path telemetry:"]
    if inband is None:
        lines.append("  off (build Network(inband=True) to stamp packets)")
        return "\n".join(lines)
    doc = inband.document()
    slo = doc["slo"]

    def fmt(value):
        return "-" if value is None else f"{value / 1e3:.1f}us"

    lines.append(
        f"  {doc['hops_recorded']} hop records, {slo['deliveries']} "
        f"deliveries, p50 {fmt(slo['p50_ns'])} p99 {fmt(slo['p99_ns'])}, "
        f"drops {sum(slo['drops'].values())}"
    )
    for flow in doc["flows"]:
        lines.append(
            f"    {flow['src_uid']:012x} -> {flow['dest_uid']:012x}: "
            f"{flow['deliveries']} delivered, "
            f"p50 {fmt(flow['latency_p50_ns'])} "
            f"p99 {fmt(flow['latency_p99_ns'])}, "
            f"{flow['paths_seen']} path(s), {len(flow['changes'])} change(s)"
        )
    for window in slo["windows"]:
        if window["max_blackout_ns"] is None:
            continue
        lines.append(
            f"    epoch {window['epoch']} blackout "
            f"{window['max_blackout_ns'] / 1e6:.1f} ms: "
            f"{window['deliveries']} delivered, {window['drops']} dropped"
        )
    heat = congestion_rows(doc, width=width, top=top)
    if heat:
        lines.append("")
        lines.extend(f"  {row}".rstrip() for row in heat)
    return "\n".join(lines)


def control_report(network) -> str:
    """The ``control plane`` section of the doctor's output: what
    reconfiguration itself cost -- control-packet volume by message type
    and phase (election / loading / steady), retransmissions, and the
    per-epoch slices.  Off unless the network was built with
    ``Network(control=True)``."""
    acct = getattr(network, "control", None)
    lines = ["control plane:"]
    if acct is None:
        lines.append("  off (build Network(control=True) to count)")
        return "\n".join(lines)
    summary = acct.summary()
    lines.append(
        f"  {summary['packets']} control packets, "
        f"{summary['bytes'] / 1024:.1f} KiB, "
        f"{summary['retransmissions']} retransmitted"
    )
    for phase, cell in summary["by_phase"].items():
        lines.append(
            f"    {phase:<9} {cell['packets']:>6} pkts "
            f"{cell['bytes'] / 1024:>8.1f} KiB"
        )
    for msg_type, cell in summary["by_type"].items():
        lines.append(
            f"    {msg_type:<18} {cell['packets']:>6} pkts "
            f"{cell['bytes'] / 1024:>8.1f} KiB"
        )
    for epoch, cell in summary["epochs"].items():
        lines.append(
            f"    epoch {epoch}: {cell['packets']} pkts "
            f"{cell['bytes'] / 1024:.1f} KiB, {cell['retransmissions']} retx"
        )
    if summary["srp"]:
        srp = ", ".join(f"{k}={v}" for k, v in summary["srp"].items())
        lines.append(f"    srp: {srp}")
    return "\n".join(lines)


def traffic_report(network) -> str:
    """The ``traffic SLO`` section of the doctor's output: what the
    workload experienced -- flow states, delivery-latency quantiles,
    goodput, drops by cause, and the blackout cost of each
    reconfiguration window.  Off unless the network was built with
    ``Network(traffic=...)``."""
    engine = getattr(network, "traffic", None)
    lines = ["traffic SLO:"]
    if engine is None:
        lines.append("  off (build Network(traffic=...) to run a workload)")
        return "\n".join(lines)
    doc = engine.document()
    lines.append(
        f"  {doc['config']['pattern']} workload, {doc['generated_flows']} flows "
        f"over {doc['config']['hosts']} hosts ({doc['config']['mode']} mode, "
        f"{'launched' if doc['launched'] else 'not launched'})"
    )
    lines.append(
        f"  flows: {doc['flows_completed']} completed, {doc['flows_active']} "
        f"active ({doc['flows_unrouted']} unrouted), {doc['flows_pending']} pending"
    )
    goodput = doc["goodput_bytes_per_sec"]
    lines.append(
        f"  offered {doc['offered_bytes'] / 1024:.1f} KiB, delivered "
        f"{doc['delivered_bytes'] / 1024:.1f} KiB"
        + (f" ({goodput / 1024:.1f} KiB/s)" if goodput is not None else "")
        + f", blackout cost {doc['blackout_cost_bytes'] / 1024:.1f} KiB"
    )
    latency = doc["latency"]
    if latency["count"]:
        lines.append(
            f"  delivery latency: p50 {latency['p50_ns'] / 1e6:.1f} ms, "
            f"p99 {latency['p99_ns'] / 1e6:.1f} ms over {latency['count']} flows"
        )
    if doc["drops"]:
        drops = ", ".join(f"{k}={v}" for k, v in doc["drops"].items())
        lines.append(f"  drops: {drops}")
    for window in doc["windows"]:
        if window["end_ns"] is None:
            continue
        lines.append(
            f"    epoch {window['epoch']} "
            f"[+{window['start_ns'] / 1e9:.3f}s..+{window['end_ns'] / 1e9:.3f}s]: "
            f"blackout cost {window['blackout_cost_bytes'] / 1024:.1f} KiB "
            f"of {window['offered_bytes'] / 1024:.1f} KiB offered"
        )
    return "\n".join(lines)


def sweep_report(doc) -> str:
    """The ``sweep`` section of the doctor's output: the scaling curves
    of a ``repro.obs.sweep/1`` artifact -- one row per topology rung and
    the fitted log-log exponents.  Takes the document (sweeps span many
    networks, so there is no live network to inspect)."""
    from repro.obs.sweep import render_sweep, validate_sweep

    return render_sweep(validate_sweep(doc))


def staticcheck_report(roots=("src",), baseline_path=None) -> str:
    """The ``staticcheck`` section of the doctor's output: does the tree
    still honor the determinism / purity / observability / hygiene
    disciplines (``RS1xx``-``RS4xx``)?  Runs the same suite as the CI
    gate and renders its verdict plus any active findings."""
    from pathlib import Path

    from repro.staticcheck import Baseline, find_default_baseline, run_suite

    if baseline_path is None:
        baseline_path = find_default_baseline()
    baseline = Baseline.load(baseline_path) if baseline_path else None
    existing = [Path(r) for r in roots if Path(r).exists()]
    lines = ["staticcheck:"]
    if not existing:
        lines.append(f"  (no scan roots found among {', '.join(map(str, roots))})")
        return "\n".join(lines)
    result = run_suite(existing, baseline=baseline)
    verdict = "OK" if result.ok else "FAIL"
    lines.append(
        f"  {verdict}: {result.files_scanned} files, "
        f"{len(result.findings)} active finding(s), "
        f"{len(result.suppressed)} baselined"
    )
    for finding in result.findings[:20]:
        lines.append(f"    {finding.location()}: {finding.rule}: {finding.message}")
    if len(result.findings) > 20:
        lines.append(f"    ... and {len(result.findings) - 20} more")
    for entry in result.stale_suppressions:
        lines.append(
            f"    stale baseline entry: {entry['rule']} at {entry['path']}"
        )
    inventory = result.artifacts.get("shared_state")
    if inventory is not None:
        written = sum(1 for entry in inventory if "writes" in entry)
        lines.append(
            f"  shared state: {len(inventory)} module-level object(s) "
            f"reachable from chaos/handler entry points, {written} written "
            f"({'sharding-safe' if not written else 'NOT sharding-safe'})"
        )
    return "\n".join(lines)


def campaign_report(doc) -> str:
    """Render a chaos-campaign ``repro.bench/1`` document as a text report.

    The campaign runner (:mod:`repro.chaos.campaign`) emits two result
    tables -- the aggregate counters and the failing schedules.  This
    formats both for terminals and CI logs.
    """
    by_name = {r["name"]: r for r in doc.get("results", [])}
    lines = [f"chaos campaign: {doc.get('title', '')} (seed={doc.get('seed')})"]

    campaign = by_name.get("campaign")
    if campaign and campaign["rows"]:
        row = dict(zip(campaign["headers"], campaign["rows"][0]))
        verdict = "PASS" if not row.get("failed") else "FAIL"
        lines.append(
            f"  {verdict}: {row.get('passed')}/{row.get('schedules')} schedules "
            f"passed on {row.get('topology')}, "
            f"{row.get('faults_injected')} faults injected, "
            f"{row.get('checks_run')} invariant checks, "
            f"{row.get('violations')} violations"
        )
        telemetry = campaign.get("telemetry") or {}
        faults = telemetry.get("faults_by_kind") or {}
        if faults:
            mix = ", ".join(f"{k}={v}" for k, v in sorted(faults.items()))
            lines.append(f"  fault mix: {mix}")
        checks = telemetry.get("checks_by_kind") or {}
        if checks:
            mix = ", ".join(f"{k}={v}" for k, v in sorted(checks.items()))
            lines.append(f"  checks:    {mix}")
        if telemetry.get("sim_ns_total") is not None:
            lines.append(
                f"  simulated: {telemetry['sim_ns_total'] / 1e9:.1f}s across "
                f"{telemetry.get('epochs_total', 0)} reconfiguration epochs"
            )

    failures = by_name.get("failures")
    if failures and failures["rows"]:
        lines.append("")
        lines.append("  failing schedules:")
        for row in failures["rows"]:
            named = dict(zip(failures["headers"], row))
            lines.append(
                f"    {named.get('schedule')}: seed={named.get('seed')} "
                f"events={named.get('events')} faults={named.get('faults')}"
            )
            for violation in str(named.get("violations", "")).split("; "):
                if violation:
                    lines.append(f"      - {violation}")
    return "\n".join(lines)
