"""A network health report: the §7 "monitoring and management tools".

`diagnose` sweeps a live installation the way an operator's management
station would -- over SRP, which works even during reconfiguration -- and
cross-checks what the switches believe: every switch configured, on the
same epoch, holding the same topology and numbering; ports in expected
states; skeptics not holding links out of service; looped or reflecting
cables; congestion residue (FIFO backlogs, blocked transmitters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.explorer import NetworkExplorer
from repro.core.portstate import PortState


@dataclass
class Finding:
    """One observation, ranked by severity."""

    severity: str  # "info" | "warning" | "critical"
    where: str
    what: str

    def __str__(self) -> str:
        return f"[{self.severity:<8}] {self.where}: {self.what}"


@dataclass
class HealthReport:
    """The doctor's verdict: findings plus sweep context."""

    findings: List[Finding] = field(default_factory=list)
    switches_seen: int = 0
    epoch: int = -1

    @property
    def healthy(self) -> bool:
        return not any(f.severity == "critical" for f in self.findings)

    def criticals(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "critical"]

    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def render(self) -> str:
        lines = [
            f"health report: {self.switches_seen} switches, epoch {self.epoch}, "
            f"{'HEALTHY' if self.healthy else 'PROBLEMS FOUND'}"
        ]
        lines.extend(str(f) for f in self.findings)
        return "\n".join(lines)


def diagnose(network, origin: int = 0) -> HealthReport:
    """Sweep the network from one switch and report anomalies."""
    report = HealthReport()
    live = network.alive_autopilots()
    report.switches_seen = len(live)

    # 1. agreement: epoch, configuration, topology, numbering
    epochs = {ap.epoch for ap in live}
    report.epoch = max(epochs) if epochs else -1
    if len(epochs) > 1:
        report.findings.append(
            Finding("critical", "network", f"switches disagree on the epoch: {sorted(epochs)}")
        )
    for ap in live:
        if not (ap.configured and ap.engine.table_loaded):
            report.findings.append(
                Finding("critical", ap.switch.name, "not configured (reconfiguration in progress or stuck)")
            )
    views = {
        frozenset(ap.engine.topology.switches)
        for ap in live
        if ap.engine.topology is not None
    }
    if len(views) > 1:
        report.findings.append(
            Finding(
                "warning", "network",
                f"{len(views)} distinct topology views (partition or churn)",
            )
        )

    # 2. SRP sweep: does the recovered picture match the configured one?
    try:
        recovered = NetworkExplorer(network, origin=origin).explore()
        configured = live[origin].engine.topology if origin < len(live) else None
        if configured is not None:
            missing = set(configured.switches) - set(recovered.topology.switches)
            extra = set(recovered.topology.switches) - set(configured.switches)
            if missing:
                report.findings.append(
                    Finding("critical", "srp-sweep", f"configured switches unreachable: {sorted(map(str, missing))}")
                )
            if extra:
                report.findings.append(
                    Finding("warning", "srp-sweep", f"switches present but not configured: {sorted(map(str, extra))}")
                )
            if recovered.topology.links != configured.links:
                report.findings.append(
                    Finding("warning", "srp-sweep", "live link set differs from the configured topology")
                )
    except RuntimeError as error:
        report.findings.append(Finding("critical", "srp-sweep", str(error)))

    # 3. per-port conditions
    for ap in live:
        for port in range(1, ap.switch.n_ports + 1):
            unit = ap.switch.ports[port]
            if not unit.connected:
                continue
            monitor = ap.monitoring.ports[port]
            state = monitor.state
            where = f"{ap.switch.name}.p{port}"
            if state is PortState.SWITCH_LOOP:
                report.findings.append(
                    Finding("warning", where, "looped or reflecting cable (s.switch.loop)")
                )
            elif state is PortState.DEAD:
                hold = monitor.status_skeptic.hold_ns / 1e6
                severity = "warning" if monitor.status_skeptic.failures > 1 else "info"
                report.findings.append(
                    Finding(severity, where,
                            f"port dead ({monitor.status_skeptic.failures} failures, "
                            f"holding period {hold:.0f} ms)")
                )
            if monitor.conn_skeptic.required > monitor.conn_skeptic.base_required:
                report.findings.append(
                    Finding("warning", where,
                            f"connectivity skeptic elevated: needs "
                            f"{monitor.conn_skeptic.required} consecutive good probes")
                )
            backlog = unit.fifo.level
            if backlog > unit.fifo.stop_threshold:
                report.findings.append(
                    Finding("warning", where, f"receive FIFO backed up ({backlog:.0f} bytes)")
                )
    return report
