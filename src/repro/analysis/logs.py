"""Reconfiguration-timeline analysis from merged switch logs (section 6.7).

The paper's main debugging technique: retrieve each switch's circular log
(via SRP), normalize the local timestamps, merge, and read the complete
history of a reconfiguration.  ``reconfiguration_timeline`` extracts one
epoch's history; ``phase_durations`` splits it into the five steps of
section 6.6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.trace import MergedLog, TraceEntry


@dataclass
class EpochTimeline:
    """The merged history of one reconfiguration epoch."""

    epoch: int
    entries: List[TraceEntry]

    @property
    def started_at(self) -> Optional[int]:
        starts = [e.local_time for e in self.entries if e.event == "epoch-start"]
        return min(starts) if starts else None

    @property
    def terminated_at(self) -> Optional[int]:
        terms = [e.local_time for e in self.entries if e.event == "termination"]
        return min(terms) if terms else None

    @property
    def completed_at(self) -> Optional[int]:
        done = [e.local_time for e in self.entries if e.event == "configured"]
        return max(done) if done else None

    def duration(self) -> Optional[int]:
        if self.started_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.started_at

    def phase_durations(self) -> Dict[str, Optional[int]]:
        """Tree formation + reports (steps 1-2) vs distribution + load
        (steps 4-5), split at the root's termination detection."""
        start, term, done = self.started_at, self.terminated_at, self.completed_at
        return {
            "tree_and_reports": (term - start) if start is not None and term is not None else None,
            "distribute_and_load": (done - term) if term is not None and done is not None else None,
            "total": self.duration(),
        }


def _epoch_of(entry: TraceEntry) -> Optional[int]:
    for token in entry.detail.split():
        if token.startswith("epoch="):
            try:
                return int(token[len("epoch="):])
            except ValueError:
                return None
    return None


def reconfiguration_timeline(log: MergedLog, epoch: int) -> EpochTimeline:
    """Extract one epoch's merged, time-normalized history."""
    relevant = []
    for entry in log.merged():
        if entry.event in ("epoch-start", "termination", "configured", "config-timeout"):
            if _epoch_of(entry) == epoch:
                relevant.append(entry)
        elif entry.event in ("position", "reconfig-trigger", "port-state"):
            relevant.append(entry)
    return EpochTimeline(epoch=epoch, entries=relevant)


def epochs_seen(log: MergedLog) -> List[int]:
    found = set()
    for entry in log.merged():
        if entry.event == "epoch-start":
            epoch = _epoch_of(entry)
            if epoch is not None:
                found.add(epoch)
    return sorted(found)
