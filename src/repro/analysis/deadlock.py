"""Static deadlock analysis via channel-dependency graphs (section 3.6).

With flow-controlled FIFOs and no packet discard, a set of routes can
deadlock iff the *channel dependency graph* has a cycle: nodes are
directed link channels, and there is an edge from channel c1 to c2
whenever some packet can occupy c1 while waiting for c2 at the switch
between them.  Up*/down* routing is deadlock-free because the spanning
tree's link orientation makes this graph acyclic; unrestricted
shortest-path routing on the same topology generally is not, which the
E11 ablation bench demonstrates.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Set, Tuple

import networkx as nx

from repro.core.topo import PortRef, TopologyMap
from repro.net.forwarding import ForwardingEntry
from repro.types import Uid

#: a channel: bytes flowing from one switch port into a neighbor's port
Channel = Tuple[PortRef, PortRef]

EntryMap = Mapping[Tuple[int, int], ForwardingEntry]


def channel_dependency_graph(
    topology: TopologyMap,
    entries_by_uid: Mapping[Uid, EntryMap],
) -> "nx.DiGraph":
    """Build the channel dependency graph induced by the loaded tables.

    Only switch-to-switch channels are modeled; channels to and from hosts
    are sources/sinks and cannot participate in cycles.
    """
    graph = nx.DiGraph()
    # channels keyed by the receiving (uid, port)
    incoming: Dict[Tuple[Uid, int], Channel] = {}
    outgoing: Dict[Tuple[Uid, int], Channel] = {}
    for link in topology.links:
        if link.is_loop:
            continue
        for src, dst in ((link.a, link.b), (link.b, link.a)):
            channel: Channel = (src, dst)
            graph.add_node(channel)
            incoming[(dst.uid, dst.port)] = channel
            outgoing[(src.uid, src.port)] = channel

    for uid, entries in entries_by_uid.items():
        for (in_port, _address), entry in entries.items():
            upstream = incoming.get((uid, in_port))
            if upstream is None:
                continue  # packets from hosts/CP start chains, no upstream hold
            for out_port in entry.ports:
                downstream = outgoing.get((uid, out_port))
                if downstream is None:
                    continue  # delivered to a host or the CP: chain ends
                graph.add_edge(upstream, downstream)
    return graph


def dependency_cycles(graph: "nx.DiGraph", limit: int = 50) -> List[List[Channel]]:
    """Up to ``limit`` elementary cycles of the dependency graph."""
    cycles = []
    for cycle in nx.simple_cycles(graph):
        cycles.append(cycle)
        if len(cycles) >= limit:
            break
    return cycles


def has_deadlock_potential(
    topology: TopologyMap, entries_by_uid: Mapping[Uid, EntryMap]
) -> bool:
    """True iff the loaded routes admit a circular channel dependency."""
    graph = channel_dependency_graph(topology, entries_by_uid)
    return not nx.is_directed_acyclic_graph(graph)


class ProgressMonitor:
    """Runtime deadlock detector for the simulated data plane.

    Tracks the set of packets injected but not yet delivered or discarded.
    When the simulator's event queue drains while packets remain pending,
    nothing can ever advance them: that is a realized deadlock (the
    symptom of Figure 9).
    """

    def __init__(self) -> None:
        self.pending: Set[int] = set()
        self.deadlocked = False
        self.deadlocked_at: int = -1

    def injected(self, packet_id: int) -> None:
        self.pending.add(packet_id)

    def finished(self, packet_id: int) -> None:
        self.pending.discard(packet_id)

    def install(self, sim) -> None:
        sim.add_idle_hook(self._idle)

    def _idle(self, sim) -> None:
        if self.pending and not self.deadlocked:
            self.deadlocked = True
            self.deadlocked_at = sim.now
