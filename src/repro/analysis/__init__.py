"""Analysis tools: deadlock-freedom proofs, invariant checks, metrics.

These operate on computed forwarding tables and topology descriptions
(statically) or on the running simulation (dynamically), and back both the
test suite's property checks and the benchmark harness.
"""

from repro.analysis.capacity import CapacityReport, analyze_capacity
from repro.analysis.deadlock import (
    channel_dependency_graph,
    dependency_cycles,
    has_deadlock_potential,
)
from repro.analysis.doctor import HealthReport, diagnose
from repro.analysis.explorer import NetworkExplorer
from repro.analysis.invariants import (
    all_pairs_reachable,
    assert_trail_legal,
    check_no_down_to_up,
    trace_delivery,
)
from repro.analysis.logs import epochs_seen, reconfiguration_timeline

__all__ = [
    "CapacityReport",
    "analyze_capacity",
    "channel_dependency_graph",
    "dependency_cycles",
    "has_deadlock_potential",
    "HealthReport",
    "diagnose",
    "NetworkExplorer",
    "all_pairs_reachable",
    "assert_trail_legal",
    "check_no_down_to_up",
    "trace_delivery",
    "epochs_seen",
    "reconfiguration_timeline",
]
