"""Small statistics helpers shared by the benches."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile, p in [0, 100]."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


def stddev(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def mbits(bytes_count: float) -> float:
    return bytes_count * 8 / 1_000_000


def rate_mbps(bytes_count: float, elapsed_ns: int) -> float:
    """Throughput in Mbit/s over an elapsed simulated interval."""
    if elapsed_ns <= 0:
        return 0.0
    return bytes_count * 8 / (elapsed_ns / 1_000)  # bits per microsecond == Mbit/s


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Plain-text aligned table for bench output."""
    materialized: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        materialized.append([str(cell) for cell in row])
    widths = [max(len(r[i]) for r in materialized) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(materialized):
        lines.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
