"""Invariant checks over computed configurations.

These walk forwarding tables symbolically (no simulation) to verify the
routing goals of section 6.6: every host and switch reachable, all
operational links usable, no route violating the up*/down* rule, and
misrouted packets discarded rather than looped.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Mapping, Set, Tuple

from repro.constants import CONTROL_PROCESSOR_PORT
from repro.core.routing import DOWN, arrival_phase, link_direction
from repro.core.topo import NetLink, PortRef, TopologyMap
from repro.net.forwarding import ForwardingEntry
from repro.types import Uid, make_short_address

EntryMap = Mapping[Tuple[int, int], ForwardingEntry]


def trace_delivery(
    topology: TopologyMap,
    entries_by_uid: Mapping[Uid, EntryMap],
    start_uid: Uid,
    start_port: int,
    address: int,
    max_hops: int = 10_000,
) -> Set[Tuple[Uid, int]]:
    """All (switch, port) deliveries reachable for a packet, across every
    alternative-port choice the switches could make.

    Raises RuntimeError if any choice sequence loops (visits the same
    (switch, in-port) state twice on one path is fine -- we do a BFS over
    states, so a loop shows up as exceeding ``max_hops`` expansions).
    """
    delivered: Set[Tuple[Uid, int]] = set()
    seen: Set[Tuple[Uid, int]] = set()
    frontier = deque([(start_uid, start_port)])
    hops = 0
    while frontier:
        hops += 1
        if hops > max_hops:
            raise RuntimeError("table walk did not terminate (routing loop?)")
        uid, in_port = frontier.popleft()
        if (uid, in_port) in seen:
            continue
        seen.add((uid, in_port))
        entries = entries_by_uid.get(uid, {})
        entry = entries.get((in_port, address))
        if entry is None or entry.is_discard:
            continue
        neighbors = topology.neighbors(uid)
        for out_port in entry.ports:
            if out_port == CONTROL_PROCESSOR_PORT:
                delivered.add((uid, CONTROL_PROCESSOR_PORT))
            elif out_port in neighbors:
                far = neighbors[out_port]
                frontier.append((far.uid, far.port))
            else:
                # host port (or dangling): delivery off the fabric
                delivered.add((uid, out_port))
    return delivered


def all_pairs_reachable(
    topology: TopologyMap, entries_by_uid: Mapping[Uid, EntryMap]
) -> Dict[Tuple[Uid, Uid], bool]:
    """For every ordered switch pair (s, t): does a packet injected at s's
    control processor reach t's control processor?"""
    results: Dict[Tuple[Uid, Uid], bool] = {}
    for src in topology.switches:
        for dst, record in topology.switches.items():
            number = topology.numbers.get(dst)
            if number is None:
                continue
            address = make_short_address(number, CONTROL_PROCESSOR_PORT)
            delivered = trace_delivery(
                topology, entries_by_uid, src, CONTROL_PROCESSOR_PORT, address
            )
            results[(src, dst)] = (dst, CONTROL_PROCESSOR_PORT) in delivered
        del record
    return results


def check_no_down_to_up(
    topology: TopologyMap, entries_by_uid: Mapping[Uid, EntryMap]
) -> None:
    """Raise AssertionError if any table entry forwards a packet that
    arrived on a down traversal back up (the rule of section 6.6.4)."""
    for uid, entries in entries_by_uid.items():
        neighbors = topology.neighbors(uid)
        for (in_port, address), entry in entries.items():
            if arrival_phase(topology, uid, in_port) != DOWN:
                continue
            for out_port in entry.ports:
                if out_port not in neighbors:
                    continue
                far = neighbors[out_port]
                link = NetLink(PortRef(uid, out_port), far)
                up_end = link_direction(topology, link)
                going_up = up_end.uid == far.uid and up_end.port == far.port
                assert not going_up, (
                    f"{uid}: entry (in={in_port}, addr={address:#x}) forwards "
                    f"a descended packet up via port {out_port}"
                )


def assert_trail_legal(topology: TopologyMap, trail, uid_of_switch_name) -> None:
    """Verify a delivered packet's recorded hops form a legal up*/down*
    route: zero or more up traversals followed by zero or more down
    traversals (section 6.6.4).

    ``trail`` is the packet's per-hop record [(switch name, in port,
    out ports)]; ``uid_of_switch_name`` maps names to UIDs.
    """
    descended = False
    for i in range(len(trail) - 1):
        name, _in_port, out_ports = trail[i]
        uid = uid_of_switch_name(name)
        next_name, next_in, _next_out = trail[i + 1]
        next_uid = uid_of_switch_name(next_name)
        # find the out port that led to the next hop
        link = None
        neighbors = topology.neighbors(uid)
        for out_port in out_ports:
            far = neighbors.get(out_port)
            if far is not None and far.uid == next_uid and far.port == next_in:
                link = NetLink(PortRef(uid, out_port), far)
                break
        if link is None:
            continue  # hop crossed a link no longer in this topology view
        up_end = link_direction(topology, link)
        going_up = up_end.uid == next_uid
        if going_up:
            assert not descended, (
                f"illegal route: up traversal {name}->{next_name} after a "
                f"down traversal; trail={trail}"
            )
        else:
            descended = True


def links_used(
    topology: TopologyMap, entries_by_uid: Mapping[Uid, EntryMap]
) -> Set[NetLink]:
    """The set of switch-to-switch links appearing in at least one entry.

    Up*/down* promises all non-loop links remain usable (section 4.2).
    """
    used: Set[NetLink] = set()
    for uid, entries in entries_by_uid.items():
        neighbors = topology.neighbors(uid)
        for (_in_port, _address), entry in entries.items():
            for out_port in entry.ports:
                if out_port in neighbors:
                    used.add(NetLink(PortRef(uid, out_port), neighbors[out_port]))
    return used
