"""Physical and protocol constants for the Autonet reproduction.

All times in the simulator are integer nanoseconds.  One byte slot on a
100 Mbit/s TAXI link takes 80 ns (the switch clock period in the paper,
section 5.1).  Propagation delay follows section 6.2: a link of L km holds
W = 64.1 * L bytes in flight one way.
"""

# -- time units (nanoseconds) -------------------------------------------------
NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000

# -- link timing (section 5.1 / 6.2) ------------------------------------------
#: one slot (one byte or one command) on a 100 Mbit/s link
BYTE_TIME_NS = 80
#: every 256th slot carries a flow-control directive (section 6.1)
FLOW_CONTROL_SLOT_PERIOD = 256
#: bytes in flight one-way per kilometre of cable (W = 64.1 * L, section 6.2)
BYTES_IN_FLIGHT_PER_KM = 64.1

# -- switch hardware (sections 5.1, 6.2, 6.4) ---------------------------------
#: ports per switch (12 external + port 0 to the control processor)
PORTS_PER_SWITCH = 12
#: internal port number of the control processor
CONTROL_PROCESSOR_PORT = 0
#: receive FIFO size in bytes (enlarged for broadcast deadlock freedom)
DEFAULT_FIFO_BYTES = 4096
#: FIFO issues ``stop`` when more than half full (f = 0.5 in section 6.2)
DEFAULT_STOP_FRACTION = 0.5
#: cut-through forwarding may begin once this many bytes have arrived
CUT_THROUGH_BYTES = 25
#: the router makes one forwarding decision every 6 clocks of 80 ns
ROUTER_DECISION_TIME_NS = 480
#: switch transit latency bounds, in 80 ns clocks (section 5.1)
MIN_TRANSIT_CLOCKS = 26
MAX_TRANSIT_CLOCKS = 32

# -- addressing (section 6.3) --------------------------------------------------
#: width of a short address in the prototype
SHORT_ADDRESS_BITS = 11
#: bits of a short address naming the port within a switch (ports 0..15)
PORT_NUMBER_BITS = 4

#: reserved short addresses (section 6.3, low 11 bits of the listed values)
ADDR_LOCAL_SWITCH = 0x0000        # from a host: control processor of local switch
ADDR_ONE_HOP_BASE = 0x0001        # 0x0001-0x000F: one-hop switch-to-switch
ADDR_ONE_HOP_LIMIT = 0x000F
ADDR_FIRST_ASSIGNABLE = 0x0010    # first short address the root may assign
ADDR_RESERVED_BASE = 0x7F0        # FFF0-FFFB truncated to 11 bits: discarded
ADDR_LOOPBACK = 0x7FC             # FFFC: loop back at the local switch
ADDR_BROADCAST_ALL = 0x7FD        # FFFD: every switch and every host
ADDR_BROADCAST_SWITCHES = 0x7FE   # FFFE: every switch
ADDR_BROADCAST_HOSTS = 0x7FF      # FFFF: every host
ADDR_LAST_ASSIGNABLE = 0x7EF      # FFEF truncated to 11 bits

# -- packets (section 6.8) -----------------------------------------------------
AUTONET_HEADER_BYTES = 32
#: maximum data payload of a normal Autonet packet
MAX_DATA_BYTES = 64 * 1024
#: broadcast and Ethernet-bridged packets respect the Ethernet data limit
MAX_BROADCAST_DATA_BYTES = 1500
CRC_BYTES = 8
#: maximum broadcast packet on the wire (Ethernet max + Autonet header), §6.2
MAX_BROADCAST_PACKET_BYTES = 1550

# -- Autopilot timing (sections 5.4, 6.8.3) -------------------------------------
#: control-processor timer interrupt period
TIMER_INTERRUPT_NS = 328 * US
#: task-scheduler timeout resolution
TIMEOUT_RESOLUTION_NS = 1_200 * US

# -- host driver failover (section 6.8.3) ---------------------------------------
#: normal keep-alive probe period to the local switch
HOST_PROBE_PERIOD_NS = 2 * SEC
#: give up on the active link after this long without a switch response
HOST_FAILOVER_TIMEOUT_NS = 3 * SEC
#: retry the other link after this long if the new link is also dead
HOST_SWITCHBACK_TIMEOUT_NS = 10 * SEC

# -- UID cache (section 6.8.1) ---------------------------------------------------
#: freshness window around a cache use that suppresses ARP traffic
UID_CACHE_FRESH_NS = 2 * SEC
#: ARP response wait before falling back to broadcast
ARP_TIMEOUT_NS = 2 * SEC
