"""Event loop for the Autonet simulator.

Time is an integer number of nanoseconds.  Events scheduled for the same
instant run in scheduling order (a monotonically increasing sequence number
breaks ties), which keeps runs deterministic for a fixed seed.

The loop also supports *idle hooks*: callbacks invoked when the event queue
drains while the caller expected progress.  The runtime deadlock detector in
:mod:`repro.analysis.deadlock` uses this to notice packets that are in
flight with no event that could ever advance them -- exactly the symptom of
the broadcast deadlock in section 6.6.6 of the paper.
"""

from __future__ import annotations

import heapq
from time import perf_counter_ns
from typing import Any, Callable, List, Optional

from repro.obs.registry import MetricsRegistry


class EventHandle:
    """Cancellable reference to a scheduled event."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "ctx")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any],
                 args: tuple) -> None:
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False
        #: flight-recorder causal context captured at schedule time (the
        #: eid of the event being handled when this one was scheduled);
        #: None when no recorder is attached or the event is a causal root
        self.ctx: Optional[int] = None

    def cancel(self) -> None:
        """Prevent the event from running.  Safe to call more than once."""
        self.cancelled = True
        self.fn = None
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time} seq={self.seq} {state}>"


class Simulator:
    """Deterministic integer-nanosecond discrete-event simulator."""

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: List[EventHandle] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False
        self._idle_hooks: List[Callable[["Simulator"], None]] = []
        #: number of events dispatched so far (useful for budget guards)
        self.events_dispatched: int = 0
        #: simulation-wide metrics registry (repro.obs).  Disabled by
        #: default: the event loop itself stays free of per-event
        #: instrument calls; enable_metrics() registers snapshot-time
        #: collectors over the counters the loop keeps anyway.
        self.metrics = MetricsRegistry(enabled=False)
        self._metrics_registered = False
        #: optional flight recorder (repro.obs.flight.FlightRecorder).
        #: None (the default) is the fast path: every hook site in the
        #: simulation is then one attribute load plus a None test, and no
        #: event objects are allocated.  Attach before building
        #: components so boot-time events are captured.
        self.recorder = None
        #: optional event-loop profiler (repro.obs.profiler.
        #: EventLoopProfiler); None disables the per-event perf_counter
        #: calls entirely.
        self.profiler = None
        #: optional time-series sampler (repro.obs.timeseries.
        #: TimeSeriesSampler).  None (the default) costs nothing: the
        #: sampler is pull-only and drives itself with its own periodic
        #: event, so no dispatch-path code ever consults this attribute
        #: -- it exists so tools (doctor, watch) can find the sampler.
        self.sampler = None
        #: optional in-band path telemetry (repro.obs.inband.
        #: InbandTelemetry).  None (the default) is the fast path: every
        #: stamp site in switch/linkunit/fifo/host is one attribute load
        #: plus a None test, no hop records are allocated, and runs stay
        #: byte-identical (RS305 enforces the pattern at call sites).
        self.inband = None

    def enable_metrics(self) -> None:
        """Turn on telemetry and publish the engine's own series."""
        self.metrics.enable()
        if not self._metrics_registered:
            self._metrics_registered = True
            self.metrics.collect(
                "sim_events_dispatched", lambda: self.events_dispatched
            )
            self.metrics.collect("sim_pending_events", self.pending_events)
            self.metrics.collect("sim_now_ns", lambda: self.now)

    # -- scheduling ------------------------------------------------------------

    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        self._seq += 1
        handle = EventHandle(int(time), self._seq, fn, args)
        if self.recorder is not None:
            # causality flows through the event loop: the scheduled event
            # inherits the context of whatever scheduled it
            handle.ctx = self.recorder.current
        heapq.heappush(self._queue, handle)
        return handle

    def after(self, delay: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self.now + int(delay), fn, *args)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at the current instant, after pending work."""
        return self.at(self.now, fn, *args)

    # -- idle hooks --------------------------------------------------------------

    def add_idle_hook(self, hook: Callable[["Simulator"], None]) -> None:
        """Register a callback to run when the event queue drains."""
        self._idle_hooks.append(hook)

    def remove_idle_hook(self, hook: Callable[["Simulator"], None]) -> None:
        self._idle_hooks.remove(hook)

    # -- execution ----------------------------------------------------------------

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or stopped.

        Returns the simulation time when the run ended.  When the queue
        drains before ``until``, idle hooks run once; any events they
        schedule are then processed, so a hook can restart progress.
        """
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        dispatched = 0
        if self.profiler is not None:
            self.profiler.begin_run()
        try:
            while not self._stopped:
                handle = self._pop_runnable()
                if handle is None:
                    if self._fire_idle_hooks():
                        continue
                    if until is not None:
                        self.now = until
                    break
                if until is not None and handle.time > until:
                    heapq.heappush(self._queue, handle)
                    self.now = until
                    break
                self.now = handle.time
                fn, args = handle.fn, handle.args
                handle.cancel()
                assert fn is not None  # runnable handles always hold their callable
                recorder = self.recorder
                if recorder is not None:
                    # restore the causal context captured at schedule time
                    recorder.current = handle.ctx
                profiler = self.profiler
                if profiler is not None:
                    started = perf_counter_ns()
                    fn(*args)
                    profiler.account(
                        getattr(fn, "__qualname__", str(fn)),
                        perf_counter_ns() - started,
                    )
                else:
                    fn(*args)
                self.events_dispatched += 1
                dispatched += 1
                if max_events is not None and dispatched >= max_events:
                    break
        finally:
            self._running = False
            if self.profiler is not None:
                self.profiler.end_run()
        return self.now

    def run_for(self, duration: int) -> int:
        """Run for ``duration`` nanoseconds of simulated time."""
        return self.run(until=self.now + duration)

    def _pop_runnable(self) -> Optional[EventHandle]:
        while self._queue:
            handle = heapq.heappop(self._queue)
            if not handle.cancelled:
                return handle
        return None

    def _fire_idle_hooks(self) -> bool:
        """Run idle hooks; report whether any new events became runnable."""
        if not self._idle_hooks:
            return False
        for hook in list(self._idle_hooks):
            hook(self)
        return any(not handle.cancelled for handle in self._queue)

    # -- introspection --------------------------------------------------------------

    def pending_events(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return sum(1 for handle in self._queue if not handle.cancelled)

    def next_event_time(self) -> Optional[int]:
        for handle in sorted(self._queue):
            if not handle.cancelled:
                return handle.time
        return None
