"""Event loop for the Autonet simulator.

Time is an integer number of nanoseconds.  Events scheduled for the same
instant run in scheduling order (a monotonically increasing sequence number
breaks ties), which keeps runs deterministic for a fixed seed.

The scheduler is a *bucketed calendar queue*: one FIFO bucket per distinct
timestamp, plus a binary heap of the bucket timestamps themselves.  Pushing
an event is a dict lookup and a list append (plus one integer heap push the
first time a timestamp is seen); popping is an index increment into the
current bucket.  Because a bucket is drained in append order and the
sequence number grows monotonically, the dispatch order is *exactly* the
``(time, seq)`` order of the previous single-``heapq`` implementation --
``tests/sim/test_engine_order.py`` pins the equivalence property under
random arm/cancel/reschedule interleavings.  The win is that the heap
only ever compares machine integers (no ``EventHandle.__lt__`` Python
callbacks) and only holds one entry per *distinct* timestamp: with the
80 ns byte slot and the 1.2 ms Autopilot timer quantum, simultaneous
events are the common case.

The loop also supports *idle hooks*: callbacks invoked when the event queue
drains while the caller expected progress.  The runtime deadlock detector in
:mod:`repro.analysis.deadlock` uses this to notice packets that are in
flight with no event that could ever advance them -- exactly the symptom of
the broadcast deadlock in section 6.6.6 of the paper.
"""

from __future__ import annotations

from heapq import heappop, heappush
from time import perf_counter_ns
from typing import Any, Callable, Dict, List, Optional

from repro.obs.registry import MetricsRegistry


class EventHandle:
    """Cancellable reference to a scheduled event."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "ctx")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any],
                 args: tuple) -> None:
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False
        #: flight-recorder causal context captured at schedule time (the
        #: eid of the event being handled when this one was scheduled);
        #: None when no recorder is attached or the event is a causal root
        self.ctx: Optional[int] = None

    def cancel(self) -> None:
        """Prevent the event from running.  Safe to call more than once."""
        self.cancelled = True
        self.fn = None
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time} seq={self.seq} {state}>"


class Simulator:
    """Deterministic integer-nanosecond discrete-event simulator."""

    def __init__(self) -> None:
        self.now: int = 0
        #: bucketed calendar queue: timestamp -> FIFO list of handles
        self._buckets: Dict[int, List[EventHandle]] = {}
        #: min-heap of bucket timestamps (machine ints, C comparisons)
        self._times: List[int] = []
        #: bucket currently being drained (still present in _buckets so
        #: same-instant reschedules land behind the drain index)
        self._bucket: Optional[List[EventHandle]] = None
        self._bucket_time: int = 0
        self._bucket_pos: int = 0
        self._seq: int = 0
        self._running = False
        self._stopped = False
        self._idle_hooks: List[Callable[["Simulator"], None]] = []
        #: number of events dispatched so far (useful for budget guards)
        self.events_dispatched: int = 0
        #: simulation-wide metrics registry (repro.obs).  Disabled by
        #: default: the event loop itself stays free of per-event
        #: instrument calls; enable_metrics() registers snapshot-time
        #: collectors over the counters the loop keeps anyway.
        self.metrics = MetricsRegistry(enabled=False)
        self._metrics_registered = False
        #: optional flight recorder (repro.obs.flight.FlightRecorder).
        #: None (the default) is the fast path: every hook site in the
        #: simulation is then one attribute load plus a None test, and no
        #: event objects are allocated.  Attach before building
        #: components so boot-time events are captured.
        self.recorder = None
        #: optional event-loop profiler (repro.obs.profiler.
        #: EventLoopProfiler); None disables the per-event perf_counter
        #: calls entirely.
        self.profiler = None
        #: optional time-series sampler (repro.obs.timeseries.
        #: TimeSeriesSampler).  None (the default) costs nothing: the
        #: sampler is pull-only and drives itself with its own periodic
        #: event, so no dispatch-path code ever consults this attribute
        #: -- it exists so tools (doctor, watch) can find the sampler.
        self.sampler = None
        #: optional in-band path telemetry (repro.obs.inband.
        #: InbandTelemetry).  None (the default) is the fast path: every
        #: stamp site in switch/linkunit/fifo/host is one attribute load
        #: plus a None test, no hop records are allocated, and runs stay
        #: byte-identical (RS305 enforces the pattern at call sites).
        self.inband = None
        #: optional control-plane cost accounting (repro.obs.control.
        #: ControlAccounting).  None (the default) is the fast path:
        #: every send/retransmit/SRP hook in autopilot/reconfig/srp is
        #: one attribute load plus a None test and no counter cells are
        #: allocated (RS306 enforces the pattern at call sites).
        self.control = None
        #: optional traffic engine (repro.traffic.engine.TrafficEngine).
        #: None (the default) is the fast path: every delivery/drop
        #: stamp site in host/switch/fifo is one attribute load plus a
        #: None test, no flow state exists, and runs stay byte-identical
        #: (RS308 enforces the pattern at call sites).
        self.traffic = None

    def enable_metrics(self) -> None:
        """Turn on telemetry and publish the engine's own series."""
        self.metrics.enable()
        if not self._metrics_registered:
            self._metrics_registered = True
            self.metrics.collect(
                "sim_events_dispatched", lambda: self.events_dispatched
            )
            self.metrics.collect("sim_pending_events", self.pending_events)
            self.metrics.collect("sim_now_ns", lambda: self.now)

    # -- scheduling ------------------------------------------------------------

    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        self._seq += 1
        time = int(time)
        handle = EventHandle(time, self._seq, fn, args)
        if self.recorder is not None:
            # causality flows through the event loop: the scheduled event
            # inherits the context of whatever scheduled it
            handle.ctx = self.recorder.current
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [handle]
            heappush(self._times, time)
        else:
            bucket.append(handle)
        return handle

    def after(self, delay: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        # inlined at(): this is the hottest scheduling entry point
        time = self.now + int(delay)
        self._seq += 1
        handle = EventHandle(time, self._seq, fn, args)
        if self.recorder is not None:
            handle.ctx = self.recorder.current
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [handle]
            heappush(self._times, time)
        else:
            bucket.append(handle)
        return handle

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at the current instant, after pending work."""
        time = self.now
        self._seq += 1
        handle = EventHandle(time, self._seq, fn, args)
        if self.recorder is not None:
            handle.ctx = self.recorder.current
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [handle]
            heappush(self._times, time)
        else:
            bucket.append(handle)
        return handle

    # -- idle hooks --------------------------------------------------------------

    def add_idle_hook(self, hook: Callable[["Simulator"], None]) -> None:
        """Register a callback to run when the event queue drains."""
        self._idle_hooks.append(hook)

    def remove_idle_hook(self, hook: Callable[["Simulator"], None]) -> None:
        self._idle_hooks.remove(hook)

    # -- execution ----------------------------------------------------------------

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or stopped.

        Returns the simulation time when the run ended.  When the queue
        drains before ``until``, idle hooks run once; any events they
        schedule are then processed, so a hook can restart progress.
        """
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        dispatched = 0
        profiler = self.profiler
        if profiler is not None:
            profiler.begin_run()
        pop = self._pop_runnable
        try:
            while not self._stopped:
                handle = pop()
                if handle is None:
                    if self._fire_idle_hooks():
                        continue
                    if until is not None:
                        self.now = until
                    break
                time = handle.time
                if until is not None and time > until:
                    # un-consume the handle and release the bucket back to
                    # the heap: the clock rewinds to ``until``, so a later
                    # at() may legally arm an *earlier* timestamp, and the
                    # next run() must take the true minimum, not resume
                    # this bucket first.  Re-entering from the heap rescans
                    # from index 0, which is safe: dispatched handles read
                    # as cancelled and are skipped.
                    self._bucket_pos -= 1
                    heappush(self._times, self._bucket_time)
                    self._bucket = None
                    self.now = until
                    break
                self.now = time
                fn = handle.fn
                args = handle.args
                # inline cancel(): dispatched handles read as consumed and
                # drop their callable/argument references immediately
                handle.cancelled = True
                handle.fn = None
                handle.args = ()
                recorder = self.recorder
                if recorder is not None:
                    # restore the causal context captured at schedule time
                    recorder.current = handle.ctx
                profiler = self.profiler
                if profiler is not None:
                    started = perf_counter_ns()
                    fn(*args)  # type: ignore[misc]
                    profiler.account_call(fn, perf_counter_ns() - started)
                else:
                    fn(*args)  # type: ignore[misc]
                self.events_dispatched += 1
                dispatched += 1
                if max_events is not None and dispatched >= max_events:
                    break
        finally:
            self._running = False
            if self.profiler is not None:
                self.profiler.end_run()
        return self.now

    def run_for(self, duration: int) -> int:
        """Run for ``duration`` nanoseconds of simulated time."""
        return self.run(until=self.now + duration)

    def _pop_runnable(self) -> Optional[EventHandle]:
        """Consume and return the next live handle in (time, seq) order."""
        bucket = self._bucket
        buckets = self._buckets
        while True:
            if bucket is not None:
                pos = self._bucket_pos
                n = len(bucket)
                while pos < n:
                    handle = bucket[pos]
                    pos += 1
                    if not handle.cancelled:
                        self._bucket_pos = pos
                        return handle
                    # a handler may append to this bucket while it drains
                    n = len(bucket)
                # exhausted: drop the bucket and move on.  No same-time
                # append can happen later -- the clock only moves forward,
                # and at() refuses past timestamps.
                del buckets[self._bucket_time]
                self._bucket = bucket = None
            times = self._times
            if not times:
                return None
            time = heappop(times)
            # a bucket can be re-created (and its timestamp re-pushed)
            # after draining while now still equals it; skip stale entries
            found = buckets.get(time)
            if found is not None:
                self._bucket = bucket = found
                self._bucket_time = time
                self._bucket_pos = 0

    def _fire_idle_hooks(self) -> bool:
        """Run idle hooks; report whether any new events became runnable."""
        if not self._idle_hooks:
            return False
        for hook in list(self._idle_hooks):
            hook(self)
        return any(
            not handle.cancelled
            for bucket in self._buckets.values()
            for handle in bucket
        )

    # -- introspection --------------------------------------------------------------

    def pending_events(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return sum(
            1
            for bucket in self._buckets.values()
            for handle in bucket
            if not handle.cancelled
        )

    def next_event_time(self) -> Optional[int]:
        live = [
            time
            for time, bucket in self._buckets.items()
            if any(not handle.cancelled for handle in bucket)
        ]
        return min(live) if live else None
