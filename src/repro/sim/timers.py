"""Timer helpers and the Autopilot-style non-preemptive task scheduler.

The paper (section 5.4) describes Autopilot as interrupt routines plus
process-level tasks run to completion by a non-preemptive scheduler with a
timer queue whose resolution is 1.2 ms, driven by a 328 us timer interrupt.
:class:`TaskScheduler` models that structure: tasks scheduled for a timeout
actually run at the next timeout-resolution boundary at or after their due
time, and each task charges a configurable CPU cost that delays every later
task on the same processor.  That serialization is what makes a busy
control processor slow down reconfiguration, which E1 measures.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.constants import TIMEOUT_RESOLUTION_NS
from repro.obs.flight import CAT_TIMER
from repro.sim.engine import EventHandle, Simulator


class Periodic:
    """Run a callback every ``period`` ns until cancelled.

    ``name`` and ``owner`` identify the timer to an attached flight
    recorder; unnamed periodics stay silent.  Each tick is recorded as a
    causal *root* (the re-armed handle's context is detached), so chains
    start at the firing instead of trailing back through every earlier
    tick of the same timer.
    """

    def __init__(
        self,
        sim: Simulator,
        period: int,
        fn: Callable[[], Any],
        start_after: Optional[int] = None,
        name: Optional[str] = None,
        owner: Optional[str] = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive: {period}")
        self._sim = sim
        self.period = period
        self._fn = fn
        self.name = name
        self.owner = owner or "sim"
        self._handle: Optional[EventHandle] = None
        self._cancelled = False
        delay = period if start_after is None else start_after
        self._handle = sim.after(delay, self._tick)
        self._handle.ctx = None
        self._record("timer-arm")

    def _record(self, event: str) -> None:
        rec = self._sim.recorder
        if rec is not None and self.name is not None:
            rec.record(
                self._sim.now,
                self.owner,
                CAT_TIMER,
                event,
                advance=False,
                timer=self.name,
                period_ns=self.period,
            )

    def _tick(self) -> None:
        if self._cancelled:
            return
        self._handle = self._sim.after(self.period, self._tick)
        self._handle.ctx = None
        rec = self._sim.recorder
        if rec is not None and self.name is not None:
            # parent=None: the firing is a causal root, and advancing the
            # context makes everything the callback does chain to it
            rec.record(
                self._sim.now,
                self.owner,
                CAT_TIMER,
                "timer-fire",
                parent=None,
                timer=self.name,
            )
        self._fn()

    def cancel(self) -> None:
        self._cancelled = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
            self._record("timer-cancel")

    @property
    def active(self) -> bool:
        return not self._cancelled


class TaskScheduler:
    """Non-preemptive run-to-completion task scheduler for one processor.

    Tasks are procedure calls; at most one runs at a time.  A task that
    becomes runnable while another runs starts when the processor frees.
    ``resolution`` quantizes timer wakeups the way Autopilot's 1.2 ms timer
    queue does.
    """

    def __init__(
        self,
        sim: Simulator,
        resolution: int = TIMEOUT_RESOLUTION_NS,
        owner: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.resolution = resolution
        #: component name flight-recorded timer events are attributed to
        self.owner = owner or "sim"
        #: simulated time at which the processor next becomes free
        self._busy_until: int = 0
        #: total CPU time consumed (for utilization metrics)
        self.cpu_time_used: int = 0

    def _quantize(self, time: int) -> int:
        if self.resolution <= 1:
            return time
        remainder = time % self.resolution
        return time if remainder == 0 else time + (self.resolution - remainder)

    def run_after(
        self,
        delay: int,
        fn: Callable[..., Any],
        *args: Any,
        cost: int = 0,
    ) -> EventHandle:
        """Run ``fn`` after ``delay``, quantized to the timer resolution.

        ``cost`` is the CPU time the task consumes; later tasks queue
        behind it.
        """
        due = self._quantize(self.sim.now + delay)
        rec = self.sim.recorder
        if rec is not None:
            rec.record(
                self.sim.now,
                self.owner,
                CAT_TIMER,
                "timer-arm",
                advance=False,
                task=getattr(fn, "__qualname__", str(fn)),
                due_ns=due,
            )
        return self.sim.at(due, self._start_task, fn, args, cost)

    def run_soon(self, fn: Callable[..., Any], *args: Any, cost: int = 0) -> EventHandle:
        """Run ``fn`` as soon as the processor is free (no quantization)."""
        return self.sim.call_soon(self._start_task, fn, args, cost)

    def every(
        self,
        period: int,
        fn: Callable[[], Any],
        cost: int = 0,
        name: Optional[str] = None,
    ) -> Periodic:
        """Run ``fn`` periodically, charging ``cost`` CPU per invocation."""
        return Periodic(
            self.sim,
            period,
            lambda: self._start_task(fn, (), cost),
            name=name,
            owner=self.owner,
        )

    def _start_task(self, fn: Callable[..., Any], args: tuple, cost: int) -> None:
        if self.sim.now < self._busy_until:
            # processor busy: defer until it frees
            self.sim.at(self._busy_until, self._start_task, fn, args, cost)
            return
        if cost > 0:
            self._busy_until = self.sim.now + cost
            self.cpu_time_used += cost
            # model run-to-completion: effects land when the task finishes
            self.sim.at(self._busy_until, fn, *args)
        else:
            fn(*args)

    @property
    def busy(self) -> bool:
        return self.sim.now < self._busy_until
