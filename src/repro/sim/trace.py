"""Per-switch circular event logs and the merged-log debugging tool.

Section 6.7 of the paper: each Autopilot keeps an in-memory circular log of
reconfiguration events, timestamped with *local* clock values; an SRP
protocol retrieves the logs, and merging them -- after normalizing the
timestamps -- yields a complete history of a reconfiguration.  We model the
local clocks as the global simulation time plus a per-switch offset, so the
normalization step is a real (and testable) operation rather than a no-op.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class TraceEntry:
    """One log record, stamped with the owner's local clock."""

    local_time: int
    component: str
    event: str
    detail: str = ""

    def normalized(self, offset: int) -> "TraceEntry":
        return TraceEntry(self.local_time - offset, self.component, self.event, self.detail)


class TraceLog:
    """Bounded circular log of events for one component (switch)."""

    def __init__(self, component: str, capacity: int = 4096, clock_offset: int = 0) -> None:
        self.component = component
        self.capacity = capacity
        #: difference between this component's clock and global time
        self.clock_offset = clock_offset
        self._entries: Deque[TraceEntry] = deque(maxlen=capacity)
        #: total records ever logged (records beyond capacity are dropped
        #: from the log but still counted, like a real circular buffer)
        self.total_logged = 0

    def log(self, global_time: int, event: str, detail: str = "") -> None:
        self._entries.append(
            TraceEntry(global_time + self.clock_offset, self.component, event, detail)
        )
        self.total_logged += 1

    def entries(self) -> List[TraceEntry]:
        return list(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class MergedLog:
    """Merge per-switch logs into one globally ordered history (section 6.7)."""

    def __init__(self) -> None:
        self._logs: Dict[str, TraceLog] = {}

    def attach(self, log: TraceLog) -> None:
        self._logs[log.component] = log

    def merged(self, offsets: Optional[Dict[str, int]] = None) -> List[TraceEntry]:
        """Return all entries sorted by normalized time.

        ``offsets`` maps component name to its clock offset; by default the
        true offsets recorded on each log are used (perfect
        synchronization).  Passing imperfect offsets lets tests reproduce
        the paper's observation that merging is only useful when the
        normalization is precise.
        """
        entries: List[TraceEntry] = []
        for name, log in self._logs.items():
            offset = log.clock_offset if offsets is None else offsets.get(name, 0)
            entries.extend(entry.normalized(offset) for entry in log.entries())
        entries.sort(key=lambda e: (e.local_time, e.component))
        return entries

    def events_matching(self, event: str) -> List[TraceEntry]:
        return [entry for entry in self.merged() if entry.event == event]

    def components(self) -> Iterable[str]:
        return self._logs.keys()
