"""Seeded per-component random streams.

Every stochastic component draws from its own named stream so that adding
or removing one component never perturbs the random sequence seen by
another -- runs stay reproducible as the model grows.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory for independent, deterministically seeded random streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Derive a registry whose streams are independent of this one's."""
        return RngRegistry(self.child_seed(name))

    def child_seed(self, name: str) -> int:
        """A deterministic integer seed derived from this registry's seed.

        Used where a whole component (a simulated Network, a chaos
        schedule) takes a plain ``seed`` argument: deriving it here keeps
        the derived component reproducible while guaranteeing its streams
        are independent of ours -- fault-injection sampling can never
        perturb the simulation's own randomness.
        """
        digest = hashlib.sha256(f"{self.seed}/fork/{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")
