"""Discrete-event simulation kernel.

The kernel is deliberately small: an integer-nanosecond event loop with
deterministic tie-breaking (`engine`), timer and periodic-task helpers
(`timers`), seeded per-component random streams (`rng`), and the per-switch
circular trace logs used by the paper's merged-log debugging technique
(`trace`).
"""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.rng import RngRegistry
from repro.sim.timers import Periodic, TaskScheduler
from repro.sim.trace import MergedLog, TraceLog

__all__ = [
    "EventHandle",
    "Simulator",
    "RngRegistry",
    "Periodic",
    "TaskScheduler",
    "TraceLog",
    "MergedLog",
]
