"""The shared scenario driver: converge -> load -> cut -> reconverge.

Every observability CLI used to hand-roll the same four-beat scenario
(``python -m repro.obs paths`` and now ``python -m repro.traffic run``):
boot-converge the installation, run traffic for a while, cut cables,
reconverge, run traffic again.  :func:`drive_scenario` is that scenario
as one helper so the CLIs cannot drift apart, and
:func:`report_unknown_subcommand` is the other shared piece of CLI
behavior: both tools print a usage listing and exit 2 on a missing *or*
unknown subcommand instead of a bare argparse error.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, TextIO, Tuple

from repro.constants import SEC


@dataclass
class ScenarioResult:
    """What happened while driving one scenario."""

    converged: bool = False
    reconverged: bool = True
    cuts: List[Tuple[int, int]] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)


def drive_scenario(
    net,
    cuts: Sequence[Tuple[int, int]],
    load_ns: int = 0,
    timeout_ns: int = 60 * SEC,
    warn_stream: Optional[TextIO] = None,
) -> ScenarioResult:
    """Converge ``net``, run load, apply ``cuts``, reconverge, run load.

    If the network carries a traffic engine (``Network(traffic=...)``)
    that has not launched yet, the workload launches right after initial
    convergence -- measuring a *running* network's reconfiguration, not
    its boot.  ``load_ns`` simulated nanoseconds run on each side of the
    cut; warnings go to ``warn_stream`` (default stderr) and into the
    result.
    """
    stream = warn_stream if warn_stream is not None else sys.stderr
    result = ScenarioResult(cuts=list(cuts))

    def warn(message: str) -> None:
        result.warnings.append(message)
        print(f"warning: {message}", file=stream)

    result.converged = net.run_until_converged(timeout_ns=timeout_ns)
    if not result.converged:
        warn("initial configuration did not converge")
    traffic = getattr(net, "traffic", None)
    if traffic is not None and not traffic.launched:
        traffic.launch()
    if load_ns:
        net.run_for(load_ns)
    for a, b in cuts:
        net.cut_link(a, b)
    if cuts:
        result.reconverged = net.run_until_converged(timeout_ns=timeout_ns)
        if not result.reconverged:
            warn("post-cut reconfiguration did not converge")
    if load_ns:
        net.run_for(load_ns)
    return result


def report_unknown_subcommand(
    parser,
    sub,
    argv: Optional[Sequence[str]],
    extra: Sequence[str] = (),
    stream: Optional[TextIO] = None,
) -> Optional[int]:
    """Shared CLI behavior: list subcommands and return 2 when the first
    positional argument is missing or names no subcommand; None when the
    command line looks dispatchable (argparse takes it from there).

    ``extra`` lines (e.g. topology families) print verbatim after the
    listing.
    """
    out = stream if stream is not None else sys.stderr
    args = list(sys.argv[1:] if argv is None else argv)
    command = next((a for a in args if not a.startswith("-")), None)
    if command is not None and command in sub.choices:
        return None
    if command is None and ("-h" in args or "--help" in args):
        return None  # let argparse print full help
    parser.print_usage(out)
    if command is not None:
        print(f"unknown subcommand: {command!r}", file=out)
    print("subcommands:", file=out)
    helps = {
        action.dest: action.help
        for action in getattr(sub, "_choices_actions", [])
    }
    width = max((len(name) for name in sub.choices), default=8)
    for name in sub.choices:
        print(f"  {name:<{width}} {helps.get(name) or ''}", file=out)
    for line in extra:
        print(line, file=out)
    return 2
