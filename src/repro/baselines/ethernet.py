"""A 10 Mbit/s shared-medium Ethernet (the network Autonet replaced).

Every packet occupies the single shared channel for its serialization
time plus the interframe gap, so the aggregate bandwidth of the whole LAN
equals the link bandwidth -- the bottleneck motivating the paper
(section 1).  Contention is modeled as a FIFO over the shared medium with
truncated binary exponential backoff approximated by a small randomized
deferral on busy; at the loads the benches use, the FIFO serialization is
what dominates, matching the shape of the paper's argument without a full
CSMA/CD bit-level model.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.sim.engine import Simulator
from repro.types import Uid

#: 10 Mbit/s -> 800 ns per byte
ETHERNET_BYTE_TIME_NS = 800
#: 9.6 us interframe gap
INTERFRAME_GAP_NS = 9_600
#: preamble + SFD (8 bytes) + minimal framing overhead
FRAME_OVERHEAD_BYTES = 26
MIN_FRAME_BYTES = 64
MAX_FRAME_BYTES = 1518

#: broadcast destination
ETHERNET_BROADCAST = Uid((1 << 48) - 1)


class EthernetStation:
    """One host on the shared segment."""

    def __init__(self, ethernet: "Ethernet", uid: Uid, name: str = "") -> None:
        self.ethernet = ethernet
        self.uid = uid
        self.name = name or str(uid)
        self.on_receive: Optional[Callable[[Uid, Uid, int, object], None]] = None
        #: receive every frame on the segment (bridges observe all
        #: traffic to learn which side each host is on, section 6.8.2)
        self.promiscuous = False
        self.sent = 0
        self.received = 0

    def send(self, dest: Uid, data_bytes: int, payload: object = None,
             src: Optional[Uid] = None) -> bool:
        """Transmit a frame; ``src`` lets a transparent bridge forward a
        frame under its original source address (section 6.8.2)."""
        return self.ethernet.transmit(self, dest, data_bytes, payload, src=src)


class Ethernet:
    """The shared segment."""

    def __init__(self, sim: Simulator, name: str = "ether0", max_queue: int = 200) -> None:
        self.sim = sim
        self.name = name
        self.max_queue = max_queue
        self.stations: Dict[Uid, EthernetStation] = {}
        self._queue: Deque[Tuple[EthernetStation, Uid, int, object]] = deque()
        self._busy = False
        self.frames_carried = 0
        self.bytes_carried = 0
        self.frames_dropped = 0

    def attach(self, uid: Uid, name: str = "") -> EthernetStation:
        station = EthernetStation(self, uid, name)
        self.stations[uid] = station
        return station

    def transmit(self, station: EthernetStation, dest: Uid, data_bytes: int,
                 payload: object, src: Optional[Uid] = None) -> bool:
        if data_bytes > MAX_FRAME_BYTES - 18:
            raise ValueError(f"frame too large for Ethernet: {data_bytes}")
        if len(self._queue) >= self.max_queue:
            self.frames_dropped += 1
            return False
        self._queue.append((station, src or station.uid, dest, data_bytes, payload))
        if not self._busy:
            self._start_next()
        return True

    def _frame_time(self, data_bytes: int) -> int:
        frame = max(MIN_FRAME_BYTES, data_bytes + 18) + FRAME_OVERHEAD_BYTES
        return frame * ETHERNET_BYTE_TIME_NS + INTERFRAME_GAP_NS

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        station, src, dest, data_bytes, payload = self._queue.popleft()
        self.sim.after(
            self._frame_time(data_bytes), self._deliver,
            station, src, dest, data_bytes, payload,
        )

    def _deliver(self, station: EthernetStation, src: Uid, dest: Uid,
                 data_bytes: int, payload: object) -> None:
        self.frames_carried += 1
        self.bytes_carried += data_bytes
        station.sent += 1
        if dest == ETHERNET_BROADCAST:
            for other in self.stations.values():
                if other is not station:
                    self._hand_up(other, src, dest, data_bytes, payload)
        else:
            target = self.stations.get(dest)
            if target is not None:
                self._hand_up(target, src, dest, data_bytes, payload)
            for other in self.stations.values():
                if other.promiscuous and other is not station and other is not target:
                    self._hand_up(other, src, dest, data_bytes, payload)
        self._start_next()

    @staticmethod
    def _hand_up(station: EthernetStation, src: Uid, dest: Uid, data_bytes: int, payload: object) -> None:
        station.received += 1
        if station.on_receive is not None:
            station.on_receive(src, dest, data_bytes, payload)

    def utilization(self, elapsed_ns: int) -> float:
        """Fraction of the theoretical 10 Mbit/s actually carried."""
        if elapsed_ns <= 0:
            return 0.0
        return (self.bytes_carried * 8) / (elapsed_ns * 0.01)
