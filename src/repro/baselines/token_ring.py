"""An FDDI-like 100 Mbit/s token ring (the paper's commercial comparator).

Section 1's argument against FDDI: the aggregate network bandwidth is
limited to the link bandwidth, and ring latency grows with the number of
stations.  This model captures exactly those properties: a token rotates
around N stations (each adding a per-station latency plus propagation);
the token holder transmits queued frames up to a token-holding time;
frames traverse the ring to their destination.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.constants import US
from repro.sim.engine import Simulator
from repro.types import Uid

#: 100 Mbit/s -> 80 ns per byte
RING_BYTE_TIME_NS = 80
#: per-station repeater latency (FDDI-class)
STATION_LATENCY_NS = 600
#: per-hop fiber propagation (station spacing ~100 m)
HOP_PROPAGATION_NS = 500
#: token-holding time per visit
DEFAULT_THT_NS = 400 * US
RING_BROADCAST = Uid((1 << 48) - 1)


class RingStation:
    """One station on the ring."""

    def __init__(self, ring: "TokenRing", uid: Uid, index: int) -> None:
        self.ring = ring
        self.uid = uid
        self.index = index
        self.queue: Deque[Tuple[Uid, int, object, int]] = deque()
        self.on_receive: Optional[Callable[[Uid, Uid, int, object], None]] = None
        self.sent = 0
        self.received = 0

    def send(self, dest: Uid, data_bytes: int, payload: object = None) -> bool:
        if len(self.queue) >= self.ring.max_queue:
            self.ring.frames_dropped += 1
            return False
        self.queue.append((dest, data_bytes, payload, self.ring.sim.now))
        return True


class TokenRing:
    """The rotating-token MAC over a ring of stations."""

    def __init__(
        self,
        sim: Simulator,
        n_stations: int,
        tht_ns: int = DEFAULT_THT_NS,
        max_queue: int = 200,
    ) -> None:
        self.sim = sim
        self.tht_ns = tht_ns
        self.max_queue = max_queue
        self.stations: List[RingStation] = [
            RingStation(self, Uid(0x900000000000 + i), i) for i in range(n_stations)
        ]
        self.by_uid: Dict[Uid, RingStation] = {s.uid: s for s in self.stations}
        self._holder = 0
        self.frames_carried = 0
        self.bytes_carried = 0
        self.frames_dropped = 0
        self.latency_sum_ns = 0
        sim.call_soon(self._token_arrives)

    def hop_delay(self) -> int:
        return STATION_LATENCY_NS + HOP_PROPAGATION_NS

    def ring_hops(self, src_index: int, dst_index: int) -> int:
        n = len(self.stations)
        return (dst_index - src_index) % n or n

    def _token_arrives(self) -> None:
        station = self.stations[self._holder]
        spent = 0
        while station.queue and spent < self.tht_ns:
            dest, data_bytes, payload, queued_at = station.queue.popleft()
            frame_ns = (data_bytes + 28) * RING_BYTE_TIME_NS
            spent += frame_ns
            if dest == RING_BROADCAST:
                hops = len(self.stations)
                for other in self.stations:
                    if other is not station:
                        arrival = spent + self.ring_hops(station.index, other.index) * self.hop_delay()
                        self.sim.after(arrival, self._deliver, station, other, dest, data_bytes, payload, queued_at)
            else:
                target = self.by_uid.get(dest)
                if target is not None:
                    hops = self.ring_hops(station.index, target.index)
                    arrival = spent + hops * self.hop_delay()
                    self.sim.after(arrival, self._deliver, station, target, dest, data_bytes, payload, queued_at)
            self.frames_carried += 1
            self.bytes_carried += data_bytes
            station.sent += 1
        # pass the token to the next station
        self._holder = (self._holder + 1) % len(self.stations)
        self.sim.after(spent + self.hop_delay(), self._token_arrives)

    def _deliver(self, src: RingStation, dst: RingStation, dest: Uid, data_bytes: int, payload: object, queued_at: int) -> None:
        dst.received += 1
        self.latency_sum_ns += self.sim.now - queued_at
        if dst.on_receive is not None:
            dst.on_receive(src.uid, dest, data_bytes, payload)

    def mean_latency_ns(self) -> float:
        delivered = sum(s.received for s in self.stations)
        return self.latency_sum_ns / delivered if delivered else 0.0
