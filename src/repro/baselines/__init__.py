"""Comparators: the networks and routings Autonet is evaluated against.

* :mod:`ethernet` -- the 10 Mbit/s shared-medium LAN Autonet replaced.
* :mod:`token_ring` -- an FDDI-like 100 Mbit/s token ring (section 1's
  comparison: aggregate bandwidth limited to link bandwidth, latency
  proportional to the number of stations).
* :mod:`routing_ablation` -- spanning-tree-only forwarding (802.1-bridge
  style) and unrestricted shortest-path forwarding, the two routings
  up*/down* is measured against in E11.
"""

from repro.baselines.ethernet import Ethernet, EthernetStation
from repro.baselines.token_ring import TokenRing, RingStation
from repro.baselines.routing_ablation import (
    build_shortest_path_entries,
    tree_only_topology,
)

__all__ = [
    "Ethernet",
    "EthernetStation",
    "TokenRing",
    "RingStation",
    "build_shortest_path_entries",
    "tree_only_topology",
]
