"""Routing ablations for E11 (section 3.6 / 6.6.4).

Up*/down* is compared against the two obvious alternatives:

* **tree-only routing** (802.1-bridge style): restrict every route to
  spanning-tree links.  Deadlock-free, but cross links carry nothing, so
  capacity concentrates at the root.
* **unrestricted shortest-path routing**: minimum-hop over all links with
  no direction rule.  Uses every link, but its channel-dependency graph
  generally has cycles, i.e. it can deadlock under Autonet's no-discard
  flow control.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Optional, Tuple

from repro.constants import CONTROL_PROCESSOR_PORT, PORTS_PER_SWITCH
from repro.core.topo import TopologyMap
from repro.net.forwarding import DISCARD_ENTRY, ForwardingEntry
from repro.types import Uid, make_short_address


def tree_only_topology(topology: TopologyMap) -> TopologyMap:
    """A copy of the topology containing only spanning-tree links."""
    tree_links = set()
    for uid, record in topology.switches.items():
        if record.parent_uid is None or record.parent_port is None:
            continue
        for link in topology.links:
            if link.is_loop:
                continue
            ends = {link.a.uid, link.b.uid}
            if ends != {uid, record.parent_uid}:
                continue
            if link.endpoint_at(uid).port == record.parent_port:
                tree_links.add(link)
                break
    return TopologyMap(
        root=topology.root,
        switches=dict(topology.switches),
        links=tree_links,
        numbers=dict(topology.numbers),
    )


def build_shortest_path_entries(
    topology: TopologyMap,
    my_uid: Uid,
    my_host_ports: Optional[FrozenSet[int]] = None,
    n_ports: int = PORTS_PER_SWITCH,
) -> Dict[Tuple[int, int], ForwardingEntry]:
    """Minimum-hop forwarding with no up*/down* restriction.

    Entries are independent of the receiving port (any input may use any
    shortest-path output), which is what admits circular channel
    dependencies.
    """
    me = topology.switches[my_uid]
    host_ports = set(my_host_ports if my_host_ports is not None else me.host_ports)

    # plain BFS distances per destination
    adjacency: Dict[Uid, Dict[int, Uid]] = {
        uid: {p: ref.uid for p, ref in topology.neighbors(uid).items()}
        for uid in topology.switches
    }

    entries: Dict[Tuple[int, int], ForwardingEntry] = {}
    in_ports = list(range(0, n_ports + 1))
    for dest_uid in topology.switches:
        number = topology.numbers.get(dest_uid)
        if number is None:
            continue
        if dest_uid == my_uid:
            for q in range(0, n_ports + 1):
                address = make_short_address(number, q)
                if q == CONTROL_PROCESSOR_PORT:
                    entry = ForwardingEntry((CONTROL_PROCESSOR_PORT,))
                elif q in host_ports:
                    entry = ForwardingEntry((q,))
                else:
                    entry = DISCARD_ENTRY
                for i in in_ports:
                    entries[(i, address)] = entry
            continue
        dist = _bfs_distance(adjacency, dest_uid)
        here = dist.get(my_uid, float("inf"))
        ports = tuple(
            sorted(
                p
                for p, far_uid in adjacency[my_uid].items()
                if dist.get(far_uid, float("inf")) + 1 == here
            )
        )
        entry = ForwardingEntry(ports) if ports else DISCARD_ENTRY
        for q in range(0, n_ports + 1):
            address = make_short_address(number, q)
            for i in in_ports:
                entries[(i, address)] = entry
    return entries


def _bfs_distance(adjacency: Dict[Uid, Dict[int, Uid]], dest: Uid) -> Dict[Uid, float]:
    dist: Dict[Uid, float] = {dest: 0.0}
    frontier = deque([dest])
    while frontier:
        node = frontier.popleft()
        for far in adjacency[node].values():
            if far not in dist:
                dist[far] = dist[node] + 1
                frontier.append(far)
    return dist
