"""Reproduction of "Automatic Reconfiguration in Autonet" (SOSP 1991).

A discrete-event Autonet: crossbar switches with cut-through forwarding
and start/stop flow control, Autopilot port-state monitoring with
skeptics, the distributed reconfiguration algorithm with termination
detection, up*/down* deadlock-free routing, dual-ported hosts with
LocalNet address learning, and the baselines the paper argues against.

Quick start::

    from repro import Network, torus

    net = Network(torus(3, 4))
    net.run_until_converged()
    net.cut_link(0, 1)            # Autopilot reconfigures around it
    net.run_until_converged()
    print(net.epoch_duration())   # the paper's headline metric (ns)
"""

from repro.core.autopilot import Autopilot, AutopilotParams, CpuModel
from repro.core.portstate import PortState
from repro.core.routing import build_forwarding_entries
from repro.core.topo import TopologyMap
from repro.host.controller import HostController
from repro.host.driver import AutonetDriver
from repro.host.localnet import BROADCAST_UID, LocalNet
from repro.net.packet import Packet, PacketType
from repro.net.switch import Switch
from repro.network import Network
from repro.sim.engine import Simulator
from repro.topology import (
    line,
    mesh,
    random_regular,
    ring,
    src_service_lan,
    torus,
    tree,
)
from repro.types import Uid, make_short_address, split_short_address

__version__ = "1.0.0"

__all__ = [
    "Autopilot",
    "AutopilotParams",
    "CpuModel",
    "PortState",
    "build_forwarding_entries",
    "TopologyMap",
    "HostController",
    "AutonetDriver",
    "LocalNet",
    "BROADCAST_UID",
    "Packet",
    "PacketType",
    "Switch",
    "Network",
    "Simulator",
    "line",
    "mesh",
    "random_regular",
    "ring",
    "src_service_lan",
    "torus",
    "tree",
    "Uid",
    "make_short_address",
    "split_short_address",
    "__version__",
]
