"""Shared value types: UIDs, short addresses, node identities."""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import (
    ADDR_BROADCAST_ALL,
    ADDR_BROADCAST_HOSTS,
    ADDR_BROADCAST_SWITCHES,
    ADDR_FIRST_ASSIGNABLE,
    ADDR_LAST_ASSIGNABLE,
    ADDR_LOOPBACK,
    ADDR_ONE_HOP_BASE,
    ADDR_ONE_HOP_LIMIT,
    PORT_NUMBER_BITS,
    SHORT_ADDRESS_BITS,
)

#: mask selecting the low SHORT_ADDRESS_BITS of an address value
SHORT_ADDRESS_MASK = (1 << SHORT_ADDRESS_BITS) - 1
PORT_MASK = (1 << PORT_NUMBER_BITS) - 1

#: highest switch number encodable in a short address
MAX_SWITCH_NUMBER = (ADDR_LAST_ASSIGNABLE >> PORT_NUMBER_BITS)


@dataclass(frozen=True, order=True, slots=True)
class Uid:
    """A 48-bit unique identifier burned into every switch and controller.

    Ordering matters: the reconfiguration algorithm breaks ties by UID
    (root election, parent choice, switch-number conflicts).
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << 48):
            raise ValueError(f"UID out of 48-bit range: {self.value:#x}")

    def __repr__(self) -> str:
        return f"Uid({self.value:#x})"

    def __str__(self) -> str:
        return f"{self.value:012x}"


def make_short_address(switch_number: int, port: int) -> int:
    """Form a short address from a switch number and port number (§6.6.3)."""
    if not 1 <= switch_number <= MAX_SWITCH_NUMBER:
        raise ValueError(f"switch number out of range: {switch_number}")
    if not 0 <= port <= PORT_MASK:
        raise ValueError(f"port out of range: {port}")
    return (switch_number << PORT_NUMBER_BITS) | port


def split_short_address(address: int) -> tuple:
    """Split an assignable short address into (switch number, port)."""
    address &= SHORT_ADDRESS_MASK
    return address >> PORT_NUMBER_BITS, address & PORT_MASK


def truncate_address(address: int) -> int:
    """Prototype switches interpret only the low 11 bits (§6.3)."""
    return address & SHORT_ADDRESS_MASK


def is_assignable(address: int) -> bool:
    address = truncate_address(address)
    return ADDR_FIRST_ASSIGNABLE <= address <= ADDR_LAST_ASSIGNABLE


def is_broadcast(address: int) -> bool:
    address = truncate_address(address)
    return address in (ADDR_BROADCAST_ALL, ADDR_BROADCAST_SWITCHES, ADDR_BROADCAST_HOSTS)


def is_one_hop(address: int) -> bool:
    address = truncate_address(address)
    return ADDR_ONE_HOP_BASE <= address <= ADDR_ONE_HOP_LIMIT


def is_loopback(address: int) -> bool:
    return truncate_address(address) == ADDR_LOOPBACK
