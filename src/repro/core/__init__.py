"""Autopilot: the paper's core contribution.

Port-state monitoring (status sampler, connectivity monitor, skeptics),
the distributed reconfiguration algorithm with termination detection,
switch-number / short-address assignment, and up*/down* routing.
"""

from repro.core.portstate import PortState
from repro.core.routing import build_forwarding_entries, link_direction
from repro.core.topo import NetLink, PortRef, SwitchRecord, TopologyMap
from repro.core.treepos import TreePosition

__all__ = [
    "PortState",
    "build_forwarding_entries",
    "link_direction",
    "NetLink",
    "PortRef",
    "SwitchRecord",
    "TopologyMap",
    "TreePosition",
]
