"""Autopilot: the switch control program (section 5.4).

One instance runs on each switch's control processor.  Its structure
follows the paper: interrupt-level packet queues feeding process-level
tasks under a non-preemptive scheduler with a timer queue, a status
sampler and connectivity monitor classifying ports, skeptics stabilizing
them, and the distributed reconfiguration engine.  CPU costs are explicit
(the 68000 was slow; the difference between the "easy to understand"
first implementation's 5 s reconfigurations and the tuned 0.5 s version
was mostly processing cost), so :class:`CpuModel` has ``tuned`` and
``naive`` profiles that E1 compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.constants import (
    ADDR_BROADCAST_SWITCHES,
    ADDR_ONE_HOP_BASE,
    CONTROL_PROCESSOR_PORT,
    MS,
    US,
)
from repro.core.messages import (
    AckMsg,
    CodeDownloadMsg,
    ConfigMsg,
    ConnectivityProbe,
    ConnectivityReply,
    ControlMessage,
    HostAddressRequest,
    HostAddressReply,
    LinkDownMsg,
    SrpMessage,
    StableMsg,
    TreePositionMsg,
)
from repro.core.monitor import MonitorParams, Monitoring, NeighborInfo
from repro.core.reconfig import ReconfigEngine, ReconfigParams
from repro.core.srp import SrpHandler
from repro.core.topo import TopologyMap
from repro.net.packet import Packet, PacketType
from repro.net.switch import Switch
from repro.obs.flight import CAT_EPOCH, CAT_MESSAGE
from repro.sim.engine import Simulator
from repro.sim.timers import Periodic, TaskScheduler
from repro.sim.trace import TraceLog
from repro.types import Uid, make_short_address


@dataclass
class CpuModel:
    """Control-processor cost model (all times in nanoseconds)."""

    packet_handle_ns: int = 300 * US
    probe_handle_ns: int = 150 * US
    sampler_run_ns: int = 200 * US
    route_base_ns: int = 25 * MS
    route_per_switch_ns: int = 1_500 * US
    assign_base_ns: int = 5 * MS
    assign_per_switch_ns: int = 200 * US
    table_load_ns: int = 6 * MS

    def route_cost(self, n_switches: int) -> int:
        return self.route_base_ns + n_switches * self.route_per_switch_ns

    def assign_cost(self, n_switches: int) -> int:
        return self.assign_base_ns + n_switches * self.assign_per_switch_ns

    @classmethod
    def tuned(cls) -> "CpuModel":
        """The improved implementation (~0.17-0.5 s on the SRC LAN)."""
        return cls()

    @classmethod
    def naive(cls) -> "CpuModel":
        """The first, easy-to-debug implementation (~5 s reconfigs)."""
        return cls(
            packet_handle_ns=5 * MS,
            probe_handle_ns=2 * MS,
            sampler_run_ns=2 * MS,
            route_base_ns=800 * MS,
            route_per_switch_ns=30 * MS,
            assign_base_ns=100 * MS,
            assign_per_switch_ns=5 * MS,
            table_load_ns=150 * MS,
        )


@dataclass
class AutopilotParams:
    """All tunables of one Autopilot instance."""

    monitor: MonitorParams = field(default_factory=MonitorParams)
    reconfig: ReconfigParams = field(default_factory=ReconfigParams)
    cpu: CpuModel = field(default_factory=CpuModel.tuned)

    @classmethod
    def naive(cls) -> "AutopilotParams":
        """The first implementation: slow CPU paths *and* matching slow
        monitor cadences.  (With fast monitors over a slow CPU, the 400 ms
        route-computation block starves probe replies and the network
        flaps -- the responsiveness/stability tension of section 4.4.)"""
        params = cls(cpu=CpuModel.naive())
        params.reconfig.retx_period_ns = 500 * MS
        params.reconfig.config_timeout_ns = 30_000 * MS
        params.monitor.sample_period_ns = 50 * MS
        params.monitor.probe_period_ns = 4_000 * MS
        params.monitor.probe_miss_limit = 3
        params.monitor.blockage_sample_limit = 100
        params.monitor.progress_sample_limit = 100
        return params


class Autopilot:
    """The control program of one switch."""

    def __init__(
        self,
        switch: Switch,
        params: Optional[AutopilotParams] = None,
        clock_offset: int = 0,
        software_version: int = 1,
    ) -> None:
        self.switch = switch
        self.sim: Simulator = switch.sim
        self.params = params or AutopilotParams()
        self.cpu = self.params.cpu
        self.alive = True
        #: running Autopilot release; newer CodeDownloadMsg images replace
        #: this instance (section 5.4)
        self.software_version = software_version
        #: reboot hook, set by the Network facade: fn(new_version)
        self.on_code_download: Optional[Callable[[int], None]] = None

        self.scheduler = TaskScheduler(self.sim, owner=switch.name)
        self.trace = TraceLog(switch.name, clock_offset=clock_offset)
        self.monitoring = Monitoring(self, self.params.monitor)
        self.engine = ReconfigEngine(self, self.params.reconfig)
        self.srp = SrpHandler(self)

        switch.on_cp_packet = self._rx_interrupt

        #: hooks for the Network facade / experiments
        self.on_configured_hook: Optional[Callable[[int, TopologyMap], None]] = None
        #: structured telemetry feed (repro.obs.spans.ReconfigTracer):
        #: fn(time_ns, switch_name, event, attrs).  None = tracing off,
        #: which costs one attribute test per control-plane transition.
        self.on_obs_event: Optional[Callable[[int, str, str, Dict], None]] = None

        self._periodics: List[Periodic] = [
            self.scheduler.every(
                self.params.monitor.sample_period_ns,
                self.monitoring.sample_all,
                cost=self.cpu.sampler_run_ns,
                name="status-sampler",
            ),
            self.scheduler.every(
                self.params.monitor.probe_period_ns,
                self.monitoring.probe_all,
                cost=self.cpu.probe_handle_ns,
                name="conn-prober",
            ),
        ]

        # A switch with no switch-to-switch links never sees a
        # s.switch.good transition, so nothing would ever build its
        # forwarding table.  If no epoch has begun shortly after boot,
        # run the initial configuration (a one-switch spanning tree).
        self.sim.after(2_000 * MS, self._boot_configuration_check)

        # statistics
        self.packets_handled = 0
        self.crc_errors = 0
        #: reconfiguration messages dropped because the arrival port was
        #: not (yet) s.switch.good -- see the gate in _process
        self.reconfig_msgs_gated = 0

    def _boot_configuration_check(self) -> None:
        if self.alive and self.engine.epoch == 0:
            self.trigger_reconfiguration("initial boot configuration")

    # -- identity ------------------------------------------------------------------------

    @property
    def uid(self) -> Uid:
        return self.switch.uid

    @property
    def epoch(self) -> int:
        return self.engine.epoch

    @property
    def configured(self) -> bool:
        return self.engine.configured

    @property
    def short_address(self) -> int:
        return make_short_address(self.engine.my_number, CONTROL_PROCESSOR_PORT)

    # -- lifecycle ------------------------------------------------------------------------

    def halt(self) -> None:
        """The control processor stops (switch crash or power-off)."""
        self.alive = False
        for periodic in self._periodics:
            periodic.cancel()
        self._periodics.clear()
        self.engine.halt()

    # -- transport ------------------------------------------------------------------------

    def send_one_hop(self, port: int, message: ControlMessage) -> None:
        """Send a control message to the neighbor on ``port``."""
        if not self.alive:
            return
        ptype = (
            PacketType.CONNECTIVITY
            if isinstance(message, (ConnectivityProbe, ConnectivityReply))
            else PacketType.RECONFIGURATION
        )
        packet = Packet(
            dest_short=ADDR_ONE_HOP_BASE + port - 1,
            src_short=self.short_address,
            ptype=ptype,
            data_bytes=message.encoded_bytes(),
            payload=message,
            created_at=self.sim.now,
        )
        self._record_send(packet, message, port=port)
        self.switch.inject_from_cp(packet)

    def send_addressed(self, dest_short: int, message: ControlMessage, ptype: PacketType) -> None:
        """Send to an arbitrary short address via the forwarding tables."""
        if not self.alive:
            return
        packet = Packet(
            dest_short=dest_short,
            src_short=self.short_address,
            ptype=ptype,
            data_bytes=message.encoded_bytes(),
            payload=message,
            created_at=self.sim.now,
        )
        self._record_send(packet, message)
        self.switch.inject_from_cp(packet)

    def _record_send(
        self, packet: Packet, message: ControlMessage, port: Optional[int] = None
    ) -> None:
        """Flight-record a control-message send and stamp the packet.

        ``advance=False``: the causal story continues on the receiving
        switch (via the stamped id), not in whatever this handler does
        next.
        """
        rec = self.sim.recorder
        if rec is not None:
            packet.flight_eid = rec.record(
                self.sim.now,
                self.switch.name,
                CAT_MESSAGE,
                "msg-send",
                advance=False,
                msg=type(message).__name__,
                epoch=getattr(message, "epoch", None),
                port=port,
                dest=packet.dest_short,
            )
        acct = self.sim.control
        if acct is not None:
            acct.record_send(
                self.engine.epoch,
                type(message).__name__,
                self.engine.phase,
                packet.wire_bytes,
            )

    # -- packet reception --------------------------------------------------------------------

    def _rx_interrupt(self, packet: Packet) -> None:
        """Interrupt level: enqueue for process-level handling."""
        if not self.alive:
            return
        self.scheduler.run_soon(self._process, packet, cost=self.cpu.packet_handle_ns)

    def _process(self, packet: Packet) -> None:
        if not self.alive:
            return
        self.packets_handled += 1
        if packet.corrupted:
            # CRCs on CP packets are checked in software (section 5.1)
            self.crc_errors += 1
            return
        message = packet.payload
        if message is None:
            return
        in_port = packet.trail[-1][1] if packet.trail else CONTROL_PROCESSOR_PORT

        rec = self.sim.recorder
        if rec is not None:
            # parent crosses the wire: the send event stamped the packet.
            # advance=True makes everything this message causes chain here.
            rec.record(
                self.sim.now,
                self.switch.name,
                CAT_MESSAGE,
                "msg-recv",
                parent=packet.flight_eid,
                msg=type(message).__name__,
                epoch=getattr(message, "epoch", None),
                port=in_port,
                flow=packet.flight_eid,
            )

        if isinstance(message, ConnectivityProbe):
            self.monitoring.on_probe(in_port, message)
            return
        if isinstance(message, ConnectivityReply):
            self.monitoring.on_probe_reply(in_port, message)
            return
        if isinstance(message, HostAddressRequest):
            self._answer_host_address(in_port, message)
            return
        if isinstance(message, SrpMessage):
            self.srp.handle(in_port, message)
            return

        if isinstance(message, CodeDownloadMsg):
            # a new release: accept it, boot it; the facade rebuilds this
            # control program and schedules onward propagation (§5.4)
            if message.version > self.software_version and self.on_code_download:
                self.log("code-download", f"version={message.version}")
                self.on_code_download(message.version)
            return

        if isinstance(
            message, (TreePositionMsg, AckMsg, StableMsg, ConfigMsg, LinkDownMsg)
        ) and (
            in_port != CONTROL_PROCESSOR_PORT
            and not self.monitoring.is_good(in_port)
        ):
            # An epoch's link set consists of s.switch.good ports (§6.6.2),
            # and the skeptics exist to bless a link before it can disturb
            # the network (§6.5.5).  A reconfiguration message arriving on
            # an unblessed port must not drag us into its epoch: a freshly
            # rebooted switch would otherwise join a stale in-flight epoch
            # with zero good ports, find itself vacuously stable, and
            # configure as a bogus one-switch network while its real
            # neighbors move on.  Drop it; retransmission and the port
            # state machine reconcile the views once the port is good.
            self.reconfig_msgs_gated += 1
            return

        if isinstance(message, LinkDownMsg):
            if self.engine.maybe_join(message.epoch) != "old":
                self.engine.on_link_down(message)
            return

        if isinstance(message, (TreePositionMsg, AckMsg, StableMsg, ConfigMsg)):
            verdict = self.engine.maybe_join(message.epoch)
            if verdict == "old":
                if isinstance(message, (TreePositionMsg, StableMsg, ConfigMsg)):
                    self.engine.nudge(in_port)  # drag the laggard forward
                return
            if isinstance(message, TreePositionMsg):
                self.engine.on_tree_position(in_port, message)
            elif isinstance(message, AckMsg):
                self.engine.on_ack(in_port, message)
            elif isinstance(message, StableMsg):
                self.engine.on_stable(in_port, message)
            elif isinstance(message, ConfigMsg):
                self.engine.on_config(in_port, message)

    # -- services --------------------------------------------------------------------------------

    def _answer_host_address(self, in_port: int, message: HostAddressRequest) -> None:
        """Answer a host's short-address request (sections 5.4, 6.3)."""
        if not self.configured or in_port == CONTROL_PROCESSOR_PORT:
            return
        address = make_short_address(self.engine.my_number, in_port)
        self.send_addressed(
            address,
            HostAddressReply(
                epoch=self.epoch,
                sender_uid=self.uid,
                short_address=address,
            ),
            ptype=PacketType.DIAGNOSTIC,
        )

    # -- interfaces used by monitoring and the reconfig engine --------------------------------------

    def log(self, event: str, detail: str = "") -> None:
        self.trace.log(self.sim.now, event, detail)

    def obs_event(self, event: str, **attrs) -> None:
        """Emit one structured telemetry event (no-op when untraced).

        The same feed lands in the flight recorder as an epoch-category
        event, so phase marks (trigger, epoch-start, unconfigure,
        termination, table-loaded, config-timeout) appear on the causal
        timeline without a second set of hook sites.
        """
        if self.on_obs_event is not None:
            self.on_obs_event(self.sim.now, self.switch.name, event, attrs)
        rec = self.sim.recorder
        if rec is not None:
            rec.record(self.sim.now, self.switch.name, CAT_EPOCH, event, **attrs)

    def good_ports(self):
        return self.monitoring.good_ports()

    def host_ports(self):
        return self.monitoring.host_ports()

    def neighbor_of(self, port: int) -> Optional[NeighborInfo]:
        return self.monitoring.neighbor_of(port)

    def trigger_reconfiguration(self, reason: str, down_port: Optional[int] = None) -> None:
        if not self.alive:
            return
        self.log("reconfig-trigger", reason)
        self.obs_event("trigger", reason=reason, port=down_port)
        if down_port is not None and self.engine.try_local_link_down(down_port):
            return  # handled without a new epoch (section 7 extension)
        self.engine.initiate(reason)

    def broadcast_to_switches(self, message: ControlMessage) -> None:
        """Flood a control message to every switch CP (address FFFE)."""
        self.send_addressed(
            ADDR_BROADCAST_SWITCHES, message, ptype=PacketType.RECONFIGURATION
        )

    def host_ports_changed(self) -> None:
        """A port entered or left s.host: refresh the local table.

        The prototype couples table loads with a switch reset, making host
        link isolation disruptive (section 7); we model the same.
        """
        topology = self.engine.topology
        if topology is None or not self.configured or self.uid not in topology.switches:
            return
        from repro.core.routing import build_forwarding_entries

        entries = build_forwarding_entries(
            topology, self.uid, my_host_ports=frozenset(self.host_ports())
        )
        self.load_forwarding(entries, reset=self.params.reconfig.reset_on_load)

    def clear_forwarding(self, reset: bool = True) -> None:
        self.switch.clear_table(reset_on_load=reset)

    def load_forwarding(self, entries: Dict, reset: bool = True) -> None:
        # entries come from build_forwarding_entries, whose addresses are
        # in range by construction: take the C-speed load path
        self.switch.load_table(entries, reset_on_load=reset, pretruncated=True)

    def run_task(self, fn: Callable[[], None], cost: int = 0) -> None:
        self.scheduler.run_soon(fn, cost=cost)

    def on_configured(self, epoch: int, topology: TopologyMap) -> None:
        if self.on_configured_hook is not None:
            self.on_configured_hook(epoch, topology)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Autopilot {self.switch.name} epoch={self.epoch}>"
