"""Up*/down* route computation and forwarding-table fill (section 6.6.4).

The spanning tree imposes a direction on every operational link: the "up"
end is the end closer to the root (ties broken by lower UID).  A legal
route traverses zero or more links up, then zero or more links down --
never up after down -- which makes the directed channel-dependency graph
acyclic and hence the network deadlock-free while still using every link.

Autopilot fills the tables with only the *minimum hop count* legal routes
(the paper's current version).  Because tables are indexed by the
receiving port as well as the destination, the up*/down* rule is enforced
locally: a packet that arrived over a "down" traversal gets only "down"
continuations, and entries that would violate the rule discard the packet
(protecting against corrupted short addresses).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.constants import (
    ADDR_BROADCAST_ALL,
    ADDR_BROADCAST_HOSTS,
    ADDR_BROADCAST_SWITCHES,
    CONTROL_PROCESSOR_PORT,
    PORTS_PER_SWITCH,
)
from repro.core.topo import NetLink, PortRef, TopologyMap
from repro.net.forwarding import DISCARD_ENTRY, ForwardingEntry
from repro.types import Uid, make_short_address

#: phases of a legal route: UP may still climb; DOWN must descend
UP, DOWN = 0, 1


def link_direction(topology: TopologyMap, link: NetLink) -> PortRef:
    """Return the link's "up" end (closer to the root; ties by lower UID)."""
    level_a = topology.level(link.a.uid)
    level_b = topology.level(link.b.uid)
    if level_a != level_b:
        return link.a if level_a < level_b else link.b
    return link.a if link.a.uid < link.b.uid else link.b


def legal_distances(topology: TopologyMap, dest: Uid) -> Dict[Tuple[Uid, int], float]:
    """Minimum legal-route hop counts to ``dest`` from every (switch, phase).

    ``dist[(s, UP)]`` assumes the packet at ``s`` may still go up;
    ``dist[(s, DOWN)]`` assumes it has already descended.  Unreachable
    states get ``inf``.
    """
    dist: Dict[Tuple[Uid, int], float] = {
        (uid, phase): float("inf")
        for uid in topology.switches
        for phase in (UP, DOWN)
    }
    dist[(dest, UP)] = 0.0
    dist[(dest, DOWN)] = 0.0

    # reverse adjacency over the layered graph
    preds: Dict[Tuple[Uid, int], List[Tuple[Uid, int]]] = {key: [] for key in dist}
    for link in topology.links:
        if link.is_loop:
            continue
        up_end = link_direction(topology, link)
        down_end = link.other_end(up_end.uid)
        uu, dd = up_end.uid, down_end.uid
        # forward: (dd, UP) --up--> (uu, UP)
        preds[(uu, UP)].append((dd, UP))
        # forward: (uu, UP) --down--> (dd, DOWN); (uu, DOWN) --down--> (dd, DOWN)
        preds[(dd, DOWN)].append((uu, UP))
        preds[(dd, DOWN)].append((uu, DOWN))

    frontier = deque([(dest, UP), (dest, DOWN)])
    while frontier:
        state = frontier.popleft()
        for pred in preds[state]:
            if dist[pred] == float("inf"):
                dist[pred] = dist[state] + 1
                frontier.append(pred)
    return dist


def arrival_phase(topology: TopologyMap, uid: Uid, in_port: int) -> int:
    """Phase of a packet arriving at ``uid`` on ``in_port``.

    Arrivals from hosts or the control processor have used no
    switch-to-switch link, so they may still go up.
    """
    neighbors = topology.neighbors(uid)
    if in_port not in neighbors:
        return UP
    far = neighbors[in_port]
    link = NetLink(PortRef(uid, in_port), far)
    up_end = link_direction(topology, link)
    # if we are the up end, the packet climbed toward the root: still UP
    return UP if up_end.uid == uid and up_end.port == in_port else DOWN


def next_hop_ports(
    topology: TopologyMap,
    uid: Uid,
    phase: int,
    dest: Uid,
    dist: Dict[Tuple[Uid, int], float],
) -> Tuple[int, ...]:
    """Output ports lying on some minimum-hop legal route toward ``dest``."""
    here = dist[(uid, phase)]
    if here == float("inf"):
        return ()
    ports: List[int] = []
    for port, far in topology.neighbors(uid).items():
        link = NetLink(PortRef(uid, port), far)
        up_end = link_direction(topology, link)
        going_up = up_end.uid == far.uid and up_end.port == far.port
        if phase == DOWN and going_up:
            continue  # never up after down
        next_phase = UP if going_up else DOWN
        if dist[(far.uid, next_phase)] + 1 == here:
            ports.append(port)
    return tuple(sorted(ports))


def build_forwarding_entries(
    topology: TopologyMap,
    my_uid: Uid,
    my_host_ports: Optional[FrozenSet[int]] = None,
    n_ports: int = PORTS_PER_SWITCH,
) -> Dict[Tuple[int, int], ForwardingEntry]:
    """Compute one switch's forwarding table for the given configuration.

    ``my_host_ports`` overrides the host-port set recorded in the topology
    (the local switch knows its own port states most currently).
    Entries cover every assignable short address in use plus the three
    broadcast addresses; everything else falls through to the table's
    default discard.
    """
    me = topology.switches[my_uid]
    host_ports = set(my_host_ports if my_host_ports is not None else me.host_ports)
    in_ports = list(range(0, n_ports + 1))

    entries: Dict[Tuple[int, int], ForwardingEntry] = {}

    # -- unicast entries to every switch's addresses ---------------------------------
    phases = {i: arrival_phase(topology, my_uid, i) for i in in_ports}
    for dest_uid, record in topology.switches.items():
        number = topology.numbers.get(dest_uid)
        if number is None:
            continue
        if dest_uid == my_uid:
            for q in range(0, n_ports + 1):
                address = make_short_address(number, q)
                if q == CONTROL_PROCESSOR_PORT:
                    entry = ForwardingEntry((CONTROL_PROCESSOR_PORT,))
                elif q in host_ports:
                    entry = ForwardingEntry((q,))
                else:
                    entry = DISCARD_ENTRY
                for i in in_ports:
                    entries[(i, address)] = entry
            continue
        dist = legal_distances(topology, dest_uid)
        per_phase = {
            phase: next_hop_ports(topology, my_uid, phase, dest_uid, dist)
            for phase in (UP, DOWN)
        }
        for q in range(0, n_ports + 1):
            address = make_short_address(number, q)
            for i in in_ports:
                ports = per_phase[phases[i]]
                entries[(i, address)] = (
                    ForwardingEntry(ports) if ports else DISCARD_ENTRY
                )

    # -- broadcast flood entries (section 6.6.6) ---------------------------------------
    children = topology.children_ports(my_uid)
    is_root = topology.root == my_uid
    parent_port = me.parent_port

    def flood_set(address: int) -> Tuple[int, ...]:
        ports: Set[int] = set(children)
        if address in (ADDR_BROADCAST_ALL, ADDR_BROADCAST_HOSTS):
            ports |= host_ports
        if address in (ADDR_BROADCAST_ALL, ADDR_BROADCAST_SWITCHES):
            ports.add(CONTROL_PROCESSOR_PORT)
        return tuple(sorted(ports))

    up_sources = {CONTROL_PROCESSOR_PORT} | host_ports | set(children)
    for address in (ADDR_BROADCAST_ALL, ADDR_BROADCAST_SWITCHES, ADDR_BROADCAST_HOSTS):
        down = ForwardingEntry(flood_set(address), broadcast=True)
        for i in in_ports:
            if i in up_sources:
                if is_root:
                    entries[(i, address)] = down
                else:
                    entries[(i, address)] = ForwardingEntry(
                        (parent_port,), broadcast=True
                    )
            elif i == parent_port:
                entries[(i, address)] = down
            else:
                # cross links and unused ports never carry broadcasts
                entries[(i, address)] = DISCARD_ENTRY

    return entries
