"""Up*/down* route computation and forwarding-table fill (section 6.6.4).

The spanning tree imposes a direction on every operational link: the "up"
end is the end closer to the root (ties broken by lower UID).  A legal
route traverses zero or more links up, then zero or more links down --
never up after down -- which makes the directed channel-dependency graph
acyclic and hence the network deadlock-free while still using every link.

Autopilot fills the tables with only the *minimum hop count* legal routes
(the paper's current version).  Because tables are indexed by the
receiving port as well as the destination, the up*/down* rule is enforced
locally: a packet that arrived over a "down" traversal gets only "down"
continuations, and entries that would violate the rule discard the packet
(protecting against corrupted short addresses).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.constants import (
    ADDR_BROADCAST_ALL,
    ADDR_BROADCAST_HOSTS,
    ADDR_BROADCAST_SWITCHES,
    CONTROL_PROCESSOR_PORT,
    PORTS_PER_SWITCH,
)
from repro.core.topo import NetLink, PortRef, TopologyMap
from repro.net.forwarding import DISCARD_ENTRY, ForwardingEntry
from repro.types import Uid, make_short_address

#: phases of a legal route: UP may still climb; DOWN must descend
UP, DOWN = 0, 1


# Interned forwarding entries keyed by (ports, broadcast).  ForwardingEntry
# is frozen, so sharing one instance across tables is safe; the cache stays
# small because real port vectors are short and heavily repeated (every
# switch's table reuses the same handful of vectors).  Pure value cache:
# hits and misses return equal objects, so determinism is unaffected --
# which is also why lru_cache (and not a module dict, see RS402) is the
# right shape for it.
@lru_cache(maxsize=None)
def _entry(ports: Tuple[int, ...], broadcast: bool = False) -> ForwardingEntry:
    if broadcast and not ports:
        # the shared discard singleton doubles as its own interned value
        return DISCARD_ENTRY
    return ForwardingEntry(ports, broadcast)


def _topology_key(topology: TopologyMap) -> tuple:
    """Value fingerprint of everything route computation reads.

    Switch numbers and host ports are deliberately excluded: distances and
    link orientation depend only on the tree (levels, parents) and the
    link set, and :func:`build_forwarding_entries` reads numbers and host
    ports directly from the live topology on every call.
    """
    # plain-int tuples: sorting and equality run at C speed instead of
    # through the Uid dataclass dunders (this key is recomputed on every
    # build_forwarding_entries call to validate the cache)
    return (
        topology.root,
        tuple(
            sorted(
                (
                    uid.value,
                    rec.level,
                    -1 if rec.parent_port is None else rec.parent_port,
                    -1 if rec.parent_uid is None else rec.parent_uid.value,
                )
                for uid, rec in topology.switches.items()
            )
        ),
        tuple(
            sorted(
                (link.a.uid.value, link.a.port, link.b.uid.value, link.b.port)
                for link in topology.links
            )
        ),
    )


class _TopologyRoutes:
    """Memoized routing structures shared by every switch of one epoch.

    The root distributes *one* ``TopologyMap`` object down the tree (the
    simulated network carries payloads by reference), so all switches of an
    epoch compute their tables from the same instance.  Caching the
    layered-graph predecessors and per-destination distance vectors on that
    instance turns the per-epoch route computation from
    O(switches^2 x links) into O(switches x links): the breadth-first
    sweeps run once per destination instead of once per (switch,
    destination) pair.  The cache is keyed by a content fingerprint, so a
    mutated or merely equal-but-distinct map recomputes correctly.
    """

    __slots__ = (
        "key",
        "nbrs",
        "up_end",
        "children",
        "index",
        "_n",
        "_preds",
        "_dist",
    )

    def __init__(self, topology: TopologyMap, key: tuple) -> None:
        self.key = key
        #: uid -> {port: far PortRef} for every switch, built in one pass
        self.nbrs: Dict[Uid, Dict[int, PortRef]] = {
            uid: {} for uid in topology.switches
        }
        #: (uid, port) -> True when that endpoint is the link's up end
        self.up_end: Dict[Tuple[Uid, int], bool] = {}
        levels = {uid: rec.level for uid, rec in topology.switches.items()}
        links: List[NetLink] = []
        for link in topology.links:
            if link.is_loop:
                continue
            a, b = link.a, link.b
            if a.uid not in levels or b.uid not in levels:
                continue
            links.append(link)
            self.nbrs[a.uid][a.port] = b
            self.nbrs[b.uid][b.port] = a
            level_a, level_b = levels[a.uid], levels[b.uid]
            if level_a != level_b:
                a_up = level_a < level_b
            else:
                a_up = a.uid < b.uid
            self.up_end[(a.uid, a.port)] = a_up
            self.up_end[(b.uid, b.port)] = not a_up

        #: uid -> sorted child ports (the down ends of tree links)
        self.children: Dict[Uid, List[int]] = {
            uid: [] for uid in topology.switches
        }
        ends: Dict[Tuple[Uid, int], PortRef] = {}
        for link in links:
            ends[(link.a.uid, link.a.port)] = link.b
            ends[(link.b.uid, link.b.port)] = link.a
        for uid, rec in topology.switches.items():
            if rec.parent_uid is None or rec.parent_port is None:
                continue
            parent_end = ends.get((uid, rec.parent_port))
            if parent_end is not None and parent_end.uid == rec.parent_uid:
                self.children[rec.parent_uid].append(parent_end.port)
        for ports in self.children.values():
            ports.sort()

        # layered-graph reverse adjacency over states (uid index)*2 + phase
        self.index: Dict[Uid, int] = {
            uid: i for i, uid in enumerate(topology.switches)
        }
        self._n = 2 * len(self.index)
        preds: List[List[int]] = [[] for _ in range(self._n)]
        index = self.index
        for link in links:
            a, b = link.a, link.b
            if self.up_end[(a.uid, a.port)]:
                uu, dd = index[a.uid] * 2, index[b.uid] * 2
            else:
                uu, dd = index[b.uid] * 2, index[a.uid] * 2
            # forward: (dd, UP) --up--> (uu, UP)
            preds[uu].append(dd)
            # forward: (uu, UP/DOWN) --down--> (dd, DOWN)
            preds[dd + 1].append(uu)
            preds[dd + 1].append(uu + 1)
        self._preds = preds
        #: dest uid -> state-indexed hop counts (-1 = unreachable)
        self._dist: Dict[Uid, List[int]] = {}

    def dist_to(self, dest: Uid) -> List[int]:
        dist = self._dist.get(dest)
        if dist is None:
            dist = self._dist[dest] = self._bfs(dest)
        return dist

    def _bfs(self, dest: Uid) -> List[int]:
        preds = self._preds
        dist = [-1] * self._n
        base = self.index[dest] * 2
        dist[base] = 0
        dist[base + 1] = 0
        frontier = [base, base + 1]
        hops = 0
        while frontier:
            hops += 1
            nxt: List[int] = []
            for state in frontier:
                for pred in preds[state]:
                    if dist[pred] < 0:
                        dist[pred] = hops
                        nxt.append(pred)
            frontier = nxt
        return dist

    def next_hops(
        self, uid: Uid, dest: Uid
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """(UP-phase ports, DOWN-phase ports) on minimum legal routes."""
        dist = self.dist_to(dest)
        index = self.index
        base = index[uid] * 2
        here_up, here_down = dist[base], dist[base + 1]
        up_ports: List[int] = []
        down_ports: List[int] = []
        up_end = self.up_end
        for port, far in self.nbrs[uid].items():
            going_up = up_end[(far.uid, far.port)]
            far_state = index[far.uid] * 2 + (0 if going_up else 1)
            there = dist[far_state]
            if there < 0:
                continue
            if there + 1 == here_up:
                up_ports.append(port)
            if not going_up and there + 1 == here_down:
                down_ports.append(port)
        up_ports.sort()
        down_ports.sort()
        return tuple(up_ports), tuple(down_ports)


def _routes_for(topology: TopologyMap) -> _TopologyRoutes:
    """The memoized route structures for ``topology``, building on miss.

    Stored on the instance (not a module global) so the cache's lifetime
    is the topology's own; the content fingerprint guards against
    in-place mutation between calls.
    """
    key = _topology_key(topology)
    cached = getattr(topology, "_routes_cache", None)
    if cached is not None and cached.key == key:
        return cached
    routes = _TopologyRoutes(topology, key)
    setattr(topology, "_routes_cache", routes)
    return routes


def link_direction(topology: TopologyMap, link: NetLink) -> PortRef:
    """Return the link's "up" end (closer to the root; ties by lower UID)."""
    level_a = topology.level(link.a.uid)
    level_b = topology.level(link.b.uid)
    if level_a != level_b:
        return link.a if level_a < level_b else link.b
    return link.a if link.a.uid < link.b.uid else link.b


def legal_distances(topology: TopologyMap, dest: Uid) -> Dict[Tuple[Uid, int], float]:
    """Minimum legal-route hop counts to ``dest`` from every (switch, phase).

    ``dist[(s, UP)]`` assumes the packet at ``s`` may still go up;
    ``dist[(s, DOWN)]`` assumes it has already descended.  Unreachable
    states get ``inf``.
    """
    routes = _routes_for(topology)
    hops = routes.dist_to(dest)
    inf = float("inf")
    dist: Dict[Tuple[Uid, int], float] = {}
    for uid, idx in routes.index.items():
        up, down = hops[idx * 2], hops[idx * 2 + 1]
        dist[(uid, UP)] = float(up) if up >= 0 else inf
        dist[(uid, DOWN)] = float(down) if down >= 0 else inf
    return dist


def arrival_phase(topology: TopologyMap, uid: Uid, in_port: int) -> int:
    """Phase of a packet arriving at ``uid`` on ``in_port``.

    Arrivals from hosts or the control processor have used no
    switch-to-switch link, so they may still go up.
    """
    neighbors = topology.neighbors(uid)
    if in_port not in neighbors:
        return UP
    far = neighbors[in_port]
    link = NetLink(PortRef(uid, in_port), far)
    up_end = link_direction(topology, link)
    # if we are the up end, the packet climbed toward the root: still UP
    return UP if up_end.uid == uid and up_end.port == in_port else DOWN


def next_hop_ports(
    topology: TopologyMap,
    uid: Uid,
    phase: int,
    dest: Uid,
    dist: Dict[Tuple[Uid, int], float],
) -> Tuple[int, ...]:
    """Output ports lying on some minimum-hop legal route toward ``dest``."""
    here = dist[(uid, phase)]
    if here == float("inf"):
        return ()
    ports: List[int] = []
    for port, far in topology.neighbors(uid).items():
        link = NetLink(PortRef(uid, port), far)
        up_end = link_direction(topology, link)
        going_up = up_end.uid == far.uid and up_end.port == far.port
        if phase == DOWN and going_up:
            continue  # never up after down
        next_phase = UP if going_up else DOWN
        if dist[(far.uid, next_phase)] + 1 == here:
            ports.append(port)
    return tuple(sorted(ports))


def build_forwarding_entries(
    topology: TopologyMap,
    my_uid: Uid,
    my_host_ports: Optional[FrozenSet[int]] = None,
    n_ports: int = PORTS_PER_SWITCH,
) -> Dict[Tuple[int, int], ForwardingEntry]:
    """Compute one switch's forwarding table for the given configuration.

    ``my_host_ports`` overrides the host-port set recorded in the topology
    (the local switch knows its own port states most currently).
    Entries cover every assignable short address in use plus the three
    broadcast addresses; everything else falls through to the table's
    default discard.
    """
    me = topology.switches[my_uid]
    host_ports = set(my_host_ports if my_host_ports is not None else me.host_ports)
    in_ports = list(range(0, n_ports + 1))
    routes = _routes_for(topology)

    entries: Dict[Tuple[int, int], ForwardingEntry] = {}

    # -- unicast entries to every switch's addresses ---------------------------------
    # arrival phase per receiving port: UP unless the packet descended to
    # get here (we are the link's down end).  Host/CP arrivals are UP.
    up_end = routes.up_end
    nbr_ports = routes.nbrs[my_uid]
    arrives_up = [
        i not in nbr_ports or up_end[(my_uid, i)] for i in in_ports
    ]
    for dest_uid, record in topology.switches.items():
        number = topology.numbers.get(dest_uid)
        if number is None:
            continue
        if dest_uid == my_uid:
            for q in range(0, n_ports + 1):
                address = make_short_address(number, q)
                if q == CONTROL_PROCESSOR_PORT:
                    entry = _entry((CONTROL_PROCESSOR_PORT,))
                elif q in host_ports:
                    entry = _entry((q,))
                else:
                    entry = DISCARD_ENTRY
                for i in in_ports:
                    entries[(i, address)] = entry
            continue
        ports_up, ports_down = routes.next_hops(my_uid, dest_uid)
        entry_up = _entry(ports_up) if ports_up else DISCARD_ENTRY
        entry_down = _entry(ports_down) if ports_down else DISCARD_ENTRY
        # one validated address per destination; the per-port addresses
        # base..base+n_ports are contiguous (port bits are the low bits)
        base = make_short_address(number, 0)
        row = [
            (i, entry_up if is_up else entry_down)
            for i, is_up in zip(in_ports, arrives_up)
        ]
        for q in range(0, n_ports + 1):
            address = base + q
            for i, entry in row:
                entries[(i, address)] = entry

    # -- broadcast flood entries (section 6.6.6) ---------------------------------------
    children = routes.children[my_uid]
    is_root = topology.root == my_uid
    parent_port = me.parent_port

    def flood_set(address: int) -> Tuple[int, ...]:
        ports: Set[int] = set(children)
        if address in (ADDR_BROADCAST_ALL, ADDR_BROADCAST_HOSTS):
            ports |= host_ports
        if address in (ADDR_BROADCAST_ALL, ADDR_BROADCAST_SWITCHES):
            ports.add(CONTROL_PROCESSOR_PORT)
        return tuple(sorted(ports))

    up_sources = {CONTROL_PROCESSOR_PORT} | host_ports | set(children)
    for address in (ADDR_BROADCAST_ALL, ADDR_BROADCAST_SWITCHES, ADDR_BROADCAST_HOSTS):
        down = _entry(flood_set(address), broadcast=True)
        for i in in_ports:
            if i in up_sources:
                if is_root:
                    entries[(i, address)] = down
                else:
                    entries[(i, address)] = _entry(
                        (parent_port,), broadcast=True
                    )
            elif i == parent_port:
                entries[(i, address)] = down
            else:
                # cross links and unused ports never carry broadcasts
                entries[(i, address)] = DISCARD_ENTRY

    return entries
