"""Port-state monitoring: the status sampler and connectivity monitor
(sections 6.5.3, 6.5.4), with the skeptics of 6.5.5 providing hysteresis.

The status sampler periodically reads each link unit's status bits,
accumulates per-condition counts, and classifies ports among s.dead,
s.checking, s.host, and s.switch.who.  The connectivity monitor verifies
s.switch.* ports end-to-end by exchanging test packets with the
neighboring switch, distinguishing s.switch.who / s.switch.loop /
s.switch.good.  Transitions in or out of s.switch.good trigger a
network-wide reconfiguration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.messages import ConnectivityProbe, ConnectivityReply
from repro.core.portstate import PortState
from repro.core.skeptic import ConnectivitySkeptic, SkepticParams, StatusSkeptic
from repro.net.flowcontrol import Directive
from repro.net.linkunit import StatusSample
from repro.obs.flight import CAT_PORT
from repro.types import Uid


@dataclass
class MonitorParams:
    """Timing and thresholds for the monitoring layers."""

    #: status-sampler period
    sample_period_ns: int = 10_000_000  # 10 ms
    #: consecutive bad samples that send a working port to s.dead
    bad_sample_limit: int = 3
    #: samples spent in s.checking before classifying host vs switch
    classify_samples: int = 5
    #: consecutive samples without StartSeen that indicate a blockage
    blockage_sample_limit: int = 50
    #: consecutive samples without ProgressSeen indicating stuck hardware
    progress_sample_limit: int = 50
    #: connectivity probe period
    probe_period_ns: int = 200_000_000  # 200 ms
    #: consecutive unanswered probes that demote s.switch.good
    probe_miss_limit: int = 2
    skeptic: SkepticParams = field(default_factory=SkepticParams)
    conn_skeptic_base: int = 2
    conn_skeptic_growth: float = 2.0
    #: send the panic directive to clear a blockage before declaring the
    #: port dead (section 6.1's unimplemented facility; off = paper)
    use_panic: bool = False


@dataclass
class NeighborInfo:
    """Identity of the switch at the far end of a port."""

    uid: Uid
    port: int


class PortMonitor:
    """Per-port classification state."""

    def __init__(self, port_no: int, params: MonitorParams, now: int) -> None:
        self.port_no = port_no
        self.params = params
        self.state = PortState.DEAD
        self.entered_at = now
        self.status_skeptic = StatusSkeptic(params.skeptic)
        self.conn_skeptic = ConnectivitySkeptic(
            base_required=params.conn_skeptic_base,
            growth=params.conn_skeptic_growth,
        )
        # sampler accounting
        self.clean_samples = 0
        self.bad_streak = 0
        self.checking_samples = 0
        self.no_start_streak = 0
        self.no_progress_streak = 0
        self.host_anomaly_streak = 0
        # connectivity accounting
        self.nonce = 0
        self.awaiting_nonce: Optional[int] = None
        self.consecutive_good = 0
        self.probe_misses = 0
        self.neighbor: Optional[NeighborInfo] = None

    def reset_conn(self) -> None:
        self.awaiting_nonce = None
        self.consecutive_good = 0
        self.probe_misses = 0
        self.neighbor = None


class Monitoring:
    """The sampler + monitor pair for one switch's Autopilot.

    ``autopilot`` must provide: ``sim``, ``uid``, ``switch`` (for link
    units), ``send_one_hop(port, message)``, ``trigger_reconfiguration
    (reason)``, ``host_ports_changed()``, and ``log(event, detail)``.
    """

    def __init__(self, autopilot, params: MonitorParams) -> None:
        self.ap = autopilot
        self.params = params
        now = autopilot.sim.now
        self.ports: Dict[int, PortMonitor] = {
            p: PortMonitor(p, params, now)
            for p in range(1, autopilot.switch.n_ports + 1)
        }
        # all ports boot dead and send idhy
        for port in self.ports:
            self._apply_dead_actions(port)

    # -- public views ------------------------------------------------------------------

    def state_of(self, port: int) -> PortState:
        return self.ports[port].state

    def good_ports(self) -> Tuple[int, ...]:
        return tuple(
            p for p, mon in sorted(self.ports.items())
            if mon.state is PortState.SWITCH_GOOD
        )

    def is_good(self, port: int) -> bool:
        mon = self.ports.get(port)
        return mon is not None and mon.state is PortState.SWITCH_GOOD

    def host_ports(self) -> Tuple[int, ...]:
        return tuple(
            p for p, mon in sorted(self.ports.items()) if mon.state is PortState.HOST
        )

    def neighbor_of(self, port: int) -> Optional[NeighborInfo]:
        return self.ports[port].neighbor

    # -- state transitions ---------------------------------------------------------------

    def _transition(self, port: int, new_state: PortState, reason: str) -> None:
        mon = self.ports[port]
        old = mon.state
        if new_state is old:
            return
        now = self.ap.sim.now
        mon.state = new_state
        mon.entered_at = now
        self.ap.log("port-state", f"port={port} {old.value}->{new_state.value} ({reason})")
        rec = self.ap.sim.recorder
        if rec is not None:
            # advances the causal context: the reconfiguration trigger a
            # few lines down chains to this transition
            rec.record(
                now,
                self.ap.switch.name,
                CAT_PORT,
                "port-state",
                port=port,
                old=old.value,
                new=new_state.value,
                reason=reason,
            )

        if new_state is PortState.DEAD:
            self._apply_dead_actions(port)
            mon.status_skeptic.on_failure(now)
            mon.clean_samples = 0
            mon.bad_streak = 0
            mon.reset_conn()
        else:
            if old is PortState.DEAD:
                # leaving s.dead: resume normal flow control
                self.ap.switch.ports[port].force_directive(None)
                mon.status_skeptic.on_good_period_start(now)

        if new_state is PortState.CHECKING:
            mon.checking_samples = 0
        if new_state is PortState.SWITCH_GOOD:
            mon.conn_skeptic.on_promoted(now)
        if old is PortState.SWITCH_GOOD and new_state is not PortState.SWITCH_GOOD:
            mon.conn_skeptic.on_demotion(now)

        if old is PortState.HOST or new_state is PortState.HOST:
            self.ap.host_ports_changed()

        if (old is PortState.SWITCH_GOOD) != (new_state is PortState.SWITCH_GOOD):
            down_port = port if old is PortState.SWITCH_GOOD else None
            self.ap.trigger_reconfiguration(
                f"port {port}: {old.value}->{new_state.value}",
                down_port=down_port,
            )

    def _apply_dead_actions(self, port: int) -> None:
        """s.dead: send idhy so the far port drops to s.checking too, and
        clear out anything backed up (FIFO contents, held grants)."""
        unit = self.ap.switch.ports[port]
        unit.force_directive(Directive.IDHY)
        self.ap.switch.isolate_port(port)

    # -- the status sampler (runs every sample_period) ----------------------------------------

    def sample_all(self) -> None:
        for port in self.ports:
            unit = self.ap.switch.ports[port]
            if not unit.connected:
                continue
            self._sample_port(port, unit.sample_status())

    def _sample_port(self, port: int, sample: StatusSample) -> None:
        mon = self.ports[port]
        now = self.ap.sim.now
        state = mon.state
        hard_bad = sample.bad_code or sample.overflow or sample.underflow

        if state is PortState.DEAD:
            # idhy received is not an error while dead (section 6.5.3)
            if hard_bad:
                mon.clean_samples = 0
            else:
                mon.clean_samples += 1
            clean_ns = mon.clean_samples * self.params.sample_period_ns
            if clean_ns >= mon.status_skeptic.required_hold():
                self._transition(port, PortState.CHECKING, "clean holding period")
            return

        mon.status_skeptic.credit_good_time(now)
        mon.conn_skeptic.credit_good_time(now)

        # bad status accounting (BadSyntax tolerated on host ports: the
        # alternate-port fingerprint is constant BadSyntax)
        bad = hard_bad
        if state in (PortState.SWITCH_WHO, PortState.SWITCH_LOOP, PortState.SWITCH_GOOD):
            bad = bad or sample.bad_syntax
        if bad:
            mon.bad_streak += 1
        else:
            mon.bad_streak = 0
        if mon.bad_streak >= self.params.bad_sample_limit:
            self._transition(port, PortState.DEAD, "bad status counts")
            return

        # idhy from the far side: it has declared the link defective and
        # requires us to classify it no better than s.checking (§6.1)
        if state is not PortState.CHECKING and sample.idhy_seen:
            self._transition(port, PortState.DEAD, "idhy received")
            return

        if state is PortState.CHECKING:
            if sample.idhy_seen:
                mon.checking_samples = 0  # wait for idhy to cease
                return
            mon.checking_samples += 1
            if mon.checking_samples < self.params.classify_samples:
                return
            if sample.is_host:
                self._transition(port, PortState.HOST, "host directive")
            elif sample.bad_syntax and not sample.start_seen:
                # constant BadSyntax, nothing else: an alternate host port
                self._transition(port, PortState.HOST, "alternate host fingerprint")
            elif sample.start_seen:
                self._transition(port, PortState.SWITCH_WHO, "start directive")
            else:
                mon.checking_samples = 0  # nothing conclusive yet
            return

        # long-term blockage removal (section 6.5.3): intervals during
        # which ONLY stop directives are received (an alternate host port
        # receives nothing at all and must stay s.host), or a waiting
        # packet making no progress
        if state in (PortState.HOST, PortState.SWITCH_GOOD):
            if sample.stop_seen and not sample.start_seen:
                mon.no_start_streak += 1
            else:
                mon.no_start_streak = 0
            if sample.progress_seen:
                mon.no_progress_streak = 0
            else:
                mon.no_progress_streak += 1
            if self.params.use_panic and (
                mon.no_start_streak == self.params.blockage_sample_limit // 2
                or mon.no_progress_streak == self.params.progress_sample_limit // 2
            ):
                # try resetting the far link unit before giving up on the
                # port (the panic facility of section 6.1)
                self.ap.switch.ports[port].send_panic()
            if mon.no_start_streak >= self.params.blockage_sample_limit:
                self._transition(port, PortState.DEAD, "no start directives")
                return
            if mon.no_progress_streak >= self.params.progress_sample_limit:
                self._transition(port, PortState.DEAD, "no forwarding progress")
                return

        # a host port that begins sending switch flow control: recabled,
        # or reflecting its own directives because the host powered off
        # (the section 7 broadcast-storm cause).  Like other
        # classification decisions this uses a confirmation window.
        if state is PortState.HOST and sample.start_seen and not sample.is_host:
            mon.host_anomaly_streak += 1
            if mon.host_anomaly_streak >= self.params.classify_samples:
                self._transition(port, PortState.DEAD, "host port now sends start")
        else:
            mon.host_anomaly_streak = 0

    # -- the connectivity monitor (runs every probe_period) --------------------------------------

    def probe_all(self) -> None:
        for port, mon in self.ports.items():
            if not mon.state.is_switch:
                continue
            self._account_miss(port)
            mon.nonce += 1
            mon.awaiting_nonce = mon.nonce
            self.ap.send_one_hop(
                port,
                ConnectivityProbe(
                    epoch=self.ap.epoch,
                    sender_uid=self.ap.uid,
                    nonce=mon.nonce,
                    sender_port=port,
                ),
            )

    def _account_miss(self, port: int) -> None:
        mon = self.ports[port]
        if mon.awaiting_nonce is None:
            return
        mon.probe_misses += 1
        mon.consecutive_good = 0
        if (
            mon.state in (PortState.SWITCH_GOOD, PortState.SWITCH_LOOP)
            and mon.probe_misses >= self.params.probe_miss_limit
        ):
            mon.reset_conn()
            self._transition(port, PortState.SWITCH_WHO, "probe replies missing")

    def on_probe(self, in_port: int, msg: ConnectivityProbe) -> None:
        """Answer a neighbor's connectivity test packet."""
        self.ap.send_one_hop(
            in_port,
            ConnectivityReply(
                epoch=self.ap.epoch,
                sender_uid=self.ap.uid,
                nonce=msg.nonce,
                echo_uid=msg.sender_uid,
                echo_port=msg.sender_port,
                sender_port=in_port,
            ),
        )

    def on_probe_reply(self, in_port: int, msg: ConnectivityReply) -> None:
        mon = self.ports.get(in_port)
        if mon is None or not mon.state.is_switch:
            return
        # accept only a reply to our outstanding probe that echoes us
        if (
            msg.nonce != mon.awaiting_nonce
            or msg.echo_uid != self.ap.uid
            or msg.echo_port != in_port
        ):
            return
        mon.awaiting_nonce = None
        mon.probe_misses = 0

        if msg.sender_uid == self.ap.uid:
            # a looped or reflecting link: of no use in the configuration
            mon.consecutive_good = 0
            self._transition(in_port, PortState.SWITCH_LOOP, "own UID echoed")
            return

        reply_from = NeighborInfo(uid=msg.sender_uid, port=msg.sender_port)
        if mon.state is PortState.SWITCH_GOOD:
            if mon.neighbor != reply_from:
                mon.reset_conn()
                self._transition(in_port, PortState.SWITCH_WHO, "neighbor changed")
            return

        mon.neighbor = reply_from
        mon.consecutive_good += 1
        if mon.state in (PortState.SWITCH_WHO, PortState.SWITCH_LOOP):
            if mon.conn_skeptic.satisfied(mon.consecutive_good):
                self._transition(in_port, PortState.SWITCH_GOOD, "responsive neighbor")
