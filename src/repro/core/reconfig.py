"""The distributed reconfiguration algorithm (sections 4.1, 6.6).

Five steps, run by every operational switch:

1. Clear the forwarding table to one-hop entries only and exchange
   tree-position packets with neighbors (the Perlman-style election).
2. Topology reports accumulate up the forming tree as "I am stable"
   messages, using the termination-detection extension: a switch is
   *stable* when all neighbors have acknowledged its current position and
   all neighbors claiming it as parent have reported stable.
3. The root -- the one switch whose unstable->stable transition happens
   exactly once -- assigns switch numbers (short addresses).
4. The complete topology and assignment travel back down the tree.
5. Each switch computes and loads its own forwarding table and reopens.

Everything is tagged with the 64-bit epoch number of section 6.6.2: higher
epochs preempt lower ones, and any port-state change in or out of
s.switch.good during an epoch starts a new one, so each epoch operates on
a fixed link set.

For the E10 ablation, ``termination_mode='quiescence'`` replaces the
stability extension with plain Perlman plus a conservative quiet-period
timeout -- the thing the paper's extension exists to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.addressing import assign_switch_numbers
from repro.core.messages import (
    AckMsg,
    ConfigMsg,
    ControlMessage,
    LinkDownMsg,
    StableMsg,
    TreePositionMsg,
)
from repro.core.routing import build_forwarding_entries
from repro.core.topo import (
    NetLink,
    PortRef,
    SwitchRecord,
    TopologyMap,
    merge_reports,
    relevel,
)
from repro.core.treepos import TreePosition, candidate_position
from repro.obs.flight import CAT_TIMER
from repro.sim.engine import EventHandle
from repro.types import Uid


@dataclass
class ReconfigParams:
    """Protocol timing and modes."""

    #: retransmission period for unacknowledged control messages
    retx_period_ns: int = 25_000_000  # 25 ms
    #: give up and start a new epoch if no configuration arrives
    config_timeout_ns: int = 5_000_000_000  # 5 s
    #: 'stability' (the paper's extension) or 'quiescence' (plain Perlman
    #: with a timeout, for the E10 ablation)
    termination_mode: str = "stability"
    #: quiet period used in quiescence mode
    quiescence_timeout_ns: int = 300_000_000  # 300 ms
    #: whether loading the forwarding table resets the switch (section 7)
    reset_on_load: bool = True
    #: section 7 future work: handle the death of a non-spanning-tree
    #: link with a flooded delta + local table recomputation instead of a
    #: full epoch (the tree, levels, and addresses are unaffected, so
    #: up*/down* deadlock freedom is preserved).  Off = the paper.
    enable_local_reconfig: bool = False
    #: safety cap on retransmissions of one message
    max_retx: int = 400


class PeerState:
    """What we know about the switch on one of our good ports."""

    __slots__ = (
        "uid",
        "acked_seq",
        "accepts_me",
        "position",
        "their_seq",
        "stable_report",
        "report_version",
    )

    def __init__(self) -> None:
        #: the neighbor's UID as carried in its messages
        self.uid: Optional[Uid] = None
        #: highest of our position sequence numbers they acknowledged
        self.acked_seq = -1
        #: they claim us as their parent
        self.accepts_me = False
        #: their last reported position
        self.position: Optional[TreePosition] = None
        self.their_seq = -1
        #: their stable-subtree report (cleared when they move)
        self.stable_report: Optional[TopologyMap] = None
        self.report_version = 0


class _Pending:
    __slots__ = ("port", "message", "attempts", "event")

    def __init__(self, port: int, message: ControlMessage) -> None:
        self.port = port
        self.message = message
        self.attempts = 0
        self.event: Optional[EventHandle] = None


class ReconfigEngine:
    """Per-switch reconfiguration state machine.

    ``ap`` is the owning Autopilot, providing identity, transport,
    monitoring views, CPU accounting, and table loading (see
    :class:`repro.core.autopilot.Autopilot`).
    """

    def __init__(self, ap, params: ReconfigParams) -> None:
        self.ap = ap
        self.params = params
        self.epoch = 0
        self.position = TreePosition.as_root(ap.uid)
        self.pos_seq = 0
        self.ports: Tuple[int, ...] = ()
        self.peers: Dict[int, PeerState] = {}
        self.configured = True  # nothing to configure before the first epoch
        #: the step-5 table load has completed for the current epoch
        self.table_loaded = True
        self.topology: Optional[TopologyMap] = None
        #: switch number remembered across epochs (section 6.6.3)
        self.my_number = 1
        self._pending: Dict[int, _Pending] = {}
        self._last_stable_sent: Optional[tuple] = None
        self._config_deadline: Optional[EventHandle] = None
        self._last_pos_change = 0
        self._quiet_event: Optional[EventHandle] = None
        # instrumentation
        self.epoch_started_at: int = 0
        self.configured_at: int = 0
        self.epochs_initiated = 0
        self.epochs_joined = 0
        self.terminations = 0
        self.local_reconfigs = 0
        self.local_applied_at: int = -1

    @property
    def in_blackout(self) -> bool:
        """The switch cannot carry host traffic right now: its table
        holds only one-hop entries (step 1 ran) and step 5 has not yet
        reloaded it.  Sampled each tick by the time-series layer as the
        per-switch ``blackout_in_progress`` flag."""
        return not (self.configured and self.table_loaded)

    @property
    def phase(self) -> str:
        """Which reconfiguration phase this switch is in right now.

        ``election`` covers the paper's steps 1-3 (table cleared, the
        spanning tree still forming), ``loading`` is step 5 in progress
        (configuration adopted but the forwarding table not yet
        reloaded), and ``steady`` is normal operation.  Control-plane
        cost accounting labels every sent packet with the sender's
        phase, so a sweep can attribute control volume to tree election
        versus table distribution versus steady-state skepticism.
        """
        if self.configured:
            return "steady" if self.table_loaded else "loading"
        return "election"

    # -- epoch management -------------------------------------------------------------

    def initiate(self, reason: str) -> None:
        """A relevant port-state change: add one to the epoch and restart."""
        self.epochs_initiated += 1
        self._start_epoch(self.epoch + 1, f"initiated: {reason}")

    def maybe_join(self, msg_epoch: int) -> str:
        """Classify a message's epoch: 'old', 'current', or 'joined'."""
        if msg_epoch < self.epoch:
            return "old"
        if msg_epoch == self.epoch:
            return "current"
        self.epochs_joined += 1
        self._start_epoch(msg_epoch, "joined higher epoch")
        return "joined"

    def _start_epoch(self, epoch: int, reason: str) -> None:
        self.epoch = epoch
        self.epoch_started_at = self.ap.sim.now
        self.ap.log("epoch-start", f"epoch={epoch} ({reason})")
        self.ap.obs_event("epoch-start", epoch=epoch, reason=reason)
        self._cancel_all_pending()
        self.position = TreePosition.as_root(self.ap.uid)
        self.pos_seq += 1  # sequence numbers stay unique across epochs
        self._last_pos_change = self.ap.sim.now
        self.ports = self.ap.good_ports()
        self.peers = {p: PeerState() for p in self.ports}
        self.configured = False
        self.table_loaded = False
        self._last_stable_sent = None
        # step 1: forward only one-hop packets from now on
        self.ap.clear_forwarding(reset=self.params.reset_on_load)
        self._send_position_everywhere()
        self._arm_config_deadline()
        self._check_stability()  # a switch with no good ports is already done

    def _arm_config_deadline(self) -> None:
        if self._config_deadline is not None:
            self._config_deadline.cancel()
        self._config_deadline = self.ap.sim.after(
            self.params.config_timeout_ns, self._config_timed_out, self.epoch
        )

    def halt(self) -> None:
        """The control processor stopped: silence every pending timer.

        A halted engine must never touch the switch hardware again.  The
        hardware is shared with whatever Autopilot boots after a restart,
        and a stale config-deadline firing minutes later would clear the
        forwarding table the successor just loaded (found by the chaos
        campaign: crash mid-reconfiguration, restart, wait out the old
        epoch's deadline).
        """
        if self._config_deadline is not None:
            self._config_deadline.cancel()
            self._config_deadline = None
        if self._quiet_event is not None:
            self._quiet_event.cancel()
            self._quiet_event = None
        self._cancel_all_pending()

    def _config_timed_out(self, epoch: int) -> None:
        if not self.ap.alive:
            return
        if epoch == self.epoch and not self.configured:
            self.ap.log("config-timeout", f"epoch={epoch}")
            self.ap.obs_event("config-timeout", epoch=epoch)
            self.initiate("configuration timeout")

    # -- reliable one-hop delivery ---------------------------------------------------------

    def _send_reliable(self, port: int, message: ControlMessage) -> None:
        pending = _Pending(port, message)
        self._pending[message.msg_id] = pending
        self._transmit(pending)

    def _transmit(self, pending: _Pending) -> None:
        pending.attempts += 1
        if pending.attempts > self.params.max_retx:
            self._pending.pop(pending.message.msg_id, None)
            return
        if pending.attempts > 1:
            acct = self.ap.sim.control
            if acct is not None:
                acct.record_retx(self.epoch, type(pending.message).__name__)
        self.ap.send_one_hop(pending.port, pending.message)
        pending.event = self.ap.sim.after(
            self.params.retx_period_ns, self._retransmit, pending
        )
        rec = self.ap.sim.recorder
        if rec is not None:
            rec.record(
                self.ap.sim.now,
                self.ap.switch.name,
                CAT_TIMER,
                "retx-arm",
                advance=False,
                msg_id=pending.message.msg_id,
                msg=type(pending.message).__name__,
                attempts=pending.attempts,
                port=pending.port,
            )

    def _retransmit(self, pending: _Pending) -> None:
        if pending.message.msg_id in self._pending:
            self._transmit(pending)

    def _cancel_pending(self, msg_id: int) -> None:
        pending = self._pending.pop(msg_id, None)
        if pending is not None and pending.event is not None:
            pending.event.cancel()
            rec = self.ap.sim.recorder
            if rec is not None:
                rec.record(
                    self.ap.sim.now,
                    self.ap.switch.name,
                    CAT_TIMER,
                    "retx-cancel",
                    advance=False,
                    msg_id=msg_id,
                )

    def _cancel_all_pending(self, kind=None) -> None:
        for msg_id in list(self._pending):
            pending = self._pending[msg_id]
            if kind is None or isinstance(pending.message, kind):
                self._cancel_pending(msg_id)

    def _ack(self, port: int, message: ControlMessage, accepts: bool = False) -> None:
        acked_seq = message.pos_seq if isinstance(message, TreePositionMsg) else None
        self.ap.send_one_hop(
            port,
            AckMsg(
                epoch=self.epoch,
                sender_uid=self.ap.uid,
                acked_msg_id=message.msg_id,
                acked_pos_seq=acked_seq,
                accepts_as_parent=accepts,
            ),
        )

    # -- step 1: tree formation -------------------------------------------------------------

    def _send_position_everywhere(self) -> None:
        self._cancel_all_pending(TreePositionMsg)
        parent_far = None
        if self.position.parent_port is not None:
            neighbor = self.ap.neighbor_of(self.position.parent_port)
            parent_far = neighbor.port if neighbor else None
        for port in self.ports:
            self._send_reliable(
                port,
                TreePositionMsg(
                    epoch=self.epoch,
                    sender_uid=self.ap.uid,
                    root=self.position.root,
                    level=self.position.level,
                    pos_seq=self.pos_seq,
                    parent_uid=self.position.parent_uid,
                    parent_far_port=parent_far,
                ),
            )

    def _recompute_position(self) -> bool:
        """Adopt the best position among self-as-root and all neighbors."""
        best = TreePosition.as_root(self.ap.uid)
        for port, peer in self.peers.items():
            if peer.position is None or peer.uid is None:
                continue
            cand = candidate_position(
                peer.position.root, peer.position.level, peer.uid, port
            )
            if cand.better_than(best):
                best = cand
        if best != self.position:
            self.position = best
            self.pos_seq += 1
            self._last_pos_change = self.ap.sim.now
            self.ap.log(
                "position",
                f"root={best.root} level={best.level} parent_port={best.parent_port}",
            )
            if (
                self.configured
                and self.topology is not None
                and best.root != self.topology.root
            ):
                # The root changed under an adopted configuration: the
                # configuration came from a false root -- a switch whose
                # local stability test passed before news of a better root
                # reached it (possible on high-diameter topologies).  Drop
                # the stale configuration and rejoin the election, else the
                # true root waits forever for our stable report and every
                # epoch times out the same way.
                self._unconfigure("root changed after configuration")
            self._send_position_everywhere()
            self._schedule_quiet_check()
            return True
        return False

    def _unconfigure(self, reason: str) -> None:
        """Drop a configuration adopted earlier in the current epoch."""
        self.configured = False
        self.table_loaded = False
        self.topology = None
        self._last_stable_sent = None
        self._cancel_all_pending(ConfigMsg)
        self.ap.log("unconfigure", reason)
        self.ap.obs_event("unconfigure", epoch=self.epoch, reason=reason)
        self.ap.clear_forwarding(reset=self.params.reset_on_load)
        self._arm_config_deadline()

    # -- local reconfiguration (section 7 future work) -----------------------------------

    def _is_tree_link(self, link: NetLink) -> bool:
        if self.topology is None:
            return True
        for uid in (link.a.uid, link.b.uid):
            record = self.topology.switches.get(uid)
            if record is None:
                return True  # unknown endpoint: be conservative
            if (
                record.parent_uid is not None
                and record.parent_port == link.endpoint_at(uid).port
                and record.parent_uid == link.other_end(uid).uid
            ):
                return True
        return False

    def try_local_link_down(self, port: int) -> bool:
        """A good link on ``port`` died.  If it is a non-tree link of the
        current configuration, flood a delta and fix tables locally;
        returns False when a global reconfiguration is required."""
        if not self.params.enable_local_reconfig:
            return False
        if not self.configured or not self.table_loaded or self.topology is None:
            return False
        far = self.topology.neighbors(self.ap.uid).get(port)
        if far is None:
            return False
        link = NetLink(PortRef(self.ap.uid, port), far)
        if self._is_tree_link(link):
            return False
        self.ap.log("local-reconfig", f"link-down {link.a}--{link.b}")
        self.ap.broadcast_to_switches(
            LinkDownMsg(epoch=self.epoch, sender_uid=self.ap.uid, link=link)
        )
        self._apply_link_down(link)
        return True

    def on_link_down(self, msg: LinkDownMsg) -> None:
        """A flooded delta arrived: remove the link and recompute."""
        if not self.params.enable_local_reconfig:
            return
        if not self.configured or self.topology is None or msg.link is None:
            return  # a global reconfiguration is already under way
        if msg.link not in self.topology.links:
            return  # duplicate (both detecting switches flood)
        if self._is_tree_link(msg.link):
            self.initiate("link-down delta for a tree link")
            return
        self._apply_link_down(msg.link)

    def _apply_link_down(self, link: NetLink) -> None:
        """Recompute this switch's table against the reduced link set.

        Only minimum-hop route choices change; the tree, levels, and link
        directions do not, so the new routes are a subset of the same
        acyclic channel ordering: still deadlock-free during the
        transition even though switches apply the delta at different
        times."""
        reduced = TopologyMap(
            root=self.topology.root,
            switches=dict(self.topology.switches),
            links=set(self.topology.links) - {link},
            numbers=dict(self.topology.numbers),
        )
        self.topology = reduced
        self.local_reconfigs += 1

        def compute_and_load() -> None:
            if self.topology is not reduced or not self.configured:
                return  # superseded by a global reconfiguration
            entries = build_forwarding_entries(
                reduced, self.ap.uid, my_host_ports=frozenset(self.ap.host_ports())
            )
            self.ap.load_forwarding(entries, reset=self.params.reset_on_load)
            self.local_applied_at = self.ap.sim.now
            self.ap.log("local-reconfig-applied", f"links={len(reduced.links)}")

        self.ap.run_task(
            compute_and_load,
            cost=self.ap.cpu.route_cost(len(reduced.switches))
            + self.ap.cpu.table_load_ns,
        )

    def nudge(self, port: int) -> None:
        """A neighbor is in an older epoch: show it our current position."""
        if port not in self.peers:
            return
        parent_far = None
        if self.position.parent_port is not None:
            neighbor = self.ap.neighbor_of(self.position.parent_port)
            parent_far = neighbor.port if neighbor else None
        self.ap.send_one_hop(
            port,
            TreePositionMsg(
                epoch=self.epoch,
                sender_uid=self.ap.uid,
                root=self.position.root,
                level=self.position.level,
                pos_seq=self.pos_seq,
                parent_uid=self.position.parent_uid,
                parent_far_port=parent_far,
            ),
        )

    def on_tree_position(self, port: int, msg: TreePositionMsg) -> None:
        if port not in self.peers:
            # not in this epoch's link set: ack so the sender stops
            # retransmitting; monitoring will reconcile the views
            self._ack(port, msg, accepts=False)
            return
        peer = self.peers[port]
        peer.uid = msg.sender_uid
        if msg.pos_seq < peer.their_seq:
            self._ack(port, msg, accepts=(self.position.parent_port == port))
            return
        if msg.pos_seq > peer.their_seq:
            peer.their_seq = msg.pos_seq
            peer.position = TreePosition(
                root=msg.root, level=msg.level,
                parent_uid=msg.parent_uid, parent_port=None,
            )
            # the neighbor is recomputing: its old stable report is void
            if peer.stable_report is not None:
                peer.stable_report = None
            peer.accepts_me = (
                msg.parent_uid == self.ap.uid and msg.parent_far_port == port
            )
        self._recompute_position()
        self._ack(port, msg, accepts=(self.position.parent_port == port))
        self._check_stability()

    def on_ack(self, port: int, msg: AckMsg) -> None:
        self._cancel_pending(msg.acked_msg_id)
        peer = self.peers.get(port)
        if peer is None:
            return
        if msg.acked_pos_seq is not None:
            peer.acked_seq = max(peer.acked_seq, msg.acked_pos_seq)
            peer.accepts_me = msg.accepts_as_parent
        self._check_stability()

    # -- step 2: stability and topology reports -----------------------------------------------

    def on_stable(self, port: int, msg: StableMsg) -> None:
        if port not in self.peers:
            self._ack(port, msg)
            return
        peer = self.peers[port]
        peer.stable_report = msg.subtree
        peer.report_version += 1
        peer.accepts_me = True
        self._ack(port, msg)
        self._check_stability()

    def _my_record(self) -> SwitchRecord:
        return SwitchRecord(
            uid=self.ap.uid,
            level=self.position.level,
            parent_port=self.position.parent_port,
            parent_uid=self.position.parent_uid,
            host_ports=frozenset(self.ap.host_ports()),
            proposed_number=self.my_number,
        )

    def _my_links(self):
        links = []
        for port in self.ports:
            neighbor = self.ap.neighbor_of(port)
            if neighbor is None:
                continue
            links.append(
                NetLink(PortRef(self.ap.uid, port), PortRef(neighbor.uid, neighbor.port))
            )
        return links

    def _children_ports(self) -> Tuple[int, ...]:
        return tuple(
            p for p, peer in sorted(self.peers.items()) if peer.accepts_me
        )

    def _is_stable(self) -> bool:
        children = self._children_ports()
        if any(self.peers[p].stable_report is None for p in children):
            return False
        if self.params.termination_mode == "quiescence":
            quiet = self.ap.sim.now - self._last_pos_change
            return quiet >= self.params.quiescence_timeout_ns
        return all(peer.acked_seq >= self.pos_seq for peer in self.peers.values())

    def _schedule_quiet_check(self) -> None:
        if self.params.termination_mode != "quiescence":
            return
        if self._quiet_event is not None:
            self._quiet_event.cancel()
        self._quiet_event = self.ap.sim.after(
            self.params.quiescence_timeout_ns + 1, self._quiet_check, self.epoch
        )

    def _quiet_check(self, epoch: int) -> None:
        if not self.ap.alive:
            return
        if epoch == self.epoch and not self.configured:
            self._check_stability()

    def _check_stability(self) -> None:
        if self.configured or not self._is_stable():
            return
        merged = merge_reports(
            root=self.position.root,
            own=self._my_record(),
            own_links=self._my_links(),
            child_maps=[
                self.peers[p].stable_report for p in self._children_ports()
            ],
        )
        if self.position.root == self.ap.uid:
            # TERMINATION: the root's unstable->stable transition (§4.1)
            self.terminations += 1
            self.ap.log("termination", f"epoch={self.epoch} switches={len(merged.switches)}")
            self.ap.obs_event(
                "termination", epoch=self.epoch, switches=len(merged.switches)
            )
            self._assign_and_distribute(merged)
            return
        signature = (
            self.pos_seq,
            tuple(
                (p, self.peers[p].report_version) for p in self._children_ports()
            ),
        )
        if signature == self._last_stable_sent:
            return
        self._last_stable_sent = signature
        self._cancel_all_pending(StableMsg)
        assert self.position.parent_port is not None
        self._send_reliable(
            self.position.parent_port,
            StableMsg(epoch=self.epoch, sender_uid=self.ap.uid, subtree=merged),
        )

    # -- steps 3-5: assignment, distribution, table load --------------------------------------------

    def _sanitize(self, merged: TopologyMap) -> TopologyMap:
        merged.links = {
            link
            for link in merged.links
            if link.a.uid in merged.switches and link.b.uid in merged.switches
            and not link.is_loop
        }
        return relevel(merged)

    def _assign_and_distribute(self, merged: TopologyMap) -> None:
        topology = self._sanitize(merged)
        cost = self.ap.cpu.assign_cost(len(topology.switches))
        epoch = self.epoch

        def finish() -> None:
            if epoch != self.epoch or self.configured:
                return  # superseded while computing the assignment
            if self.position.root != self.ap.uid:
                return  # no longer the root: our termination was premature
            topology.numbers = assign_switch_numbers(topology.switches)
            self._adopt_configuration(epoch, topology)

        self.ap.run_task(finish, cost=cost)

    def on_config(self, port: int, msg: ConfigMsg) -> None:
        self._ack(port, msg)
        if self.configured:
            return
        if msg.topology is None or self.ap.uid not in msg.topology.switches:
            return
        if msg.topology.root > self.position.root:
            # A configuration rooted at a worse UID than the root we already
            # know is stale: typically a false root's retransmission arriving
            # after we moved to the true root (its CPU was busy computing
            # tables when our ack arrived, so the retx timer won the race).
            self.ap.log("config-rejected", f"root={msg.topology.root}")
            return
        self._adopt_configuration(msg.epoch, msg.topology)

    def _adopt_configuration(self, epoch: int, topology: TopologyMap) -> None:
        self.configured = True
        self.topology = topology
        self.my_number = topology.numbers.get(self.ap.uid, self.my_number)
        if self._config_deadline is not None:
            self._config_deadline.cancel()
            self._config_deadline = None

        # step 4 continued: forward down the tree as recorded by the root
        for port in topology.children_ports(self.ap.uid):
            self._send_reliable(
                port,
                ConfigMsg(epoch=epoch, sender_uid=self.ap.uid, topology=topology),
            )

        # step 5: compute and load our own forwarding table
        def compute_and_load() -> None:
            if epoch != self.epoch or not self.configured:
                return  # superseded while computing
            entries = build_forwarding_entries(
                topology, self.ap.uid, my_host_ports=frozenset(self.ap.host_ports())
            )
            self.ap.load_forwarding(entries, reset=self.params.reset_on_load)
            self.table_loaded = True
            self.configured_at = self.ap.sim.now
            self.ap.log(
                "configured",
                f"epoch={epoch} number={self.my_number} "
                f"switches={len(topology.switches)}",
            )
            self.ap.obs_event(
                "table-loaded", epoch=epoch, number=self.my_number,
                switches=len(topology.switches),
            )
            self.ap.on_configured(epoch, topology)

        self.ap.run_task(
            compute_and_load,
            cost=self.ap.cpu.route_cost(len(topology.switches))
            + self.ap.cpu.table_load_ns,
        )
