"""The six port states of section 6.5.1 and their legal transitions."""

from __future__ import annotations

from enum import Enum
from types import MappingProxyType
from typing import FrozenSet, Mapping


class PortState(Enum):
    """Dynamic classification of a switch port (Figure 8)."""

    DEAD = "s.dead"
    CHECKING = "s.checking"
    HOST = "s.host"
    SWITCH_WHO = "s.switch.who"
    SWITCH_LOOP = "s.switch.loop"
    SWITCH_GOOD = "s.switch.good"

    @property
    def is_switch(self) -> bool:
        return self in (PortState.SWITCH_WHO, PortState.SWITCH_LOOP, PortState.SWITCH_GOOD)

    @property
    def usable(self) -> bool:
        """Port carries traffic: host ports and good switch links."""
        return self in (PortState.HOST, PortState.SWITCH_GOOD)


#: transitions owned by the status sampler (black arrows of Figure 8)
SAMPLER_TRANSITIONS: Mapping[PortState, FrozenSet[PortState]] = MappingProxyType({
    PortState.DEAD: frozenset({PortState.CHECKING}),
    PortState.CHECKING: frozenset({PortState.HOST, PortState.SWITCH_WHO, PortState.DEAD}),
    PortState.HOST: frozenset({PortState.DEAD}),
    PortState.SWITCH_WHO: frozenset({PortState.DEAD}),
    PortState.SWITCH_LOOP: frozenset({PortState.DEAD}),
    PortState.SWITCH_GOOD: frozenset({PortState.DEAD}),
})

#: transitions owned by the connectivity monitor (gray arrows of Figure 8)
MONITOR_TRANSITIONS: Mapping[PortState, FrozenSet[PortState]] = MappingProxyType({
    PortState.SWITCH_WHO: frozenset({PortState.SWITCH_LOOP, PortState.SWITCH_GOOD}),
    PortState.SWITCH_LOOP: frozenset({PortState.SWITCH_WHO}),
    PortState.SWITCH_GOOD: frozenset({PortState.SWITCH_WHO}),
})


def transition_allowed(src: PortState, dst: PortState) -> bool:
    """Whether Figure 8 permits the transition (by either component)."""
    return dst in SAMPLER_TRANSITIONS.get(src, frozenset()) or dst in MONITOR_TRANSITIONS.get(
        src, frozenset()
    )


#: transitions that must trigger a network-wide reconfiguration
RECONFIGURING_TRANSITIONS = frozenset(
    {
        (PortState.SWITCH_WHO, PortState.SWITCH_GOOD),
        (PortState.SWITCH_GOOD, PortState.SWITCH_WHO),
        (PortState.SWITCH_GOOD, PortState.DEAD),
    }
)
