"""Topology and spanning-tree descriptions exchanged during reconfiguration.

During step 2 of reconfiguration (section 6.6), a description of the
available physical topology and spanning tree accumulates up the tree to
the root; in step 4 the complete description travels back down.  These are
the value objects carried in those reports, plus :class:`TopologyMap`, the
complete picture each switch uses in step 5 to compute its forwarding
table.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.types import Uid


@dataclass(frozen=True, order=True, slots=True)
class PortRef:
    """A specific port on a specific switch."""

    uid: Uid
    port: int

    def __repr__(self) -> str:
        return f"{self.uid}:{self.port}"


@dataclass(frozen=True, slots=True)
class NetLink:
    """One operational switch-to-switch link, direction-free.

    Stored with endpoints in sorted order so that the two switches'
    independent observations of the same cable merge to one record.
    """

    a: PortRef
    b: PortRef

    def __post_init__(self) -> None:
        first, second = self.a, self.b
        if (second.uid, second.port) < (first.uid, first.port):
            object.__setattr__(self, "a", second)
            object.__setattr__(self, "b", first)

    def endpoint_at(self, uid: Uid) -> PortRef:
        if self.a.uid == uid:
            return self.a
        if self.b.uid == uid:
            return self.b
        raise ValueError(f"{uid} not on link {self}")

    def other_end(self, uid: Uid) -> PortRef:
        if self.a.uid == uid:
            return self.b
        if self.b.uid == uid:
            return self.a
        raise ValueError(f"{uid} not on link {self}")

    @property
    def is_loop(self) -> bool:
        return self.a.uid == self.b.uid


@dataclass(frozen=True, slots=True)
class SwitchRecord:
    """One switch's contribution to the topology report."""

    uid: Uid
    #: tree level (0 at the root)
    level: int
    #: this switch's port leading to its tree parent (None at the root)
    parent_port: Optional[int]
    #: UID of the tree parent (None at the root)
    parent_uid: Optional[Uid]
    #: ports classified s.host
    host_ports: FrozenSet[int] = frozenset()
    #: switch number remembered from the previous epoch (1 if fresh)
    proposed_number: int = 1


@dataclass
class TopologyMap:
    """The complete topology + spanning tree + address assignment."""

    root: Uid
    switches: Dict[Uid, SwitchRecord] = field(default_factory=dict)
    links: Set[NetLink] = field(default_factory=set)
    #: switch-number assignment computed by the root (step 3)
    numbers: Dict[Uid, int] = field(default_factory=dict)

    # -- derived views ----------------------------------------------------------------

    def neighbors(self, uid: Uid) -> Dict[int, PortRef]:
        """Map each of ``uid``'s switch-to-switch ports to the far end."""
        result: Dict[int, PortRef] = {}
        for link in self.links:
            if link.is_loop:
                continue
            if link.a.uid == uid:
                result[link.a.port] = link.b
            elif link.b.uid == uid:
                result[link.b.port] = link.a
        return result

    def level(self, uid: Uid) -> int:
        return self.switches[uid].level

    def children_ports(self, uid: Uid) -> List[int]:
        """Ports of ``uid`` that are the parent end of some child's tree link."""
        ports = []
        for other in self.switches.values():
            if other.parent_uid == uid and other.parent_port is not None:
                # find the link whose endpoint at the child is parent_port
                for link in self.links:
                    try:
                        child_end = link.endpoint_at(other.uid)
                        my_end = link.endpoint_at(uid)
                    except ValueError:
                        continue
                    if link.is_loop:
                        continue
                    if child_end.port == other.parent_port:
                        ports.append(my_end.port)
                        break
        return sorted(ports)

    def tree_depth(self) -> int:
        return max((record.level for record in self.switches.values()), default=0)

    def validate(self) -> None:
        """Internal consistency checks; raises ValueError on violation."""
        if self.root not in self.switches:
            raise ValueError("root not among switches")
        root_record = self.switches[self.root]
        if root_record.level != 0 or root_record.parent_uid is not None:
            raise ValueError("root record malformed")
        for uid, record in self.switches.items():
            if uid == self.root:
                continue
            if record.parent_uid is None or record.parent_uid not in self.switches:
                raise ValueError(f"{uid} has no valid parent")
            if self.switches[record.parent_uid].level != record.level - 1:
                raise ValueError(f"{uid} level inconsistent with parent")
        for link in self.links:
            for end in (link.a, link.b):
                if end.uid not in self.switches:
                    raise ValueError(f"link endpoint {end} unknown")

    # -- sizing (for transmission timing) -------------------------------------------------

    def encoded_bytes(self) -> int:
        """Approximate wire size of the full description (section 6.6:
        reports grow as the stable subtree grows)."""
        return 16 * len(self.switches) + 12 * len(self.links) + 8 * len(self.numbers) + 16


def merge_reports(
    root: Uid,
    own: SwitchRecord,
    own_links: Iterable[NetLink],
    child_maps: Iterable[TopologyMap],
) -> TopologyMap:
    """Combine a switch's own record with its stable children's subtrees."""
    merged = TopologyMap(root=root)
    merged.switches[own.uid] = own
    merged.links.update(own_links)
    for child_map in child_maps:
        merged.switches.update(child_map.switches)
        merged.links.update(child_map.links)
    return merged


def relevel(topology: TopologyMap) -> TopologyMap:
    """Recompute levels from parent pointers (defensive normalization)."""
    levels: Dict[Uid, int] = {topology.root: 0}
    changed = True
    while changed:
        changed = False
        for uid, record in topology.switches.items():
            if uid in levels:
                continue
            if record.parent_uid in levels:
                levels[uid] = levels[record.parent_uid] + 1
                changed = True
    new_switches = {
        uid: replace(record, level=levels.get(uid, record.level))
        for uid, record in topology.switches.items()
    }
    return TopologyMap(
        root=topology.root,
        switches=new_switches,
        links=set(topology.links),
        numbers=dict(topology.numbers),
    )
