"""Switch-number and short-address assignment (section 6.6.3).

Each switch proposes the number it held in the previous epoch (1 after a
power-on).  The root honors proposals; a contested number goes to the
proposer with the smallest UID, and losers -- along with switches whose
proposals were invalid -- receive the lowest unassigned numbers.  Because
proposals are honored, short addresses tend to survive reconfigurations,
which is what keeps host UID caches warm (section 6.8.1).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

from repro.core.topo import SwitchRecord
from repro.types import MAX_SWITCH_NUMBER, Uid


class AddressSpaceExhausted(RuntimeError):
    """More switches than assignable switch numbers."""


def assign_switch_numbers(records: Mapping[Uid, SwitchRecord]) -> Dict[Uid, int]:
    """Resolve proposed switch numbers into a unique assignment."""
    if len(records) > MAX_SWITCH_NUMBER:
        raise AddressSpaceExhausted(
            f"{len(records)} switches exceed the {MAX_SWITCH_NUMBER}-number space"
        )

    assignment: Dict[Uid, int] = {}
    contenders: Dict[int, List[Uid]] = {}
    losers: List[Uid] = []
    for uid in sorted(records):
        proposal = records[uid].proposed_number
        if 1 <= proposal <= MAX_SWITCH_NUMBER:
            contenders.setdefault(proposal, []).append(uid)
        else:
            losers.append(uid)

    for number, uids in contenders.items():
        winner = min(uids)  # the switch with the smallest UID is satisfied
        assignment[winner] = number
        losers.extend(uid for uid in uids if uid != winner)

    used = set(assignment.values())
    free = (n for n in range(1, MAX_SWITCH_NUMBER + 1) if n not in used)
    for uid in sorted(losers):
        assignment[uid] = next(free)
    return assignment


def verify_assignment(assignment: Mapping[Uid, int], uids: Iterable[Uid]) -> None:
    """Raise if the assignment is not a bijection over the given switches."""
    numbers = list(assignment.values())
    if len(set(numbers)) != len(numbers):
        raise ValueError("duplicate switch numbers assigned")
    missing = [uid for uid in uids if uid not in assignment]
    if missing:
        raise ValueError(f"switches without numbers: {missing}")
    bad = [n for n in numbers if not 1 <= n <= MAX_SWITCH_NUMBER]
    if bad:
        raise ValueError(f"numbers out of range: {bad}")
