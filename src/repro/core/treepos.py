"""Tree positions and the Perlman-style comparison rule (section 6.6.1).

Each switch maintains its current position in the forming spanning tree as
(root UID, level, parent UID, port to parent).  A port offering a new
position is a *better parent link* if it leads to:

1. a root with a smaller UID, or
2. the same root via a shorter tree path, or
3. the same root and length but through a parent with a smaller UID, or
4. the same parent but via a lower port number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.types import Uid


@dataclass(frozen=True)
class TreePosition:
    """A switch's claimed position in the spanning tree."""

    root: Uid
    level: int
    parent_uid: Optional[Uid] = None
    parent_port: Optional[int] = None

    @staticmethod
    def as_root(uid: Uid) -> "TreePosition":
        """The initial position: every switch assumes it is the root."""
        return TreePosition(root=uid, level=0, parent_uid=None, parent_port=None)

    def sort_key(self) -> tuple:
        """Total order: smaller is better."""
        return (
            self.root,
            self.level,
            self.parent_uid if self.parent_uid is not None else Uid(0),
            self.parent_port if self.parent_port is not None else -1,
        )

    def better_than(self, other: "TreePosition") -> bool:
        return self.sort_key() < other.sort_key()


def candidate_position(
    neighbor_root: Uid, neighbor_level: int, neighbor_uid: Uid, my_port: int
) -> TreePosition:
    """The position I would hold by adopting this neighbor as parent."""
    return TreePosition(
        root=neighbor_root,
        level=neighbor_level + 1,
        parent_uid=neighbor_uid,
        parent_port=my_port,
    )
