"""Control-plane message formats.

All reconfiguration traffic travels in one-hop switch-to-switch packets
(short addresses 0x001-0x00F), so it keeps flowing while routing is down.
Every message carries the sender's 64-bit epoch number (section 6.6.2).
``encoded_bytes`` approximates the on-wire size so that transmission time
scales the way the paper's does -- topology reports grow as the stable
subtree grows (section 6.6.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.topo import TopologyMap
from repro.types import Uid

_msg_ids = itertools.count(1)


@dataclass
class ControlMessage:
    """Base class: epoch tag plus a per-sender unique id for acking."""

    epoch: int
    sender_uid: Uid
    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    #: whether the reliable-delivery layer retransmits until acked
    needs_ack = False

    def encoded_bytes(self) -> int:
        return 24


@dataclass
class TreePositionMsg(ControlMessage):
    """Step 1: a switch reports its current tree position to a neighbor.

    ``parent_uid``/``parent_far_port`` describe the sender's chosen parent
    link (the far port is the *parent-side* port number, learned from
    connectivity replies), letting the receiver tell whether the sender
    claims it as parent.
    """

    root: Uid = Uid(0)
    level: int = 0
    pos_seq: int = 0
    parent_uid: Optional[Uid] = None
    parent_far_port: Optional[int] = None

    needs_ack = True

    def encoded_bytes(self) -> int:
        return 40


@dataclass
class AckMsg(ControlMessage):
    """Acknowledges one control message.

    For tree-position packets the ack carries the "this is now my parent
    link" bit of section 6.6.1 plus the acknowledged position sequence
    number, so the sender can tell which of its positions was acked.
    """

    acked_msg_id: int = 0
    acked_pos_seq: Optional[int] = None
    accepts_as_parent: bool = False

    def encoded_bytes(self) -> int:
        return 24


@dataclass
class StableMsg(ControlMessage):
    """Step 2: "I am stable", expanded into a topology report of the
    sender's stable subtree (switch records, links, proposed numbers)."""

    subtree: Optional[TopologyMap] = None

    needs_ack = True

    def encoded_bytes(self) -> int:
        return 24 + (self.subtree.encoded_bytes() if self.subtree else 0)


@dataclass
class ConfigMsg(ControlMessage):
    """Step 4: the complete topology, tree, and address assignment,
    distributed down the spanning tree by the root."""

    topology: Optional[TopologyMap] = None

    needs_ack = True

    def encoded_bytes(self) -> int:
        return 24 + (self.topology.encoded_bytes() if self.topology else 0)


@dataclass
class LinkDownMsg(ControlMessage):
    """Local reconfiguration (section 7 future work): a non-tree link
    died; every switch removes it and recomputes its table against the
    unchanged spanning tree, with no epoch and no traffic blackout."""

    link: object = None  # a NetLink

    def encoded_bytes(self) -> int:
        return 36


@dataclass
class CodeDownloadMsg(ControlMessage):
    """A new Autopilot version propagating switch to switch (section 5.4).

    The receiving switch accepts the image, reboots into it, and then
    propagates it to its neighbors.  ``image_bytes`` defaults to the
    paper's 62,000-byte object program.
    """

    version: int = 1
    image_bytes: int = 62_000

    def encoded_bytes(self) -> int:
        return 24 + self.image_bytes


@dataclass
class ConnectivityProbe(ControlMessage):
    """Connectivity-monitor test packet (section 6.5.4)."""

    nonce: int = 0
    sender_port: int = 0

    def encoded_bytes(self) -> int:
        return 32


@dataclass
class ConnectivityReply(ControlMessage):
    """Reply: echoes the prober's UID, port, and nonce."""

    nonce: int = 0
    echo_uid: Uid = Uid(0)
    echo_port: int = 0
    sender_port: int = 0

    def encoded_bytes(self) -> int:
        return 40


@dataclass
class HostAddressRequest(ControlMessage):
    """A host asks the local switch for its short address (section 6.3)."""

    host_uid: Uid = Uid(0)

    def encoded_bytes(self) -> int:
        return 24


@dataclass
class HostAddressReply(ControlMessage):
    """The switch tells a host the short address of its attachment port."""

    short_address: int = 0

    def encoded_bytes(self) -> int:
        return 24


@dataclass
class SrpMessage(ControlMessage):
    """Source-routed protocol packet (section 6.7).

    ``route`` is the remaining sequence of outbound port numbers;
    ``reply_route`` accumulates the return path.  ``command`` selects the
    debugging operation at the final switch.
    """

    route: Tuple[int, ...] = ()
    reply_route: Tuple[int, ...] = ()
    command: str = "ping"
    payload: object = None
    #: filled by the responding switch
    response: object = None
    is_reply: bool = False

    def encoded_bytes(self) -> int:
        return 32 + 2 * (len(self.route) + len(self.reply_route)) + 64
