"""The source-routed protocol (SRP) for debugging and monitoring (§6.7).

An SRP packet carries an explicit sequence of outbound port numbers.  At
each switch along the path the control processor receives the packet,
pops the next port, and forwards it one hop.  Because each step uses only
the constant part of the forwarding table, SRP works even while routing
is down -- including during reconfiguration, which is exactly when the
debugging tools are needed.

Supported commands at the final switch:

* ``ping``        -- echo.
* ``get-log``     -- return the circular reconfiguration event log.
* ``get-state``   -- return switch state variables (epoch, position,
  port states, forwarding-table generation).
* ``get-topology``-- return the switch's current topology knowledge.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.core.messages import SrpMessage


class SrpHandler:
    """SRP processing for one Autopilot instance."""

    def __init__(self, ap) -> None:
        self.ap = ap
        self.requests_served = 0

    def handle(self, in_port: int, msg: SrpMessage) -> None:
        if msg.route:
            # more hops to go: pop the next outbound port and forward,
            # prepending our receive port to the accumulated return path
            # (port 0 means we originated the request: nothing to retrace)
            next_port, *rest = msg.route
            back = (in_port,) + tuple(msg.reply_route) if in_port != 0 else tuple(msg.reply_route)
            forwarded = replace(
                msg,
                route=tuple(rest),
                reply_route=back,
            )
            unit = self.ap.switch.ports.get(next_port)
            if unit is not None and unit.connected:
                acct = self.ap.sim.control
                if acct is not None:
                    acct.record_srp(msg.command, "hop")
                self.ap.send_one_hop(next_port, forwarded)
            return
        if msg.is_reply:
            # arrived back at the originator; deliver to the registered
            # callback (stands in for the real request-id dispatch)
            callback = msg.payload
            if callable(callback):
                callback(msg)
            return
        # we are the destination: serve the command and retrace the path.
        # the reply leaves on the port the request arrived on; the
        # accumulated reply_route steers each switch on the way back.
        self.requests_served += 1
        acct = self.ap.sim.control
        if acct is not None:
            acct.record_srp(msg.command, "served")
        reply = replace(
            msg,
            route=tuple(msg.reply_route),
            reply_route=(),
            is_reply=True,
            response=self._serve(msg.command),
        )
        if in_port == 0:
            # originated at this very switch: deliver locally
            callback = msg.payload
            if callable(callback):
                callback(reply)
        else:
            self.ap.send_one_hop(in_port, reply)

    def _serve(self, command: str) -> Optional[object]:
        ap = self.ap
        if command == "ping":
            return "pong"
        if command == "get-log":
            return list(ap.trace.entries())
        if command == "get-state":
            return {
                "uid": ap.uid,
                "epoch": ap.epoch,
                "configured": ap.configured,
                "position": ap.engine.position,
                "number": ap.engine.my_number,
                "port_states": {
                    p: ap.monitoring.state_of(p).value for p in ap.switch.ports
                },
                "table_generation": ap.switch.table.generation,
            }
        if command == "get-topology":
            return ap.engine.topology
        if command == "get-neighbors":
            # identity of the switch on each good port, plus port states:
            # the raw material for recovering the physical topology
            return {
                "uid": ap.uid,
                "number": ap.engine.my_number,
                "position": ap.engine.position,
                "neighbors": {
                    p: (info.uid, info.port)
                    for p in ap.monitoring.good_ports()
                    if (info := ap.monitoring.neighbor_of(p)) is not None
                },
                "host_ports": tuple(ap.monitoring.host_ports()),
            }
        return None
