"""The status skeptic and connectivity skeptic (section 6.5.5).

Both provide the stabilizing hysteresis that keeps intermittent equipment
from thrashing the network: faults are answered quickly, but a port that
keeps failing is held out of service for progressively longer periods,
bounding the reconfiguration rate an unstable link can cause.

* The **status skeptic** controls the error-free *holding period* a port
  must exhibit before leaving s.dead.  Transitions to s.dead lengthen the
  next holding period; time spent in the working states shortens it.
* The **connectivity skeptic** controls how many consecutive good probe
  replies are required before s.switch.who is promoted to s.switch.good.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import MS, SEC


@dataclass
class SkepticParams:
    """Tuning knobs shared by both skeptics."""

    #: holding period after the first failure
    min_hold_ns: int = 200 * MS
    #: ceiling on the holding period
    max_hold_ns: int = 60 * SEC
    #: multiplier applied on each new transition to s.dead
    growth: float = 2.0
    #: good time required to halve the holding period
    decay_interval_ns: int = 10 * SEC


class StatusSkeptic:
    """Per-port hold-down state for the s.dead -> s.checking transition."""

    def __init__(self, params: SkepticParams) -> None:
        self.params = params
        self.hold_ns = params.min_hold_ns
        self._good_since: int = 0
        self.failures = 0

    def on_failure(self, now: int) -> None:
        """The port was sent to s.dead: lengthen the next holding period."""
        self.failures += 1
        if self.failures > 1:
            self.hold_ns = min(
                int(self.hold_ns * self.params.growth), self.params.max_hold_ns
            )

    def on_good_period_start(self, now: int) -> None:
        """The port entered a working state (s.host or s.switch.*)."""
        self._good_since = now

    def credit_good_time(self, now: int) -> None:
        """Apply decay for time spent working (called periodically)."""
        while (
            now - self._good_since >= self.params.decay_interval_ns
            and self.hold_ns > self.params.min_hold_ns
        ):
            self.hold_ns = max(self.params.min_hold_ns, self.hold_ns // 2)
            self._good_since += self.params.decay_interval_ns
            if self.failures:
                self.failures -= 1

    def required_hold(self) -> int:
        return self.hold_ns


class ConnectivitySkeptic:
    """Per-port requirement on good probe replies before s.switch.good."""

    def __init__(
        self,
        base_required: int = 2,
        max_required: int = 64,
        decay_interval_ns: int = 30 * SEC,
        growth: float = 2.0,
    ) -> None:
        self.base_required = base_required
        self.max_required = max_required
        self.decay_interval_ns = decay_interval_ns
        self.growth = growth
        self.required = base_required
        self._good_since = 0

    def on_demotion(self, now: int) -> None:
        """s.switch.good was lost: demand a longer good streak next time."""
        self.required = min(max(self.required + 1, int(self.required * self.growth)), self.max_required) \
            if self.growth > 1.0 else self.base_required
        self._good_since = now

    def on_promoted(self, now: int) -> None:
        self._good_since = now

    def credit_good_time(self, now: int) -> None:
        while (
            now - self._good_since >= self.decay_interval_ns
            and self.required > self.base_required
        ):
            self.required = max(self.base_required, self.required // 2)
            self._good_since += self.decay_interval_ns

    def satisfied(self, consecutive_good: int) -> bool:
        return consecutive_good >= self.required
