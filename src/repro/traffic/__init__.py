"""repro.traffic: flow-level workloads and the traffic SLO observatory.

The production question behind the paper's §6.7 blackout metric is
"how much user traffic does a reconfiguration cost at load?".  This
package answers it: seeded open-loop workloads over hundreds-to-
thousands of logical hosts, a flow-level fluid model over the live
forwarding tables (with a per-packet cross-validation mode), and a
blackout-cost observatory windowed against the reconfiguration
tracer's epoch spans, exported as versioned ``repro.traffic/1``
artifacts.

Entry points: ``Network(traffic=...)`` wires a
:class:`~repro.traffic.engine.TrafficEngine` onto ``sim.traffic``;
``python -m repro.traffic run`` drives the canonical generate ->
converge -> load -> cut -> reconverge -> report scenario.
"""

from repro.traffic.artifact import (
    TRAFFIC_SCHEMA,
    TrafficSchemaError,
    read_traffic,
    validate_traffic,
    write_traffic,
)
from repro.traffic.engine import TrafficEngine
from repro.traffic.fluid import LINK_CAPACITY, solve_rates, walk_path
from repro.traffic.workload import (
    ARRIVAL_PATTERNS,
    TRAFFIC_MODES,
    Flow,
    TrafficConfig,
    generate_flows,
    host_switch,
)

__all__ = [
    "ARRIVAL_PATTERNS",
    "TRAFFIC_MODES",
    "TRAFFIC_SCHEMA",
    "Flow",
    "LINK_CAPACITY",
    "TrafficConfig",
    "TrafficEngine",
    "TrafficSchemaError",
    "generate_flows",
    "host_switch",
    "read_traffic",
    "solve_rates",
    "validate_traffic",
    "walk_path",
    "write_traffic",
]
