"""The versioned ``repro.traffic/1`` artifact: schema, validator, I/O.

One JSON document per workload run, mirroring the other obs artifacts
(``repro.bench/1``, ``repro.obs.inband/1``): a ``schema`` tag, the
generating config, cumulative SLO aggregates (offered/delivered bytes,
blackout cost, delivery-latency quantiles, drops by cause), and the
per-epoch ``windows`` that price each reconfiguration span's
undelivered offered load.  ``validate_traffic`` is structural -- types,
ranges, required fields -- so CI can gate any produced artifact without
re-running the workload.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

from repro.traffic.workload import ARRIVAL_PATTERNS, TRAFFIC_MODES

TRAFFIC_SCHEMA = "repro.traffic/1"


class TrafficSchemaError(ValueError):
    """Raised by :func:`validate_traffic` on a malformed document."""


def _fail(path: str, why: str) -> None:
    raise TrafficSchemaError(f"{path}: {why}")


def _check_int(value: Any, path: str, minimum: int = 0) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        _fail(path, f"expected int >= {minimum}")


def _check_number(value: Any, path: str) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(path, "expected number")


def _check_number_or_null(value: Any, path: str) -> None:
    if value is not None:
        _check_number(value, path)


def validate_traffic(doc: Any) -> Dict[str, Any]:
    """Structurally validate a traffic document; returns it on success."""
    if not isinstance(doc, dict):
        _fail("$", f"expected object, got {type(doc).__name__}")
    if doc.get("schema") != TRAFFIC_SCHEMA:
        _fail("$.schema", f"expected {TRAFFIC_SCHEMA!r}, got {doc.get('schema')!r}")
    if not isinstance(doc.get("name"), str):
        _fail("$.name", "expected string")

    config = doc.get("config")
    if not isinstance(config, dict):
        _fail("$.config", "expected object")
    if config.get("pattern") not in ARRIVAL_PATTERNS:
        _fail("$.config.pattern", f"expected one of {ARRIVAL_PATTERNS}")
    if config.get("mode") not in TRAFFIC_MODES:
        _fail("$.config.mode", f"expected one of {TRAFFIC_MODES}")
    for field in ("flows", "hosts", "mean_flow_bytes", "duration_ns"):
        _check_int(config.get(field), f"$.config.{field}")

    if not isinstance(doc.get("launched"), bool):
        _fail("$.launched", "expected bool")
    for field in ("time_ns", "generated_flows", "flows_completed",
                  "flows_active", "flows_pending", "flows_unrouted"):
        _check_int(doc.get(field), f"$.{field}")
    for field in ("offered_bytes", "delivered_bytes", "blackout_cost_bytes"):
        _check_number(doc.get(field), f"$.{field}")
        if doc[field] < 0:
            _fail(f"$.{field}", "expected non-negative number")
    _check_number_or_null(doc.get("goodput_bytes_per_sec"), "$.goodput_bytes_per_sec")

    latency = doc.get("latency")
    if not isinstance(latency, dict):
        _fail("$.latency", "expected object")
    _check_int(latency.get("count"), "$.latency.count")
    for field in ("p50_ns", "p99_ns", "mean_ns", "max_ns"):
        _check_number_or_null(latency.get(field), f"$.latency.{field}")

    drops = doc.get("drops")
    if not isinstance(drops, dict):
        _fail("$.drops", "expected object")
    for cause, count in drops.items():
        if not isinstance(cause, str) or not cause:
            _fail("$.drops", "expected non-empty string causes")
        _check_int(count, f"$.drops[{cause!r}]")

    segments = doc.get("segments")
    if not isinstance(segments, dict):
        _fail("$.segments", "expected object")
    _check_int(segments.get("recorded"), "$.segments.recorded")
    _check_int(segments.get("dropped"), "$.segments.dropped")

    windows = doc.get("windows")
    if not isinstance(windows, list):
        _fail("$.windows", "expected array")
    for i, window in enumerate(windows):
        path = f"$.windows[{i}]"
        if not isinstance(window, dict):
            _fail(path, "expected object")
        _check_int(window.get("epoch"), f"{path}.epoch", minimum=-(10 ** 9))
        _check_int(window.get("start_ns"), f"{path}.start_ns")
        if window.get("end_ns") is not None:
            _check_int(window["end_ns"], f"{path}.end_ns")
        _check_number_or_null(window.get("max_blackout_ns"), f"{path}.max_blackout_ns")
        for field in ("offered_bytes", "delivered_bytes", "blackout_cost_bytes"):
            _check_number(window.get(field), f"{path}.{field}")
        _check_number_or_null(window.get("goodput_bytes_per_sec"),
                              f"{path}.goodput_bytes_per_sec")

    sample = doc.get("flows_sample")
    if not isinstance(sample, list):
        _fail("$.flows_sample", "expected array")
    for i, flow in enumerate(sample):
        path = f"$.flows_sample[{i}]"
        if not isinstance(flow, dict):
            _fail(path, "expected object")
        for field in ("flow_id", "arrival_ns", "src_host", "dst_host", "size_bytes"):
            _check_int(flow.get(field), f"{path}.{field}")
        if flow.get("state") not in ("pending", "active", "unrouted", "completed"):
            _fail(f"{path}.state", "expected a flow state string")
        _check_number_or_null(flow.get("latency_ns"), f"{path}.latency_ns")
    return doc


def write_traffic(path: str, doc: Dict[str, Any]) -> None:
    """Validate and write one traffic artifact."""
    validate_traffic(doc)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")


def read_traffic(path: str) -> Dict[str, Any]:
    """Load and validate a traffic artifact."""
    with open(path) as fh:
        doc = json.load(fh)
    return validate_traffic(doc)
