"""The flow-level fluid model: paths from live forwarding tables,
max-min fair rate shares, piecewise-constant integration.

Per ROADMAP item 3 the engine never simulates a data packet for large
workloads: between re-solve events every flow transfers at a constant
rate, so a thousand-flow workload costs a handful of events per epoch
rather than millions.  The two primitives here are pure functions over
the live network state:

* :func:`walk_path` follows the loaded up*/down* forwarding tables from
  a flow's source switch toward its destination's short address exactly
  as a packet would, taking the lowest-numbered port of each multipath
  entry (the deterministic stand-in for the hardware's random pick).  A
  DISCARD entry, a cut or reflecting cable, a dead switch, or a
  transient loop all mean *no route* -- which is precisely the blackout
  the observatory prices.
* :func:`solve_rates` water-fills link capacity (1 byte per
  ``BYTE_TIME_NS``) max-min fairly across the routed flows.

Both are recomputed only when something they depend on changes: a
forwarding-table ``generation`` bump, a fault, a flow arrival or
completion (see :class:`repro.traffic.engine.TrafficEngine`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.constants import BYTE_TIME_NS
from repro.net.link import LinkState

#: fluid link capacity in bytes per nanosecond (3.125 MB/s per §2 link
#: pair is the paper's hardware; the simulator's links move one byte per
#: BYTE_TIME_NS, so the fluid model matches the packet simulation)
LINK_CAPACITY = 1.0 / BYTE_TIME_NS

#: a flow's path: canonical link keys ((switch index, port) of the
#: lower-indexed end), empty tuple for same-switch delivery
PathKey = Tuple[Tuple[int, int], ...]


def port_owner_map(network) -> Dict[int, Tuple[int, int]]:
    """``id(link unit) -> (switch index, port)`` for every switch port.

    Port objects survive switch power cycles, so this map is computed
    once per engine and stays valid across crash/restart faults.
    """
    out: Dict[int, Tuple[int, int]] = {}
    for i, switch in enumerate(network.switches):
        for p, unit in switch.ports.items():
            out[id(unit)] = (i, p)
    return out


def walk_path(
    network,
    owners: Dict[int, Tuple[int, int]],
    src_switch: int,
    dst_switch: int,
    max_hops: int = 64,
) -> Optional[PathKey]:
    """The link sequence a packet from ``src_switch`` to ``dst_switch``
    would traverse right now, or None when the tables cannot deliver it."""
    from repro.constants import CONTROL_PROCESSOR_PORT

    if not network.autopilots[src_switch].alive:
        return None
    if src_switch == dst_switch:
        return ()
    address = network.short_address_of(dst_switch, CONTROL_PROCESSOR_PORT)
    if address is None:
        return None  # destination not configured: nothing routes to it
    sw = src_switch
    in_port = CONTROL_PROCESSOR_PORT
    links: List[Tuple[int, int]] = []
    for _ in range(max_hops):
        if sw == dst_switch:
            return tuple(links)
        if not network.autopilots[sw].alive:
            return None
        entry = network.switches[sw].table.lookup(in_port, address)
        if entry.is_discard or not entry.ports:
            return None
        out = entry.ports[0]
        if out == CONTROL_PROCESSOR_PORT:
            return None  # delivered to the wrong switch's CP
        link = network.links.get((sw, out))
        if link is None or link.state is not LinkState.UP:
            return None  # table still points at a dead cable: blackout
        far = link.other(network.switches[sw].ports[out])
        owner = owners.get(id(far))
        if owner is None:
            return None  # host port: not a transit hop
        links.append((min((sw, out), owner)))
        sw, in_port = owner
    return None  # loop or absurdly long path: treat as unrouted


def solve_rates(
    paths: Dict[int, PathKey],
    capacity: float = LINK_CAPACITY,
) -> Dict[int, float]:
    """Max-min fair rates (bytes/ns) for ``flow_id -> path``.

    Classic progressive filling: repeatedly find the tightest link
    (least remaining capacity per unfixed flow), freeze its flows at
    that fair share, and subtract.  Same-switch flows (empty path) run
    at access line rate.
    """
    rates: Dict[int, float] = {}
    link_flows: Dict[Tuple[int, int], List[int]] = {}
    for fid, path in paths.items():
        if not path:
            rates[fid] = capacity
            continue
        for key in path:
            link_flows.setdefault(key, []).append(fid)
    remaining = {key: capacity for key in link_flows}
    unfixed = {key: len(flows) for key, flows in link_flows.items()}
    pending = {fid for fid, path in paths.items() if path}
    while pending:
        bottleneck = None
        share = None
        for key, count in unfixed.items():
            if count <= 0:
                continue
            s = remaining[key] / count
            if share is None or s < share or (s == share and key < bottleneck):
                bottleneck, share = key, s
        if bottleneck is None:
            break
        for fid in link_flows[bottleneck]:
            if fid not in pending:
                continue
            rates[fid] = share
            pending.discard(fid)
            for key in paths[fid]:
                remaining[key] -= share
                unfixed[key] -= 1
    return rates


def total_generation(network) -> Tuple[int, ...]:
    """A cheap fingerprint of the forwarding state: every table's
    ``generation`` counter (bumped on each load/clear)."""
    return tuple(switch.table.generation for switch in network.switches)


def routed_count(paths: Iterable[Optional[PathKey]]) -> int:
    return sum(1 for p in paths if p is not None)
