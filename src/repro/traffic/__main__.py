"""CLI for the traffic SLO observatory.

.. code-block:: console

    # the acceptance scenario: 1000-flow hotspot workload over 500
    # logical hosts on the 30-switch SRC LAN, surviving a cable cut
    python -m repro.traffic run --out traffic.json

    # smaller and per-packet, for cross-checking the fluid model
    python -m repro.traffic run --topo ring-4 --mode packet \
        --flows 8 --hosts 4 --cut 0-1

    # render a previously recorded artifact
    python -m repro.traffic report traffic.json

    # structural gate (CI's traffic-smoke job)
    python -m repro.traffic validate traffic.json

``run`` drives the shared scenario (generate -> converge -> load ->
cut -> reconverge -> report) through :func:`repro.scenario.
drive_scenario` -- the same driver ``python -m repro.obs paths`` uses
-- and writes a validated ``repro.traffic/1`` artifact.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

from repro.constants import SEC
from repro.network import Network
from repro.scenario import drive_scenario, report_unknown_subcommand
from repro.topology.generators import TOPOLOGY_FAMILIES, resolve_topology
from repro.traffic.artifact import read_traffic, validate_traffic, write_traffic
from repro.traffic.workload import ARRIVAL_PATTERNS, TRAFFIC_MODES, TrafficConfig


def _parse_cut(text: str):
    try:
        a, b = text.split("-", 1)
        return int(a), int(b)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected a cut like 0-1 (two switch indices), got {text!r}"
        ) from exc


def _fmt_ns(value) -> str:
    if value is None:
        return "-"
    if value < 1_000:
        return f"{value:.0f}ns"
    if value < 1_000_000:
        return f"{value / 1e3:.1f}us"
    if value < 1_000_000_000:
        return f"{value / 1e6:.1f}ms"
    return f"{value / 1e9:.3f}s"


def _fmt_bytes(value) -> str:
    if value is None:
        return "-"
    if value < 1_024:
        return f"{value:.0f}B"
    if value < 1_048_576:
        return f"{value / 1024:.1f}KiB"
    if value < 1_073_741_824:
        return f"{value / 1048576:.2f}MiB"
    return f"{value / 1073741824:.2f}GiB"


def render_report(doc: Dict[str, Any]) -> str:
    """The human-readable report for one ``repro.traffic/1`` document."""
    config = doc["config"]
    lines = [
        f"traffic SLO report: {doc['name'] or '(unnamed)'}",
        (
            f"  workload: {config['pattern']} x{config['flows']} flows over "
            f"{config['hosts']} hosts, mean {_fmt_bytes(config['mean_flow_bytes'])}"
            f", {config['mode']} mode"
        ),
        (
            f"  flows: {doc['flows_completed']} completed, "
            f"{doc['flows_active']} active ({doc['flows_unrouted']} unrouted), "
            f"{doc['flows_pending']} pending"
        ),
        (
            f"  offered {_fmt_bytes(doc['offered_bytes'])}  "
            f"delivered {_fmt_bytes(doc['delivered_bytes'])}  "
            f"blackout cost {_fmt_bytes(doc['blackout_cost_bytes'])}"
        ),
        (
            f"  goodput {_fmt_bytes(doc['goodput_bytes_per_sec'])}/s  "
            f"delivery latency p50 {_fmt_ns(doc['latency']['p50_ns'])} "
            f"p99 {_fmt_ns(doc['latency']['p99_ns'])} "
            f"(n={doc['latency']['count']})"
        ),
    ]
    if doc["drops"]:
        causes = ", ".join(f"{k}={v}" for k, v in doc["drops"].items())
        lines.append(f"  drops by cause: {causes}")
    if doc["windows"]:
        lines.append("  per-epoch goodput / blackout cost:")
        for window in doc["windows"]:
            end = window["end_ns"]
            span = (
                f"[+{window['start_ns'] / 1e9:.3f}s.."
                f"{'+' + format(end / 1e9, '.3f') + 's' if end is not None else 'open'}]"
            )
            lines.append(
                f"    epoch {window['epoch']:>3} {span} "
                f"blackout {_fmt_ns(window['max_blackout_ns'])}: "
                f"goodput {_fmt_bytes(window['goodput_bytes_per_sec'])}/s, "
                f"cost {_fmt_bytes(window['blackout_cost_bytes'])}"
            )
    return "\n".join(lines)


def _cmd_run(args) -> int:
    spec = resolve_topology(args.topo)
    config = TrafficConfig(
        pattern=args.pattern,
        flows=args.flows,
        hosts=args.hosts,
        mean_flow_bytes=args.mean_bytes,
        duration_ns=int(args.duration * SEC),
        mode=args.mode,
    )
    net = Network(
        spec,
        seed=args.seed,
        traffic=config,
        timeseries=args.timeseries,
    )
    cuts = args.cut
    if not cuts and not args.no_cut:
        a, _pa, b, _pb = spec.cables[0]
        cuts = [(a, b)]
    load_ns = int(args.duration * SEC) + int(args.drain * SEC)
    drive_scenario(net, cuts, load_ns=load_ns)
    doc = net.traffic_doc()
    validate_traffic(doc)
    print(render_report(doc))
    if args.out:
        write_traffic(args.out, doc)
        print(f"wrote {args.out}")
    if args.timeseries and args.timeseries_out:
        net.export_timeseries(args.timeseries_out)
        print(f"wrote {args.timeseries_out}")
    return 0


def _cmd_report(args) -> int:
    doc = read_traffic(args.artifact)
    print(render_report(doc))
    return 0


def _cmd_validate(args) -> int:
    doc = read_traffic(args.artifact)
    print(
        f"{args.artifact}: valid {doc['schema']} "
        f"({doc['generated_flows']} flows, {len(doc['windows'])} windows)"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.traffic",
        description="Flow-level traffic workloads with blackout-cost "
        "accounting during reconfiguration.",
    )
    sub = parser.add_subparsers(dest="command")

    p_run = sub.add_parser(
        "run", help="generate a workload, run it through a cable cut, report"
    )
    p_run.add_argument(
        "--topo", default="src-lan-30", help="topology name (default src-lan-30)"
    )
    p_run.add_argument(
        "--pattern", default="hotspot", choices=ARRIVAL_PATTERNS,
        help="arrival process (default hotspot)",
    )
    p_run.add_argument(
        "--flows", type=int, default=1000, help="flow count (default 1000)"
    )
    p_run.add_argument(
        "--hosts", type=int, default=500, help="logical hosts (default 500)"
    )
    p_run.add_argument(
        "--mean-bytes", type=int, default=131_072,
        help="mean flow size in bytes (default 131072)",
    )
    p_run.add_argument(
        "--duration", type=float, default=1.0, metavar="SEC",
        help="arrival window; also the load phase each side of the cut "
             "(default 1.0 simulated seconds)",
    )
    p_run.add_argument(
        "--drain", type=float, default=1.0, metavar="SEC",
        help="extra run time per load phase for flows to finish (default 1.0)",
    )
    p_run.add_argument(
        "--mode", default="fluid", choices=TRAFFIC_MODES,
        help="fluid rate shares (default) or per-packet with real hosts",
    )
    p_run.add_argument(
        "--cut", type=_parse_cut, action="append", default=[], metavar="A-B",
        help="cut the link between switches A and B (repeatable; "
             "default: the topology's first cable)",
    )
    p_run.add_argument(
        "--no-cut", action="store_true", help="run the workload with no fault"
    )
    p_run.add_argument("--seed", type=int, default=0, help="simulation seed")
    p_run.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the repro.traffic/1 artifact here",
    )
    p_run.add_argument(
        "--timeseries", action="store_true",
        help="also sample the traffic series into timeseries rings",
    )
    p_run.add_argument(
        "--timeseries-out", default=None, metavar="PATH",
        help="with --timeseries: write the repro.obs.timeseries/1 artifact",
    )
    p_run.set_defaults(fn=_cmd_run)

    p_report = sub.add_parser("report", help="render a recorded artifact")
    p_report.add_argument("artifact", help="path to a repro.traffic/1 document")
    p_report.set_defaults(fn=_cmd_report)

    p_validate = sub.add_parser(
        "validate", help="structurally validate a repro.traffic/1 artifact"
    )
    p_validate.add_argument("artifact", help="path to a repro.traffic/1 document")
    p_validate.set_defaults(fn=_cmd_validate)

    listing = report_unknown_subcommand(
        parser, sub, argv,
        extra=["topologies (--topo):"]
        + [f"  {example:<14} {desc}" for example, desc in TOPOLOGY_FAMILIES],
    )
    if listing is not None:
        return listing
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
