"""Per-packet traffic mode: real hosts, real datagrams, small topologies.

The fluid model (the default) is an approximation; this mode is its
ground truth.  Each logical host becomes a real
:class:`~repro.host.controller.HostController` on a free switch port
with a :class:`~repro.host.localnet.LocalNet` on top, and every flow is
sent as a train of chunked client datagrams paced at access line rate
-- open loop, no retransmission, exactly the offered-load semantics the
fluid model integrates.  The flow id rides in ``Packet.payload`` so the
receiving sink can demultiplex deliveries back onto flows.

Only viable when every logical host can claim a free port (ring-4 in
the cross-validation test); :class:`PacketHosts` raises otherwise.
"""

from __future__ import annotations

from typing import Dict, List

from repro.constants import (
    AUTONET_HEADER_BYTES,
    BYTE_TIME_NS,
    CRC_BYTES,
    MS,
)
from repro.net.packet import ETHERNET_HEADER_BYTES
from repro.traffic.workload import Flow, host_switch

#: data bytes per chunk datagram (well under MAX_DATA_BYTES)
CHUNK_DATA_BYTES = 16_384

#: retry pacing when LocalNet refuses a send (driver not ready, ARP
#: outstanding, tx buffer full)
RETRY_NS = 5 * MS


class PacketHosts:
    """Real-host attachment + chunked senders for one TrafficEngine."""

    def __init__(self, engine) -> None:
        self.engine = engine
        self.network = engine.network
        self.sim = engine.sim
        self.localnets: List = []
        self.uids: List = []
        self._attach()

    def _attach(self) -> None:
        from repro.host.localnet import LocalNet

        network = self.network
        n_switches = len(network.switches)
        free: Dict[int, List[int]] = {}
        for i, switch in enumerate(network.switches):
            free[i] = [
                p for p in sorted(switch.ports, reverse=True)
                if not switch.ports[p].connected
            ]
        for host in range(self.engine.config.hosts):
            sw = host_switch(host, n_switches)
            if not free[sw]:
                raise ValueError(
                    f"packet mode: no free port on sw{sw} for logical host "
                    f"{host}; use fewer hosts or the fluid mode"
                )
            port = free[sw].pop(0)
            name = f"tr{host}"
            controller = network.add_host(name, [(sw, port)])
            localnet = LocalNet(network.drivers[name])
            localnet.on_datagram = self._sink
            self.localnets.append(localnet)
            self.uids.append(controller.uid)

    def _sink(self, src_uid, ethertype: int, data_bytes: int, packet) -> None:
        fid = packet.payload
        if isinstance(fid, int) and fid in self.engine.runs:
            self.engine.packet_delivered(fid, data_bytes)

    # -- sending ----------------------------------------------------------------------

    def launch(self, base_ns: int) -> None:
        for localnet in self.localnets:
            localnet.driver.kick()  # learn short addresses now, not in 2 s
        for flow in self.engine.flows:
            self.sim.at(base_ns + flow.arrival_ns, self._start_flow, flow)

    def _start_flow(self, flow: Flow) -> None:
        self.engine.packet_arrived(flow.flow_id)
        self._send_chunk(flow)

    def _send_chunk(self, flow: Flow) -> None:
        run = self.engine.runs[flow.flow_id]
        if run.state != "active":
            return
        if run.sent >= flow.size_bytes:
            return  # everything is on (or lost in) the wire
        chunk = min(CHUNK_DATA_BYTES, flow.size_bytes - run.sent)
        if run.sent + chunk > run.offered:
            self.engine.packet_offered(
                flow.flow_id, run.sent + chunk - int(run.offered)
            )
        localnet = self.localnets[flow.src_host]
        if localnet.send(self.uids[flow.dst_host], chunk, payload=flow.flow_id):
            run.sent += chunk
            wire = (
                AUTONET_HEADER_BYTES + ETHERNET_HEADER_BYTES + chunk + CRC_BYTES
            ) * BYTE_TIME_NS
            self.sim.after(wire, self._send_chunk, flow)
        else:
            self.sim.after(RETRY_NS, self._send_chunk, flow)
