"""The traffic engine: workload execution plus the SLO observatory.

``Network(traffic=...)`` builds one :class:`TrafficEngine` and hangs it
on ``sim.traffic`` -- the same optional-attribute discipline every
other observability layer follows (staticcheck RS308 audits the call
sites).  With traffic off, ``sim.traffic`` stays None and every hook in
the data path is one attribute load plus a None test, so disabled runs
remain byte-identical.

Two execution modes share one observatory:

* **fluid** (the default): logical hosts, no packets.  Flows transfer
  at max-min fair rate shares computed from the *live* forwarding
  tables (:mod:`repro.traffic.fluid`), re-solved when a flow arrives or
  completes, when a table generation bumps, on any fault, and on every
  :class:`~repro.obs.spans.ReconfigTracer` span event -- so the rate
  plan reacts exactly when the control plane acts.  The fluid engine is
  purely observational: it schedules its own simulator events but never
  touches a switch, link, or FIFO, so enabling it leaves the network's
  event history unchanged.
* **packet**: real :class:`~repro.host.controller.HostController` hosts
  attached to free switch ports, sending line-rate-paced chunked
  datagrams through the actual switches.  Tractable only for small
  topologies; it exists to cross-validate the fluid approximation.

The observatory prices reconfiguration in offered-load terms: offered
bytes accrue at access line rate from a flow's arrival until its bytes
are exhausted, delivered bytes accrue at the achieved rate, and the
shortfall -- the **blackout cost** -- is windowed against the tracer's
epoch spans in the exported ``repro.traffic/1`` artifact.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.constants import SEC
from repro.net.packet import PacketType
from repro.obs.registry import Histogram
from repro.traffic.artifact import TRAFFIC_SCHEMA
from repro.traffic.fluid import (
    LINK_CAPACITY,
    port_owner_map,
    solve_rates,
    total_generation,
    walk_path,
)
from repro.traffic.workload import Flow, TrafficConfig, generate_flows, host_switch

#: a flow is complete when its fluid remainder drops below half a byte
COMPLETE_EPS = 0.5

#: delivery-latency histogram buckets (ns): 100us .. ~400s, geometric
LATENCY_BUCKETS = tuple(100_000 * 4 ** k for k in range(12))


class FlowRun:
    """Runtime state of one flow (both modes)."""

    __slots__ = (
        "flow", "state", "remaining", "rate", "path", "walked",
        "offered", "delivered", "sent", "latency_ns",
    )

    def __init__(self, flow: Flow) -> None:
        self.flow = flow
        self.state = "pending"  # pending -> active -> completed
        self.remaining = float(flow.size_bytes)
        self.rate = 0.0
        self.path = None
        self.walked = False
        self.offered = 0.0   # packet mode: bytes handed to the sender
        self.delivered = 0.0  # packet mode: bytes seen by the sink
        self.sent = 0        # packet mode: bytes accepted by LocalNet
        self.latency_ns: Optional[int] = None


class TrafficEngine:
    """Workload execution + SLO accounting for one installation."""

    def __init__(self, network, config: TrafficConfig) -> None:
        self.network = network
        self.sim = network.sim
        self.config = config
        self.registry = network.rng.fork("traffic")
        self.flows: List[Flow] = generate_flows(
            config, self.registry.stream("workload")
        )
        self.runs: Dict[int, FlowRun] = {f.flow_id: FlowRun(f) for f in self.flows}
        self._active: set = set()
        self._pending = len(self.flows)
        self.completed = 0

        # cumulative SLO aggregates (bytes are floats in fluid mode)
        self.offered_bytes = 0.0
        self.delivered_bytes = 0.0
        self.deficit_bytes = 0.0
        self.packets_delivered = 0
        self.drops: Dict[str, int] = {}
        self.latency_hist = Histogram(
            "traffic_flow_latency_ns", {}, buckets=LATENCY_BUCKETS
        )

        # piecewise accounting segments: (t0, t1, offered, delivered, deficit)
        self.segments: List[tuple] = []
        self.segments_dropped = 0

        self.launched = False
        self._launch_ns = 0
        self._owners = port_owner_map(network)
        self._n_switches = len(network.switches)

        # fluid solver pacing state
        self._last_advance = 0
        self._last_solve_ns = -(10 ** 18)
        self._walked_fp: Any = None
        self._fault_version = 0
        self._resolve_handle = None
        self._resolve_at = 0
        self._completion_handle = None

        self._packet_net = None
        if config.mode == "packet":
            from repro.traffic.packet import PacketHosts

            self._packet_net = PacketHosts(self)

        if network.sampler is not None:
            self._install_collectors(network.sampler)
        if network.tracer is not None:
            network.tracer.add_listener(self._span_event)

    # -- timeseries collectors (literal names: RS304/RS308) --------------------------

    def _install_collectors(self, sampler) -> None:
        sampler.add_collector(
            "traffic_active_flows", lambda: float(len(self._active))
        )
        sampler.add_collector(
            "traffic_unrouted_flows",
            lambda: float(sum(
                1 for fid in self._active if self.runs[fid].path is None
            )),
        )
        sampler.add_collector(
            "traffic_completed_flows", lambda: float(self.completed), kind="counter"
        )
        sampler.add_collector(
            "traffic_offered_bytes", lambda: self.offered_bytes, kind="counter"
        )
        sampler.add_collector(
            "traffic_delivered_bytes", lambda: self.delivered_bytes, kind="counter"
        )
        sampler.add_collector(
            "traffic_blackout_cost_bytes", lambda: self.deficit_bytes, kind="counter"
        )

    # -- workload launch --------------------------------------------------------------

    def launch(self) -> None:
        """Start the workload clock: flows arrive relative to *now*.

        Call after initial convergence (the scenario driver does) so the
        workload measures a running network's reconfigurations, not its
        boot."""
        if self.launched:
            raise RuntimeError("traffic workload already launched")
        self.launched = True
        self._launch_ns = self.sim.now
        self._last_advance = self.sim.now
        if self._packet_net is not None:
            self._packet_net.launch(self._launch_ns)
            self._schedule_segment_roll()
            return
        for flow in self.flows:
            self.sim.at(self._launch_ns + flow.arrival_ns, self._arrive, flow)

    # -- event hooks (guarded call sites audit as RS308) ------------------------------

    def note_fault(self, kind: str) -> None:
        """A fault was injected: paths may have died without any table
        generation changing, so force a re-walk soon."""
        self._fault_version += 1
        if self.launched and self._packet_net is None:
            self._request_resolve(0)

    def _span_event(self, t_ns: int, component: str, event: str, attrs) -> None:
        # table loads/clears bump table generations; re-solve promptly so
        # blackout windows get sharp edges
        if self.launched and self._packet_net is None:
            self._request_resolve(0)

    def record_delivery(self, packet, host: str) -> None:
        """Hot-path stamp (host rx): one of our packet-mode datagrams
        arrived intact."""
        if packet.ptype is not PacketType.CLIENT:
            return
        if not isinstance(packet.payload, int) or packet.payload not in self.runs:
            return
        self.packets_delivered += 1

    def record_drop(self, packet, component: str, cause: str) -> None:
        """Hot-path stamp (host rx / switch / FIFO): a packet-mode
        datagram died, attributed by cause."""
        if packet.ptype is not PacketType.CLIENT:
            return
        if not isinstance(packet.payload, int) or packet.payload not in self.runs:
            return
        self.drops[cause] = self.drops.get(cause, 0) + 1

    # -- fluid mode -------------------------------------------------------------------

    def _arrive(self, flow: Flow) -> None:
        self._advance(self.sim.now)
        run = self.runs[flow.flow_id]
        run.state = "active"
        run.walked = False
        self._active.add(flow.flow_id)
        self._pending -= 1
        self._request_resolve(self.config.arrival_batch_ns)

    def _request_resolve(self, delay_ns: int) -> None:
        """Schedule a re-solve no later than now+delay, coalescing with
        any pending request and respecting the minimum solve gap."""
        target = max(
            self.sim.now + delay_ns,
            self._last_solve_ns + self.config.min_resolve_gap_ns,
        )
        if self._resolve_handle is not None:
            if self._resolve_at <= target:
                return
            self._resolve_handle.cancel()
        self._resolve_handle = self.sim.at(target, self._resolve_timer)
        self._resolve_at = target

    def _resolve_timer(self) -> None:
        self._resolve_handle = None
        self._resolve()

    def _resolve(self) -> None:
        now = self.sim.now
        self._advance(now)
        if not self._active:
            if self._completion_handle is not None:
                self._completion_handle.cancel()
                self._completion_handle = None
            return
        fingerprint = (total_generation(self.network), self._fault_version)
        stale_all = fingerprint != self._walked_fp
        for fid in self._active:
            run = self.runs[fid]
            if stale_all or not run.walked:
                run.path = walk_path(
                    self.network,
                    self._owners,
                    host_switch(run.flow.src_host, self._n_switches),
                    host_switch(run.flow.dst_host, self._n_switches),
                    self.config.max_hops,
                )
                run.walked = True
        self._walked_fp = fingerprint
        rates = solve_rates({
            fid: self.runs[fid].path
            for fid in self._active
            if self.runs[fid].path is not None
        })
        for fid in self._active:
            self.runs[fid].rate = rates.get(fid, 0.0)
        self._last_solve_ns = now
        self._schedule_completion(now)
        self._request_resolve(self.config.resolve_interval_ns)

    def _schedule_completion(self, now: int) -> None:
        if self._completion_handle is not None:
            self._completion_handle.cancel()
            self._completion_handle = None
        best = None
        for fid in self._active:
            run = self.runs[fid]
            if run.rate > 0.0:
                t = now + run.remaining / run.rate
                if best is None or t < best:
                    best = t
        if best is not None:
            self._completion_handle = self.sim.at(int(best) + 1, self._completion_timer)

    def _completion_timer(self) -> None:
        self._completion_handle = None
        self._advance(self.sim.now)
        self._request_resolve(0)

    def _advance(self, now: int) -> None:
        """Integrate the piecewise-constant rate plan up to ``now``."""
        dt = now - self._last_advance
        if dt <= 0:
            return
        self._last_advance = now
        if not self._active:
            return
        seg_offered = 0.0
        seg_delivered = 0.0
        seg_deficit = 0.0
        finished: List[int] = []
        for fid in self._active:
            run = self.runs[fid]
            offered = min(run.remaining, LINK_CAPACITY * dt)
            delivered = min(run.remaining, run.rate * dt)
            run.remaining -= delivered
            seg_offered += offered
            seg_delivered += delivered
            if run.walked and run.path is None:
                # the table walk found no route (blackout or partition):
                # the whole demand goes undelivered -- the §6.7 cost.
                # Flows merely awaiting their first solve (rate still
                # 0.0 for up to arrival_batch_ns) are admission latency,
                # not blackout, and are excluded.
                seg_deficit += offered
            if run.remaining <= COMPLETE_EPS:
                finished.append(fid)
        self.offered_bytes += seg_offered
        self.delivered_bytes += seg_delivered
        self.deficit_bytes += seg_deficit
        if len(self.segments) < self.config.max_segments:
            self.segments.append(
                (now - dt, now, seg_offered, seg_delivered, seg_deficit)
            )
        else:
            self.segments_dropped += 1
        for fid in finished:
            self._complete(fid, now)

    def _complete(self, fid: int, now: int) -> None:
        run = self.runs[fid]
        run.state = "completed"
        run.remaining = 0.0
        run.rate = 0.0
        run.latency_ns = now - (self._launch_ns + run.flow.arrival_ns)
        self.latency_hist.observe(float(run.latency_ns))
        self._active.discard(fid)
        self.completed += 1

    # -- packet-mode accounting (driven by repro.traffic.packet) ----------------------

    def _schedule_segment_roll(self) -> None:
        self._seg_mark = (self.offered_bytes, self.delivered_bytes)
        self.sim.after(self.config.resolve_interval_ns, self._segment_roll)

    def _segment_roll(self) -> None:
        now = self.sim.now
        t0 = self._last_advance
        self._last_advance = now
        offered0, delivered0 = self._seg_mark
        d_off = self.offered_bytes - offered0
        d_del = self.delivered_bytes - delivered0
        d_deficit = max(0.0, d_off - d_del)
        self.deficit_bytes += d_deficit
        if d_off or d_del:
            if len(self.segments) < self.config.max_segments:
                self.segments.append((t0, now, d_off, d_del, d_deficit))
            else:
                self.segments_dropped += 1
        if self._active or self._pending:
            self._schedule_segment_roll()

    def packet_arrived(self, fid: int) -> None:
        run = self.runs[fid]
        run.state = "active"
        self._active.add(fid)
        self._pending -= 1

    def packet_offered(self, fid: int, nbytes: int) -> None:
        self.runs[fid].offered += nbytes
        self.offered_bytes += nbytes

    def packet_delivered(self, fid: int, nbytes: int) -> None:
        run = self.runs[fid]
        if run.state != "active":
            return
        run.delivered += nbytes
        self.delivered_bytes += nbytes
        if run.delivered >= run.flow.size_bytes:
            run.remaining = 0.0
            self._complete(fid, self.sim.now)

    # -- SLO invariants (chaos campaigns) --------------------------------------------

    def slo_violations(self) -> List[str]:
        """Permanent-goodput-loss check for quiescent points: an active
        flow whose endpoints are alive and physically connected must
        have a forwarding path.  (Fluid mode only; packet mode has no
        authoritative route view.)"""
        if not self.launched or self._packet_net is not None:
            return []
        components = self.network.operational_components()
        member = {}
        for component in components:
            for index in component:
                member[index] = component
        out: List[str] = []
        for fid in sorted(self._active):
            run = self.runs[fid]
            src = host_switch(run.flow.src_host, self._n_switches)
            dst = host_switch(run.flow.dst_host, self._n_switches)
            if member.get(src) is None or member.get(dst) is not member.get(src):
                continue  # partitioned or dead endpoints: loss is expected
            path = walk_path(
                self.network, self._owners, src, dst, self.config.max_hops
            )
            if path is None:
                out.append(
                    f"flow {fid} (h{run.flow.src_host}@sw{src} -> "
                    f"h{run.flow.dst_host}@sw{dst}): no route at quiescence"
                )
        return out

    # -- export -----------------------------------------------------------------------

    def _windows(self) -> List[Dict[str, Any]]:
        """Per-epoch blackout-cost windows: segment totals prorated onto
        each reconfiguration span of the tracer."""
        tracer = self.network.tracer
        if tracer is None:
            return []
        now = self.sim.now
        out = []
        for span in tracer.span_summary():
            start = span["start_ns"]
            end = span["end_ns"] if span["end_ns"] is not None else now
            offered = delivered = deficit = 0.0
            for t0, t1, seg_offered, seg_delivered, seg_deficit in self.segments:
                lo = max(t0, start)
                hi = min(t1, end)
                if hi <= lo:
                    continue
                fraction = (hi - lo) / (t1 - t0)
                offered += seg_offered * fraction
                delivered += seg_delivered * fraction
                deficit += seg_deficit * fraction
            duration = end - start
            out.append({
                "epoch": span["key"],
                "start_ns": start,
                "end_ns": span["end_ns"],
                "max_blackout_ns": span.get("max_blackout_ns"),
                "offered_bytes": round(offered, 3),
                "delivered_bytes": round(delivered, 3),
                "blackout_cost_bytes": round(deficit, 3),
                "goodput_bytes_per_sec": (
                    delivered / duration * SEC if duration > 0 else None
                ),
            })
        return out

    def document(self, name: str = "") -> Dict[str, Any]:
        """The ``repro.traffic/1`` artifact as a dict."""
        if self.launched and self._packet_net is None:
            self._advance(self.sim.now)
        unrouted = sum(
            1 for fid in self._active if self.runs[fid].walked
            and self.runs[fid].path is None
        )
        elapsed = self.sim.now - self._launch_ns if self.launched else 0
        hist = self.latency_hist
        sample = []
        for flow in self.flows[: self.config.sample_flows]:
            run = self.runs[flow.flow_id]
            state = run.state
            if state == "active" and run.walked and run.path is None:
                state = "unrouted"
            sample.append({
                "flow_id": flow.flow_id,
                "arrival_ns": flow.arrival_ns,
                "src_host": flow.src_host,
                "dst_host": flow.dst_host,
                "size_bytes": flow.size_bytes,
                "state": state,
                "latency_ns": run.latency_ns,
            })
        return {
            "schema": TRAFFIC_SCHEMA,
            "name": name,
            "config": {
                "pattern": self.config.pattern,
                "mode": self.config.mode,
                "flows": self.config.flows,
                "hosts": self.config.hosts,
                "mean_flow_bytes": self.config.mean_flow_bytes,
                "duration_ns": self.config.duration_ns,
            },
            "launched": self.launched,
            "time_ns": self.sim.now,
            "generated_flows": len(self.flows),
            "flows_completed": self.completed,
            "flows_active": len(self._active),
            "flows_pending": self._pending,
            "flows_unrouted": unrouted,
            "offered_bytes": round(self.offered_bytes, 3),
            "delivered_bytes": round(self.delivered_bytes, 3),
            "blackout_cost_bytes": round(self.deficit_bytes, 3),
            "goodput_bytes_per_sec": (
                self.delivered_bytes / elapsed * SEC if elapsed > 0 else None
            ),
            "latency": {
                "count": hist.count,
                "p50_ns": hist.quantile(0.5),
                "p99_ns": hist.quantile(0.99),
                "mean_ns": hist.mean if hist.count else None,
                "max_ns": hist.max,
            },
            "drops": dict(sorted(self.drops.items())),
            "packets_delivered": self.packets_delivered,
            "segments": {
                "recorded": len(self.segments),
                "dropped": self.segments_dropped,
            },
            "windows": self._windows(),
            "flows_sample": sample,
        }
