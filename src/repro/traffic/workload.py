"""Open-loop flow workloads: seeded arrival processes over logical hosts.

The traffic engine models *logical* hosts -- hundreds to thousands of
senders multiplexed onto the installation's switches without paying for
a controller object each (``host h`` pins to ``switch h % n_switches``,
the same dual-homing-free simplification E1 uses for its probe hosts).
A workload is a deterministic list of :class:`Flow` records drawn from
one of four open-loop arrival processes:

* ``uniform`` -- Poisson arrivals, uniformly random source/destination
  pairs (the all-to-all background the paper's LAN carried);
* ``hotspot`` -- 80% of flows target a small hot set of destination
  hosts (~5% of the population), the skew production fabrics actually
  see;
* ``incast`` -- every flow targets one victim host, arrivals clumped
  into bursts (the many-to-one pattern that fills the victim's FIFO);
* ``diurnal`` -- uniform pairs with arrival rate modulated by a fixed
  day-shape profile, so load ramps rather than steps.

Everything is drawn from one ``random.Random`` stream handed in by the
caller (the engine forks it from the installation's
:class:`~repro.sim.rng.RngRegistry` via ``child_seed``), so a workload
is a pure function of (seed, config, switch count) and replays
bit-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.constants import MS, SEC

#: the supported arrival processes, in documentation order
ARRIVAL_PATTERNS = ("uniform", "hotspot", "incast", "diurnal")

#: traffic-model execution modes (see repro.traffic.engine)
TRAFFIC_MODES = ("fluid", "packet")

#: relative arrival-rate profile over the diurnal "day" (12 equal slots)
DIURNAL_PROFILE = (0.3, 0.2, 0.15, 0.2, 0.4, 0.7, 1.0, 1.3, 1.5, 1.4, 1.1, 0.7)

#: fraction of hotspot flows aimed at the hot set, and the set's size
HOTSPOT_FRACTION = 0.8
HOTSPOT_SET_DIVISOR = 20

#: incast burst shaping: mean flows per burst and intra-burst jitter
INCAST_BURST_FLOWS = 50
INCAST_JITTER_NS = 1 * MS

#: floor and ceiling on drawn flow sizes (bytes)
MIN_FLOW_BYTES = 512
MAX_FLOW_SIZE_MULTIPLE = 64


@dataclass(frozen=True)
class Flow:
    """One offered flow: ``size_bytes`` from ``src_host`` to
    ``dst_host``, arriving ``arrival_ns`` after the workload launches."""

    flow_id: int
    arrival_ns: int
    src_host: int
    dst_host: int
    size_bytes: int


@dataclass
class TrafficConfig:
    """Configuration for the traffic engine (``Network(traffic=...)``).

    ``coerce`` accepts the same shorthand every other obs layer takes:
    ``True`` (defaults), an int (flow count), a config, a dict of
    field overrides (chaos schedules carry these through JSON), or
    ``None``/``False`` (off).
    """

    pattern: str = "hotspot"
    flows: int = 1000
    hosts: int = 500
    mean_flow_bytes: int = 131_072
    #: arrival window: flows arrive within this span after launch()
    duration_ns: int = 2 * SEC
    #: "fluid" (rate shares, observational) or "packet" (real hosts)
    mode: str = "fluid"
    #: fluid solver pacing: batch window for arrival-triggered re-solves
    #: and the minimum gap between any two solves
    arrival_batch_ns: int = 10 * MS
    min_resolve_gap_ns: int = 1 * MS
    #: periodic re-solve/segment-roll interval while flows are active
    resolve_interval_ns: int = 50 * MS
    #: forwarding-table walk bound (transient loops count as no-route)
    max_hops: int = 64
    #: bounded accounting rings
    max_segments: int = 65_536
    #: flows echoed verbatim into the artifact's ``flows_sample``
    sample_flows: int = 32

    def __post_init__(self) -> None:
        if self.pattern not in ARRIVAL_PATTERNS:
            raise ValueError(
                f"unknown arrival pattern {self.pattern!r}; "
                f"expected one of {ARRIVAL_PATTERNS}"
            )
        if self.mode not in TRAFFIC_MODES:
            raise ValueError(
                f"unknown traffic mode {self.mode!r}; expected one of {TRAFFIC_MODES}"
            )
        if self.flows < 0 or self.hosts < 1:
            raise ValueError("traffic needs flows >= 0 and hosts >= 1")

    @classmethod
    def coerce(
        cls, value: "bool | int | dict | TrafficConfig | None"
    ) -> Optional["TrafficConfig"]:
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, int):
            return cls(flows=value)
        if isinstance(value, dict):
            known = cls.__dataclass_fields__
            unknown = sorted(set(value) - set(known))
            if unknown:
                raise ValueError(f"unknown traffic config fields: {unknown}")
            return cls(**value)
        raise TypeError(
            f"traffic must be bool, int, dict, or TrafficConfig: {value!r}"
        )


def host_switch(host: int, n_switches: int) -> int:
    """The switch a logical host pins to (deterministic round-robin)."""
    return host % n_switches


def _draw_size(rng: random.Random, mean_bytes: int) -> int:
    size = int(rng.expovariate(1.0 / mean_bytes))
    return max(MIN_FLOW_BYTES, min(size, mean_bytes * MAX_FLOW_SIZE_MULTIPLE))


def _uniform_pair(rng: random.Random, hosts: int) -> tuple:
    src = rng.randrange(hosts)
    dst = rng.randrange(hosts - 1) if hosts > 1 else 0
    if hosts > 1 and dst >= src:
        dst += 1
    return src, dst


def _poisson_arrivals(rng: random.Random, flows: int, duration_ns: int) -> List[int]:
    rate = flows / duration_ns if duration_ns > 0 else 0.0
    t = 0.0
    out = []
    for _ in range(flows):
        t += rng.expovariate(rate) if rate > 0 else 0.0
        out.append(min(int(t), duration_ns))
    return out

def _diurnal_arrivals(rng: random.Random, flows: int, duration_ns: int) -> List[int]:
    total = sum(DIURNAL_PROFILE)
    slot_ns = duration_ns / len(DIURNAL_PROFILE)
    out = []
    for _ in range(flows):
        pick = rng.random() * total
        cumulative = 0.0
        for slot, weight in enumerate(DIURNAL_PROFILE):
            cumulative += weight
            if pick <= cumulative:
                out.append(min(int((slot + rng.random()) * slot_ns), duration_ns))
                break
    return sorted(out)


def generate_flows(config: TrafficConfig, rng: random.Random) -> List[Flow]:
    """The deterministic traffic matrix: ``config.flows`` flows over
    ``config.hosts`` logical hosts, drawn entirely from ``rng``."""
    flows = config.flows
    hosts = config.hosts
    records: List[tuple] = []

    if config.pattern == "uniform":
        arrivals = _poisson_arrivals(rng, flows, config.duration_ns)
        for t in arrivals:
            src, dst = _uniform_pair(rng, hosts)
            records.append((t, src, dst, _draw_size(rng, config.mean_flow_bytes)))
    elif config.pattern == "hotspot":
        hot = rng.sample(range(hosts), max(1, hosts // HOTSPOT_SET_DIVISOR))
        arrivals = _poisson_arrivals(rng, flows, config.duration_ns)
        for t in arrivals:
            if rng.random() < HOTSPOT_FRACTION:
                dst = rng.choice(hot)
                src = rng.randrange(hosts)
                while hosts > 1 and src == dst:
                    src = rng.randrange(hosts)
            else:
                src, dst = _uniform_pair(rng, hosts)
            records.append((t, src, dst, _draw_size(rng, config.mean_flow_bytes)))
    elif config.pattern == "incast":
        victim = rng.randrange(hosts)
        n_bursts = max(1, flows // INCAST_BURST_FLOWS)
        burst_times = sorted(
            rng.randrange(max(1, config.duration_ns)) for _ in range(n_bursts)
        )
        for _ in range(flows):
            base = burst_times[rng.randrange(n_bursts)]
            t = min(base + rng.randrange(INCAST_JITTER_NS), config.duration_ns)
            src = rng.randrange(hosts)
            while hosts > 1 and src == victim:
                src = rng.randrange(hosts)
            records.append((t, src, victim, _draw_size(rng, config.mean_flow_bytes)))
    else:  # diurnal
        arrivals = _diurnal_arrivals(rng, flows, config.duration_ns)
        for t in arrivals:
            src, dst = _uniform_pair(rng, hosts)
            records.append((t, src, dst, _draw_size(rng, config.mean_flow_bytes)))

    records.sort(key=lambda r: r[0])
    return [
        Flow(flow_id=i, arrival_ns=t, src_host=s, dst_host=d, size_bytes=size)
        for i, (t, s, d, size) in enumerate(records)
    ]
