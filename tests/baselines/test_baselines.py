"""Baseline networks: Ethernet, token ring, and the routing ablations."""

import pytest

from repro.analysis.deadlock import has_deadlock_potential
from repro.analysis.invariants import all_pairs_reachable, links_used
from repro.baselines.ethernet import ETHERNET_BROADCAST, Ethernet
from repro.baselines.routing_ablation import (
    build_shortest_path_entries,
    tree_only_topology,
)
from repro.baselines.token_ring import RING_BROADCAST, TokenRing
from repro.constants import MS, SEC
from repro.core.routing import build_forwarding_entries
from repro.sim.engine import Simulator
from repro.topology import expected_tree, ring, torus
from repro.types import Uid


class TestEthernet:
    def test_unicast_delivery(self):
        sim = Simulator()
        ether = Ethernet(sim)
        a = ether.attach(Uid(1))
        b = ether.attach(Uid(2))
        got = []
        b.on_receive = lambda src, dst, size, payload: got.append((src, size))
        a.send(Uid(2), 1000)
        sim.run(until=10 * MS)
        assert got == [(Uid(1), 1000)]

    def test_broadcast_reaches_all_but_sender(self):
        sim = Simulator()
        ether = Ethernet(sim)
        stations = [ether.attach(Uid(i)) for i in range(1, 5)]
        got = []
        for s in stations:
            s.on_receive = lambda src, dst, size, payload, s=s: got.append(s.uid)
        stations[0].send(ETHERNET_BROADCAST, 100)
        sim.run(until=10 * MS)
        assert sorted(got) == [Uid(2), Uid(3), Uid(4)]

    def test_aggregate_capped_at_link_bandwidth(self):
        """The motivating bottleneck: total throughput <= 10 Mbit/s."""
        sim = Simulator()
        ether = Ethernet(sim, max_queue=10_000)
        a, b = ether.attach(Uid(1)), ether.attach(Uid(2))
        c, d = ether.attach(Uid(3)), ether.attach(Uid(4))
        for _ in range(2000):
            a.send(Uid(2), 1400)
            c.send(Uid(4), 1400)
        sim.run(until=1 * SEC)
        mbps = ether.bytes_carried * 8 / 1e9 * 1e3  # bits per ns -> Mbit/s
        assert mbps <= 10.0
        assert mbps > 8.0  # efficiently utilized, just bounded

    def test_frame_size_limit(self):
        sim = Simulator()
        ether = Ethernet(sim)
        a = ether.attach(Uid(1))
        with pytest.raises(ValueError):
            a.send(Uid(2), 3000)


class TestTokenRing:
    def test_delivery(self):
        sim = Simulator()
        ring_net = TokenRing(sim, 8)
        got = []
        ring_net.stations[3].on_receive = lambda src, dst, size, p: got.append(size)
        ring_net.stations[0].send(ring_net.stations[3].uid, 900)
        sim.run(until=50 * MS)
        assert got == [900]

    def test_latency_grows_with_ring_size(self):
        """Section 3.2: a ring has latency proportional to the number of
        hosts."""

        def mean_latency(n):
            sim = Simulator()
            ring_net = TokenRing(sim, n)
            for i in range(n):
                ring_net.stations[i].send(
                    ring_net.stations[(i + n // 2) % n].uid, 500
                )
            sim.run(until=100 * MS)
            return ring_net.mean_latency_ns()

        assert mean_latency(64) > 2.5 * mean_latency(16)

    def test_aggregate_capped_at_link_bandwidth(self):
        sim = Simulator()
        ring_net = TokenRing(sim, 16, max_queue=100_000)
        for station in ring_net.stations:
            partner = ring_net.stations[(station.index + 8) % 16]
            for _ in range(400):
                station.send(partner.uid, 1400)
        sim.run(until=100 * MS)
        mbps = ring_net.bytes_carried * 8 / (100 * MS) * 1e3
        assert mbps <= 100.0

    def test_broadcast(self):
        sim = Simulator()
        ring_net = TokenRing(sim, 4)
        got = []
        for s in ring_net.stations[1:]:
            s.on_receive = lambda src, dst, size, p, s=s: got.append(s.index)
        ring_net.stations[0].send(RING_BROADCAST, 200)
        sim.run(until=50 * MS)
        assert sorted(got) == [1, 2, 3]


class TestRoutingAblation:
    def test_tree_only_topology_has_n_minus_1_links(self):
        topo = expected_tree(torus(3, 4))
        tree = tree_only_topology(topo)
        assert len(tree.links) == len(topo.switches) - 1
        assert tree.links < topo.links

    def test_tree_only_routing_reachable_and_deadlock_free(self):
        topo = expected_tree(torus(3, 4))
        tree = tree_only_topology(topo)
        entries = {uid: build_forwarding_entries(tree, uid) for uid in tree.switches}
        assert all(all_pairs_reachable(tree, entries).values())
        assert not has_deadlock_potential(tree, entries)

    def test_tree_only_wastes_cross_links(self):
        """Tree routing leaves every non-tree link idle (E11's point)."""
        topo = expected_tree(torus(3, 4))
        tree = tree_only_topology(topo)
        entries = {uid: build_forwarding_entries(tree, uid) for uid in tree.switches}
        used = links_used(topo, entries)
        assert used == tree.links
        assert len(used) < len(topo.links)

    def test_shortest_path_reaches_everything(self):
        topo = expected_tree(torus(3, 4))
        entries = {
            uid: build_shortest_path_entries(topo, uid) for uid in topo.switches
        }
        assert all(all_pairs_reachable(topo, entries).values())

    def test_shortest_path_admits_deadlock_on_ring(self):
        """Unrestricted minimum-hop routing has dependency cycles on any
        cycle-containing topology (section 3.6)."""
        for spec in (ring(6), torus(3, 4)):
            topo = expected_tree(spec)
            entries = {
                uid: build_shortest_path_entries(topo, uid) for uid in topo.switches
            }
            assert has_deadlock_potential(topo, entries)

    def test_updown_free_where_shortest_path_is_not(self):
        spec = torus(3, 4)
        topo = expected_tree(spec)
        updown = {uid: build_forwarding_entries(topo, uid) for uid in topo.switches}
        shortest = {
            uid: build_shortest_path_entries(topo, uid) for uid in topo.switches
        }
        assert not has_deadlock_potential(topo, updown)
        assert has_deadlock_potential(topo, shortest)
