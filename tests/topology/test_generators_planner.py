"""Topology generators, the SRC LAN, and the installation planner."""

import networkx as nx
import pytest

from repro.constants import SEC
from repro.topology import (
    dcell,
    expected_tree,
    fat_tree,
    line,
    mesh,
    random_regular,
    ring,
    src_service_lan,
    topology_names,
    torus,
    tree,
)
from repro.topology.planner import plan_installation
from repro.topology.src_lan import src_host_ports


def as_graph(spec):
    g = nx.MultiGraph()
    g.add_nodes_from(range(spec.n_switches))
    g.add_edges_from((a, b) for a, _pa, b, _pb in spec.cables)
    return g


class TestGenerators:
    def test_line(self):
        spec = line(5)
        assert spec.n_switches == 5
        assert len(spec.cables) == 4
        assert nx.is_connected(as_graph(spec))

    def test_ring(self):
        spec = ring(6)
        g = as_graph(spec)
        assert all(d == 2 for _n, d in g.degree())

    def test_tree(self):
        spec = tree(depth=3, fanout=2)
        assert spec.n_switches == 15
        assert len(spec.cables) == 14

    def test_mesh_and_torus_edge_counts(self):
        assert len(mesh(3, 4).cables) == 3 * 3 + 2 * 4  # rows*(c-1) + (r-1)*cols
        g = as_graph(torus(4, 4))
        assert all(d == 4 for _n, d in g.degree())

    def test_random_regular_connected_and_bounded(self):
        for seed in range(5):
            spec = random_regular(15, degree=4, seed=seed)
            g = as_graph(spec)
            assert nx.is_connected(g)
            assert max(d for _n, d in g.degree()) <= 12

    def test_ports_never_reused(self):
        for spec in (torus(4, 8), random_regular(20, 4, seed=2), tree(3, 3),
                     fat_tree(6), dcell(4, level=1), dcell(2, level=2)):
            for i in range(spec.n_switches):
                used = spec.used_ports(i)
                assert len(used) == len(set(used)), f"{spec.name} sw{i}"

    def test_fat_tree_shape(self):
        for k, n in ((4, 20), (6, 45), (8, 80)):
            spec = fat_tree(k)
            g = as_graph(spec)
            assert spec.n_switches == n
            # k^2/4 core-agg links per pod * k pods, plus (k/2)^2 agg-edge
            # links per pod * k pods = k^3/2 switch-to-switch links
            assert len(spec.cables) == k**3 // 2
            assert nx.is_connected(g)
            assert nx.is_biconnected(nx.Graph(g))
            assert max(d for _n, d in g.degree()) <= k

    def test_fat_tree_rejects_odd_or_oversized_arity(self):
        with pytest.raises(ValueError):
            fat_tree(3)
        with pytest.raises(ValueError):
            fat_tree(14)  # more ports than the 12-port crossbar has

    def test_dcell_shape(self):
        # t_1 = n(n+1) servers plus one mini-switch per n-server cell
        for n, total in ((2, 9), (3, 16), (4, 25)):
            spec = dcell(n, level=1)
            g = as_graph(spec)
            assert spec.n_switches == total
            assert nx.is_connected(g)
            assert nx.is_biconnected(nx.Graph(g))
        # level 2 recursion: t_2 = t_1(t_1+1) = 42 servers + 21 switches
        spec = dcell(2, level=2)
        assert spec.n_switches == 63
        assert nx.is_biconnected(nx.Graph(as_graph(spec)))

    def test_dcell_level_zero_is_a_star(self):
        spec = dcell(4, level=0)
        g = as_graph(spec)
        assert spec.n_switches == 5
        assert not nx.is_biconnected(nx.Graph(g))  # the mini-switch is a cut vertex

    def test_dcell_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            dcell(1)
        with pytest.raises(ValueError):
            dcell(13)
        with pytest.raises(ValueError):
            dcell(3, level=3)

    def test_topology_names_all_resolve(self):
        from repro.topology import resolve_topology

        names = topology_names()
        assert "fat-tree-4" in names and "dcell-3l1" in names
        for name in names:
            assert resolve_topology(name).n_switches > 0, name

    def test_expected_tree_matches_protocol_root(self):
        spec = ring(5)
        topo = expected_tree(spec)
        assert topo.root == min(spec.uids)
        topo.validate()

    def test_expected_tree_rejects_disconnected(self):
        from repro.topology.generators import TopologySpec
        from repro.types import Uid

        spec = TopologySpec(uids=[Uid(1), Uid(2)], name="disconnected")
        with pytest.raises(ValueError):
            expected_tree(spec)


class TestSrcLan:
    def test_thirty_switches(self):
        spec = src_service_lan()
        assert spec.n_switches == 30

    def test_at_most_four_trunk_ports_per_switch(self):
        """Section 5.5: four ports for switch links, eight for hosts."""
        spec = src_service_lan()
        for i in range(30):
            assert len(spec.used_ports(i)) <= 4

    def test_maximum_distance_six(self):
        """Section 6.6.5: maximum switch-to-switch distance of 6 links."""
        spec = src_service_lan()
        assert nx.diameter(as_graph(spec)) == 6

    def test_survives_any_single_failure(self):
        g = nx.Graph(as_graph(spec := src_service_lan()))
        assert nx.is_biconnected(g)
        assert not list(nx.bridges(g))

    def test_host_capacity_120(self):
        spec = src_service_lan()
        ports = src_host_ports(spec)
        total = sum(len(p) for p in ports.values())
        assert total == 240  # 120 dual-connected hosts (section 5.5)


class TestPlanner:
    def test_plan_meets_availability_goal(self):
        plan = plan_installation(100)
        assert plan.verify() == []

    def test_capacity_respected(self):
        plan = plan_installation(48, hosts_per_switch=8)
        assert plan.n_hosts == 48
        assert plan.host_capacity() >= 0

    def test_hosts_dual_homed_to_distinct_switches(self):
        plan = plan_installation(30)
        for attachments in plan.host_attachments.values():
            assert len(attachments) == 2
            assert attachments[0][0] != attachments[1][0]

    def test_overfull_plan_rejected(self):
        """More hosts than one Autonet's 126 switch numbers can carry."""
        with pytest.raises(ValueError):
            plan_installation(10_000, hosts_per_switch=2)

    def test_thousand_hosts_fit(self):
        """Section 2: 'An Autonet ought to accommodate at least 1000
        dual-connected hosts.'"""
        plan = plan_installation(500, hosts_per_switch=8)
        assert plan.verify() == []
        assert plan.n_switches <= 126

    def test_summary_renders(self):
        plan = plan_installation(20)
        text = plan.summary()
        assert "switches" in text and "dual-homed hosts" in text

    def test_planned_network_converges_and_carries_traffic(self):
        """End-to-end: build the planned installation and use it."""
        from repro.host.localnet import LocalNet
        from repro.network import Network

        plan = plan_installation(6, hosts_per_switch=4)
        net = Network(plan.spec)
        for name, attachments in plan.host_attachments.items():
            net.add_host(name, attachments)
        localnets = {n: LocalNet(net.drivers[n]) for n in plan.host_attachments}
        assert net.run_until_converged(timeout_ns=60 * SEC)
        net.run_for(5 * SEC)

        got = []
        localnets["host5"].on_datagram = lambda src, et, size, p: got.append(size)
        assert localnets["host0"].send(net.hosts["host5"].uid, 640)
        net.run_for(2 * SEC)
        assert got == [640]
