"""The fluid-model receive FIFO: occupancy, cut-through, thresholds."""

import pytest

from repro.constants import BYTE_TIME_NS
from repro.net.fifo import DiscardSink, ReceiveFifo
from repro.net.flowcontrol import Directive
from repro.net.packet import Packet, PacketType
from repro.sim.engine import Simulator


def make_fifo(sim, **kwargs):
    events = {"ready": [], "directives": [], "drained": [], "overflow": []}
    fifo = ReceiveFifo(
        sim,
        "test.fifo",
        on_head_ready=lambda p: events["ready"].append((sim.now, p)),
        on_level_directive=lambda d: events["directives"].append((sim.now, d)),
        on_packet_drained=lambda p: events["drained"].append((sim.now, p)),
        on_overflow=lambda p: events["overflow"].append((sim.now, p)),
        **kwargs,
    )
    return fifo, events


def packet(size_data=100):
    return Packet(dest_short=0x20, src_short=0x30, ptype=PacketType.DIAGNOSTIC,
                  data_bytes=size_data)


def test_arrival_accumulates_linearly():
    sim = Simulator()
    fifo, events = make_fifo(sim)
    pkt = packet(1000)  # wire = 1040
    fifo.begin_packet(pkt)
    fifo.set_in_rate(1.0)
    sim.run(until=100 * BYTE_TIME_NS)
    assert fifo.level == pytest.approx(100, abs=1)


def test_head_ready_after_two_address_bytes():
    """Routing request issued once the two address bytes arrive (§6.3)."""
    sim = Simulator()
    fifo, events = make_fifo(sim)
    fifo.begin_packet(packet())
    fifo.set_in_rate(1.0)
    sim.run(until=10_000)
    assert events["ready"]
    t_ready = events["ready"][0][0]
    assert t_ready == pytest.approx(2 * BYTE_TIME_NS, abs=BYTE_TIME_NS)


def test_cut_through_starts_at_25_bytes():
    """Forwarding may begin after only 25 bytes have arrived (§3.5)."""
    sim = Simulator()
    fifo, events = make_fifo(sim)
    sink = DiscardSink()
    pkt = packet(1000)
    fifo.begin_packet(pkt)
    fifo.set_in_rate(1.0)

    drain_started = []
    orig = sink.notify_begin
    sink.notify_begin = lambda p, b: (drain_started.append(sim.now), orig(p, b))
    sim.at(events["ready"] and 0 or 0, lambda: None)

    def connect():
        fifo.connect_drain([sink], broadcast=False)

    sim.at(1, connect)
    sim.run(until=1_000_000)
    assert drain_started
    assert drain_started[0] == pytest.approx(25 * BYTE_TIME_NS, abs=2 * BYTE_TIME_NS)


def test_passthrough_drains_at_arrival_rate():
    """With an empty buffer and ongoing arrival, cut-through forwards at
    the arrival rate; completion happens one wire-time after begin."""
    sim = Simulator()
    fifo, events = make_fifo(sim)
    sink = DiscardSink()
    pkt = packet(1000)
    fifo.begin_packet(pkt)
    fifo.set_in_rate(1.0)
    fifo.connect_drain([sink], broadcast=False)
    end = pkt.wire_bytes * BYTE_TIME_NS
    sim.at(end, lambda: fifo.end_packet(pkt))
    sim.run(until=10 * end)
    assert events["drained"]
    assert events["drained"][0][0] == pytest.approx(end, rel=0.05)
    assert sink.packets_discarded == 1
    assert fifo.level == 0


def test_stop_directive_at_watermark():
    sim = Simulator()
    fifo, events = make_fifo(sim, capacity=1000, stop_fraction=0.5)
    pkt = packet(2000)
    fifo.begin_packet(pkt)
    fifo.set_in_rate(1.0)
    sim.run(until=2 * 500 * BYTE_TIME_NS)
    stops = [d for d in events["directives"] if d[1] is Directive.STOP]
    assert stops
    assert stops[0][0] == pytest.approx(500 * BYTE_TIME_NS, rel=0.01)


def test_start_directive_when_draining_below_watermark():
    sim = Simulator()
    fifo, events = make_fifo(sim, capacity=1000, stop_fraction=0.5)
    pkt = packet(600)  # wire 640
    fifo.begin_packet(pkt)
    fifo.set_in_rate(1.0)
    sim.run(until=pkt.wire_bytes * BYTE_TIME_NS)
    fifo.end_packet(pkt)
    assert fifo.stopped
    fifo.connect_drain([DiscardSink()], broadcast=False)
    sim.run(until=sim.now + 2000 * BYTE_TIME_NS)
    starts = [d for d in events["directives"] if d[1] is Directive.START]
    assert starts
    assert not fifo.stopped


def test_overflow_marks_packet_corrupted():
    sim = Simulator()
    fifo, events = make_fifo(sim, capacity=100)
    pkt = packet(500)
    fifo.begin_packet(pkt)
    fifo.set_in_rate(1.0)
    sim.run(until=600 * BYTE_TIME_NS)
    assert events["overflow"]
    assert pkt.corrupted


def test_queued_packets_drain_in_order():
    sim = Simulator()
    fifo, events = make_fifo(sim, capacity=1 << 20)
    first, second = packet(100), packet(100)
    for pkt in (first, second):
        fifo.begin_packet(pkt)
        entry = fifo.queue[-1]
        entry.bytes_in = float(entry.size)
        entry.arriving = False
    fifo.recompute()
    sink = DiscardSink()
    # the head was announced; connect it, then the next on promotion
    assert [p for _, p in events["ready"]] == [first]
    fifo.connect_drain([sink], broadcast=False)
    sim.run(until=1_000_000)
    assert [p for _, p in events["ready"]] == [first, second]
    fifo.connect_drain([sink], broadcast=False)
    sim.run(until=2_000_000)
    assert [p for _, p in events["drained"]] == [first, second]


def test_drain_gated_by_target_permission():
    class GatedSink(DiscardSink):
        allowed = False

        def drain_allowed(self, broadcast):
            return self.allowed

    sim = Simulator()
    fifo, events = make_fifo(sim)
    sink = GatedSink()
    pkt = packet(100)
    fifo.begin_packet(pkt)
    entry = fifo.queue[-1]
    entry.bytes_in = float(entry.size)
    entry.arriving = False
    fifo.connect_drain([sink], broadcast=False)
    sim.run(until=100_000)
    assert not events["drained"]
    sink.allowed = True
    fifo.recompute()
    sim.run(until=sim.now + 1_000_000)
    assert events["drained"]
