"""The section 7 / 6.1 extension facilities: direction-tagged links
(reflected-packet discard) and the panic directive."""


from repro.constants import SEC
from repro.host.localnet import BROADCAST_UID, LocalNet
from repro.net.flowcontrol import Directive
from repro.network import Network
from repro.topology import line


def storm_copies(direction_tagged: bool) -> int:
    """One broadcast into a network with a reflecting dead-host link;
    count copies arriving at an innocent observer."""
    net = Network(line(3), direction_tagged_links=direction_tagged)
    net.add_host("victim", [(1, 9)])
    net.add_host("observer", [(2, 9)])
    net.add_host("sender", [(0, 10)])
    LocalNet(net.drivers["observer"])
    ln_send = LocalNet(net.drivers["sender"])
    assert net.run_until_converged(timeout_ns=60 * SEC)
    net.run_for(5 * SEC)
    net.power_off_host("victim", reflect=True)
    ctrl = net.hosts["observer"]
    before = ctrl.packets_received + ctrl.crc_errors
    ln_send.send(BROADCAST_UID, 200)
    net.run_for(2 * SEC)
    return ctrl.packets_received + ctrl.crc_errors - before


def test_direction_tagging_prevents_broadcast_storm():
    """Section 7: 'make packets traveling in the up direction look
    different than those traveling down... The link unit could then
    automatically discard packets headed in the wrong direction.'"""
    assert storm_copies(direction_tagged=False) > 20   # the storm
    assert storm_copies(direction_tagged=True) <= 2    # reflection discarded


def test_direction_tagging_counts_discards():
    net = Network(line(2), direction_tagged_links=True)
    net.add_host("victim", [(0, 9)])
    net.add_host("sender", [(1, 9)])
    ln_send = LocalNet(net.drivers["sender"])
    assert net.run_until_converged(timeout_ns=60 * SEC)
    net.run_for(5 * SEC)
    net.power_off_host("victim", reflect=True)
    ln_send.send(BROADCAST_UID, 100)
    net.run_for(1 * SEC)
    assert net.switches[0].ports[9].misdirected_discards >= 1


class TestPanic:
    def test_panic_resets_far_link_unit(self):
        """The panic directive clears the far FIFO and reinitializes link
        control so reconfiguration packets can get through (section 6.1)."""
        net = Network(line(2))
        assert net.run_until_converged(timeout_ns=60 * SEC)
        a, pa, b, pb = net.spec.cables[0]
        far_unit = net.switches[b].ports[pb]
        # wedge the far FIFO with a stuck packet (simulate a hung drain)
        from repro.net.packet import Packet

        stuck = Packet(dest_short=0x123, src_short=0, data_bytes=100)
        far_unit.fifo.begin_packet(stuck)
        far_unit.fifo.queue[-1].bytes_in = float(stuck.wire_bytes)
        far_unit.fifo.queue[-1].arriving = False
        assert len(far_unit.fifo.queue) == 1

        near_unit = net.switches[a].ports[pa]
        near_unit.send_panic()
        net.run_for(1 * SEC)
        assert far_unit.fc_receiver.panic_seen >= 0  # consumed by sampler
        assert len(far_unit.fifo.queue) == 0, "panic did not clear the FIFO"

    def test_panic_pulse_then_steady_directive(self):
        """After a panic pulse the steady directive resumes, so the link
        returns to normal flow control."""
        net = Network(line(2))
        assert net.run_until_converged(timeout_ns=60 * SEC)
        a, pa, b, pb = net.spec.cables[0]
        near = net.switches[a].ports[pa]
        far = net.switches[b].ports[pb]
        near.send_panic()
        net.run_for(1 * SEC)
        # the far side latched the steady directive again (start), and the
        # link is still classified good on both sides
        assert far.fc_receiver.last in (Directive.START,)
        from repro.core.portstate import PortState

        assert net.autopilots[a].monitoring.state_of(pa) is PortState.SWITCH_GOOD
        assert net.autopilots[b].monitoring.state_of(pb) is PortState.SWITCH_GOOD

    @staticmethod
    def _wedge_and_observe(use_panic: bool):
        """Latch a stale stop on one end of a switch link (the section 6.2
        oversight, e.g. after a glitch) and see whether the blockage is
        cleared by a panic or by declaring the port dead."""
        from repro.core.autopilot import AutopilotParams
        from repro.core.portstate import PortState

        def factory(_i):
            params = AutopilotParams()
            params.monitor.use_panic = use_panic
            params.monitor.blockage_sample_limit = 20
            return params

        net = Network(line(2), params_factory=factory)
        assert net.run_until_converged(timeout_ns=60 * SEC)
        net.run_for(2 * SEC)
        a, pa, b, pb = net.spec.cables[0]
        # sw0's port latches a stale stop; nothing re-announces it because
        # the far end's steady directive has not changed
        net.switches[a].ports[pa].fc_receiver.receive(Directive.STOP, net.sim.now)
        net.run_for(5 * SEC)
        return net.autopilots[a].monitoring.state_of(pa), net

    def test_blockage_kills_port_without_panic(self):
        _state, net = self._wedge_and_observe(use_panic=False)
        # the blockage detector sent the port to s.dead (it may be
        # re-qualifying again by the time we look)
        a = net.spec.cables[0][0]
        events = [e.detail for e in net.autopilots[a].trace.entries()
                  if e.event == "port-state"]
        assert any("no start directives" in d for d in events)

    def test_use_panic_clears_blockage_and_saves_port(self):
        from repro.core.portstate import PortState

        state, _net = self._wedge_and_observe(use_panic=True)
        assert state is PortState.SWITCH_GOOD
