"""End-to-end smoke tests for the byte-time data plane: two switches
exchanging one-hop control-processor packets over a real link."""

import pytest

from repro.constants import ADDR_ONE_HOP_BASE, BYTE_TIME_NS
from repro.net.link import connect
from repro.net.packet import Packet, PacketType
from repro.net.switch import Switch
from repro.sim.engine import Simulator
from repro.types import Uid


@pytest.fixture
def pair():
    sim = Simulator()
    a = Switch(sim, "A", Uid(0xA))
    b = Switch(sim, "B", Uid(0xB))
    connect(sim, a.ports[3], b.ports[7], length_km=0.1)
    return sim, a, b


def _cp_packet(dest_short, size=100):
    return Packet(
        dest_short=dest_short,
        src_short=0,
        ptype=PacketType.RECONFIGURATION,
        data_bytes=size,
    )


def test_one_hop_cp_to_cp(pair):
    sim, a, b = pair
    received = []
    b.on_cp_packet = received.append

    # one-hop address for A's port 3 directs the packet out that port;
    # at B it arrives on port 7 and the constant table sends it to port 0
    a.inject_from_cp(_cp_packet(ADDR_ONE_HOP_BASE + 3 - 1))
    sim.run(until=10_000_000)

    assert len(received) == 1
    pkt = received[0]
    assert pkt.trail[0][0] == "A" and pkt.trail[0][1] == 0 and pkt.trail[0][2] == (3,)
    assert pkt.trail[1][0] == "B" and pkt.trail[1][1] == 7 and pkt.trail[1][2] == (0,)
    assert not pkt.corrupted


def test_one_hop_reply(pair):
    sim, a, b = pair
    got_a, got_b = [], []
    a.on_cp_packet = got_a.append

    def reply(packet):
        got_b.append(packet)
        b.inject_from_cp(_cp_packet(ADDR_ONE_HOP_BASE + 7 - 1))

    b.on_cp_packet = reply
    a.inject_from_cp(_cp_packet(ADDR_ONE_HOP_BASE + 3 - 1))
    sim.run(until=50_000_000)
    assert len(got_b) == 1
    assert len(got_a) == 1


def test_transfer_latency_is_physical(pair):
    """A packet's delivery time covers serialization + propagation."""
    sim, a, b = pair
    times = []
    b.on_cp_packet = lambda p: times.append(sim.now)
    pkt = _cp_packet(ADDR_ONE_HOP_BASE + 2, size=1000)
    a.inject_from_cp(pkt)
    sim.run(until=50_000_000)
    assert times, "packet not delivered"
    # serialization of 1040 wire bytes twice (link + cp drain) dominates
    assert times[0] >= pkt.wire_bytes * BYTE_TIME_NS


def test_unknown_address_discarded(pair):
    sim, a, b = pair
    received = []
    b.on_cp_packet = received.append
    a.inject_from_cp(_cp_packet(0x123))  # no table entry anywhere
    sim.run(until=10_000_000)
    assert received == []
    assert a.packets_discarded == 1


def test_back_to_back_packets(pair):
    sim, a, b = pair
    received = []
    b.on_cp_packet = received.append
    for _ in range(20):
        a.inject_from_cp(_cp_packet(ADDR_ONE_HOP_BASE + 2, size=500))
    sim.run(until=100_000_000)
    assert len(received) == 20
    assert all(not p.corrupted for p in received)
