"""Forwarding-table semantics: the constant part and entry interpretation
(section 6.3)."""

import pytest

from repro.constants import (
    ADDR_LOCAL_SWITCH,
    ADDR_LOOPBACK,
    ADDR_ONE_HOP_BASE,
    CONTROL_PROCESSOR_PORT,
)
from repro.net.forwarding import DISCARD_ENTRY, ForwardingEntry, ForwardingTable


class TestForwardingEntry:
    def test_ports_sorted(self):
        entry = ForwardingEntry((7, 3, 5))
        assert entry.ports == (3, 5, 7)

    def test_discard_is_broadcast_with_empty_vector(self):
        """Section 6.3: a broadcast entry with all 0's means discard."""
        assert DISCARD_ENTRY.broadcast
        assert DISCARD_ENTRY.ports == ()
        assert DISCARD_ENTRY.is_discard
        assert not ForwardingEntry((1,), broadcast=True).is_discard
        # an alternative entry with no ports is NOT the discard encoding
        assert not ForwardingEntry((), broadcast=False).is_discard

    def test_port_range_checked(self):
        with pytest.raises(ValueError):
            ForwardingEntry((13,))


class TestConstantPart:
    def test_one_hop_from_cp(self):
        """0x001-0x00C from port 0 transmit on the numbered port."""
        table = ForwardingTable()
        for port in range(1, 13):
            entry = table.lookup(CONTROL_PROCESSOR_PORT, ADDR_ONE_HOP_BASE + port - 1)
            assert entry.ports == (port,)

    def test_one_hop_from_external_port_goes_to_cp(self):
        table = ForwardingTable()
        for in_port in range(1, 13):
            entry = table.lookup(in_port, ADDR_ONE_HOP_BASE + 2)
            assert entry.ports == (CONTROL_PROCESSOR_PORT,)

    def test_local_switch_address(self):
        """0x000 from a host reaches the local control processor."""
        table = ForwardingTable()
        entry = table.lookup(5, ADDR_LOCAL_SWITCH)
        assert entry.ports == (CONTROL_PROCESSOR_PORT,)

    def test_loopback_reflects(self):
        """0xFFC reflects back down the receiving link."""
        table = ForwardingTable()
        for in_port in range(1, 13):
            assert table.lookup(in_port, ADDR_LOOPBACK).ports == (in_port,)

    def test_unknown_address_discarded(self):
        table = ForwardingTable()
        assert table.lookup(3, 0x123).is_discard

    def test_reserved_addresses_discarded(self):
        """0xFF0-0xFFB are reserved: packets discarded (section 6.3)."""
        table = ForwardingTable()
        for address in range(0x7F0, 0x7FC):
            assert table.lookup(3, address).is_discard


class TestLoading:
    def test_clear_preserves_constant_part(self):
        table = ForwardingTable()
        table.set_entry(3, 0x123, ForwardingEntry((7,)))
        table.clear_to_constant()
        assert table.lookup(3, 0x123).is_discard
        assert table.lookup(3, ADDR_ONE_HOP_BASE).ports == (CONTROL_PROCESSOR_PORT,)

    def test_load_replaces_non_constant(self):
        table = ForwardingTable()
        table.load({(3, 0x100): ForwardingEntry((5,))})
        assert table.lookup(3, 0x100).ports == (5,)
        table.load({(3, 0x200): ForwardingEntry((6,))})
        assert table.lookup(3, 0x100).is_discard
        assert table.lookup(3, 0x200).ports == (6,)

    def test_generation_counts_loads(self):
        table = ForwardingTable()
        g0 = table.generation
        table.load({})
        table.clear_to_constant()
        assert table.generation == g0 + 2

    def test_addresses_truncated_on_access(self):
        table = ForwardingTable()
        table.set_entry(1, 0xFFFC, ForwardingEntry((1,)))
        assert table.lookup(1, 0x7FC).ports == (1,)

    def test_remove_entry(self):
        table = ForwardingTable()
        table.set_entry(2, 0x100, ForwardingEntry((4,)))
        table.remove_entry(2, 0x100)
        assert table.lookup(2, 0x100).is_discard

    def test_non_constant_entries_view(self):
        table = ForwardingTable()
        table.set_entry(2, 0x100, ForwardingEntry((4,)))
        extra = table.non_constant_entries()
        assert extra == {(2, 0x100): ForwardingEntry((4,))}
