"""Switch behaviors: crossbar bookkeeping, resets, power, broadcast
forwarding through real hardware paths."""

import pytest

from repro.constants import ADDR_ONE_HOP_BASE, SEC
from repro.core.routing import build_forwarding_entries
from repro.net.forwarding import ForwardingEntry
from repro.net.link import connect
from repro.net.packet import Packet, PacketType
from repro.net.switch import Crossbar, Switch
from repro.sim.engine import Simulator
from repro.topology.generators import TopologySpec, expected_tree
from repro.types import Uid, make_short_address


class TestCrossbar:
    def test_connect_disconnect(self):
        xbar = Crossbar(12)
        xbar.connect(3, (5, 7))
        assert xbar.source_of(5) == 3
        assert xbar.source_of(7) == 3
        xbar.disconnect(5)
        assert xbar.source_of(5) is None

    def test_double_assignment_rejected(self):
        xbar = Crossbar(12)
        xbar.connect(3, (5,))
        with pytest.raises(RuntimeError):
            xbar.connect(4, (5,))

    def test_clear(self):
        xbar = Crossbar(12)
        xbar.connect(1, (2,))
        xbar.clear()
        assert xbar.connections() == {}


def star_switch(sim, host_ports):
    """One switch with a static table delivering its own addresses."""
    spec = TopologySpec(uids=[Uid(0x1000)], name="single")
    topology = expected_tree(spec, host_ports={0: host_ports})
    switch = Switch(sim, "sw0", spec.uids[0])
    switch.load_table(build_forwarding_entries(topology, spec.uids[0]))
    return switch


class TestHardwareBroadcast:
    def test_simultaneous_forwarding(self):
        """A broadcast entry forwards on all listed ports at once."""
        from repro.host.controller import HostController

        sim = Simulator()
        switch = star_switch(sim, [1, 2, 3])
        hosts = []
        got = []
        for port in (1, 2, 3):
            host = HostController(sim, f"h{port}", Uid(0xA00 + port))
            connect(sim, host.ports[0], switch.ports[port], length_km=0.01)
            host.on_receive = lambda p, port=port: got.append(port)
            hosts.append(host)
        sim.run_for(1 * SEC)  # host directives announce

        hosts[0].send(
            Packet(dest_short=0x7FF, src_short=make_short_address(1, 1),
                   ptype=PacketType.CLIENT, dest_uid=None,
                   src_uid=hosts[0].uid, data_bytes=100)
        )
        sim.run_for(1 * SEC)
        # flood set includes the sender's own port (down-phase delivery)
        assert sorted(got) == [1, 2, 3]

    def test_unicast_between_local_hosts(self):
        from repro.host.controller import HostController

        sim = Simulator()
        switch = star_switch(sim, [1, 2])
        a = HostController(sim, "a", Uid(0xA1))
        b = HostController(sim, "b", Uid(0xB1))
        connect(sim, a.ports[0], switch.ports[1], length_km=0.01)
        connect(sim, b.ports[0], switch.ports[2], length_km=0.01)
        got = []
        b.on_receive = got.append
        sim.run_for(1 * SEC)
        a.send(Packet(dest_short=make_short_address(1, 2), src_short=0,
                      dest_uid=b.uid, src_uid=a.uid, data_bytes=256))
        sim.run_for(1 * SEC)
        assert len(got) == 1 and got[0].data_bytes == 256


class TestResetSemantics:
    def test_reset_destroys_inflight_packets(self):
        sim = Simulator()
        a = Switch(sim, "A", Uid(0xA))
        b = Switch(sim, "B", Uid(0xB))
        connect(sim, a.ports[3], b.ports[7], length_km=2.0)
        received = []
        b.on_cp_packet = received.append
        # a long packet mid-flight when the reset hits
        a.inject_from_cp(
            Packet(dest_short=ADDR_ONE_HOP_BASE + 2, src_short=0,
                   ptype=PacketType.RECONFIGURATION, data_bytes=50_000)
        )
        sim.run_for(1_000_000)  # 1 ms: transfer under way
        assert a.ports[3].tx.current is not None
        a.reset()
        sim.run_for(100_000_000)
        # the truncated packet either never arrives or arrives marked
        # corrupted (software CRC would reject it at the CP)
        assert not received or received[0].corrupted
        assert a.ports[3].tx.current is None

    def test_reset_counts(self):
        sim = Simulator()
        switch = Switch(sim, "A", Uid(0xA))
        switch.load_table({}, reset_on_load=True)
        switch.load_table({}, reset_on_load=False)
        assert switch.resets == 1

    def test_clear_table_keeps_one_hop(self):
        sim = Simulator()
        switch = Switch(sim, "A", Uid(0xA))
        switch.table.set_entry(1, 0x100, ForwardingEntry((2,)))
        switch.clear_table()
        assert switch.table.lookup(1, 0x100).is_discard
        assert not switch.table.lookup(1, ADDR_ONE_HOP_BASE).is_discard


class TestPower:
    def test_powered_off_switch_forwards_nothing(self):
        sim = Simulator()
        a = Switch(sim, "A", Uid(0xA))
        b = Switch(sim, "B", Uid(0xB))
        connect(sim, a.ports[3], b.ports[7], length_km=0.1)
        received = []
        b.on_cp_packet = received.append
        a.power_off()
        a.inject_from_cp(
            Packet(dest_short=ADDR_ONE_HOP_BASE + 2, src_short=0,
                   ptype=PacketType.RECONFIGURATION, data_bytes=64)
        )
        sim.run_for(50_000_000)
        assert received == []

    def test_power_cycle_restores_forwarding(self):
        sim = Simulator()
        a = Switch(sim, "A", Uid(0xA))
        b = Switch(sim, "B", Uid(0xB))
        connect(sim, a.ports[3], b.ports[7], length_km=0.1)
        received = []
        b.on_cp_packet = received.append
        a.power_off()
        a.power_on()
        a.inject_from_cp(
            Packet(dest_short=ADDR_ONE_HOP_BASE + 2, src_short=0,
                   ptype=PacketType.RECONFIGURATION, data_bytes=64)
        )
        sim.run_for(50_000_000)
        assert len(received) == 1

    def test_unpowered_switch_is_silent_on_links(self):
        sim = Simulator()
        a = Switch(sim, "A", Uid(0xA))
        b = Switch(sim, "B", Uid(0xB))
        connect(sim, a.ports[3], b.ports[7], length_km=0.1)
        a.power_off()
        sample = b.ports[7].sample_status()
        assert sample.bad_code  # silence reads as code violations


class TestIsolatePort:
    def test_isolation_releases_broadcast_grant(self):
        """A dead input port must release the output ports its granted
        broadcast was holding (the wedge the E9 debugging found)."""
        sim = Simulator()
        switch = star_switch(sim, [1, 2, 3])
        # fabricate a granted-but-stuck broadcast from port 1
        pkt = Packet(dest_short=0x7FF, src_short=0, data_bytes=100)
        switch.ports[1].fifo.begin_packet(pkt)
        entry = switch.ports[1].fifo.queue[-1]
        entry.bytes_in = float(pkt.wire_bytes)
        entry.arriving = False
        switch.ports[1].fifo.recompute()
        sim.run_for(1_000_000)
        held = [p for p, b in switch.engine.port_busy.items() if b]
        switch.isolate_port(1)
        sim.run_for(1_000_000)
        free_now = [p for p in held if not switch.engine.port_busy[p]]
        assert free_now == held, "isolation did not free granted ports"
        assert not switch.ports[1].fifo.queue
