"""The first-come, first-considered scheduling engine (section 6.4)."""


from repro.net.forwarding import ForwardingEntry
from repro.net.packet import Packet
from repro.net.scheduler import Request, SchedulingEngine
from repro.sim.engine import Simulator


def make_engine(sim, grants):
    return SchedulingEngine(
        sim, n_ports=12, grant=lambda req, ports: grants.append((req.in_port, ports))
    )


def pkt():
    return Packet(dest_short=0x20, src_short=0x30)


def test_alternative_request_prefers_lowest_port():
    sim = Simulator()
    grants = []
    engine = make_engine(sim, grants)
    engine.add_request(Request(1, ForwardingEntry((5, 3, 7)), pkt()))
    sim.run()
    assert grants == [(1, (3,))]


def test_busy_ports_skipped():
    sim = Simulator()
    grants = []
    engine = make_engine(sim, grants)
    engine.mark_port_busy(3)
    engine.add_request(Request(1, ForwardingEntry((3, 5)), pkt()))
    sim.run()
    assert grants == [(1, (5,))]


def test_request_waits_for_port_free():
    sim = Simulator()
    grants = []
    engine = make_engine(sim, grants)
    engine.mark_port_busy(4)
    engine.add_request(Request(2, ForwardingEntry((4,)), pkt()))
    sim.run()
    assert grants == []
    sim.at(sim.now + 10, engine.port_freed, 4)
    sim.run()
    assert grants == [(2, (4,))]


def test_decision_rate_480ns():
    """One request scheduled every 480 ns: 2 M requests/s (section 6.4)."""
    sim = Simulator()
    grant_times = []
    engine = SchedulingEngine(
        sim, n_ports=12, grant=lambda req, ports: grant_times.append(sim.now)
    )
    for i in range(4):
        engine.add_request(Request(i + 1, ForwardingEntry((i + 5,)), pkt()))
    sim.run()
    assert len(grant_times) == 4
    deltas = [b - a for a, b in zip(grant_times, grant_times[1:])]
    assert all(d >= 480 for d in deltas)


def test_out_of_order_service():
    """Queue jumping: younger requests may be serviced first when free
    ports don't suit older ones (section 6.4)."""
    sim = Simulator()
    grants = []
    engine = make_engine(sim, grants)
    engine.mark_port_busy(3)
    engine.add_request(Request(1, ForwardingEntry((3,)), pkt()))   # blocked
    engine.add_request(Request(2, ForwardingEntry((5,)), pkt()))   # free
    sim.run()
    assert grants == [(2, (5,))]
    engine.port_freed(3)
    sim.run()
    assert grants == [(2, (5,)), (1, (3,))]


def test_broadcast_waits_for_all_ports():
    sim = Simulator()
    grants = []
    engine = make_engine(sim, grants)
    engine.mark_port_busy(2)
    engine.add_request(Request(1, ForwardingEntry((2, 3, 4), broadcast=True), pkt()))
    sim.run()
    assert grants == []
    engine.port_freed(2)
    sim.run()
    assert grants == [(1, (2, 3, 4))]


def test_broadcast_reserves_ports_against_younger_requests():
    """Accumulated broadcast captures are not stolen by younger requests:
    the starvation-freedom property of section 6.4."""
    sim = Simulator()
    grants = []
    engine = make_engine(sim, grants)
    engine.mark_port_busy(2)
    # broadcast wants 2 and 3; it captures 3 now and waits for 2
    engine.add_request(Request(1, ForwardingEntry((2, 3), broadcast=True), pkt()))
    sim.run()
    # a younger alternative request wants 3 (reserved) or 7
    engine.add_request(Request(4, ForwardingEntry((3, 7)), pkt()))
    sim.run()
    assert grants == [(4, (7,))]  # it got 7, not the reserved 3
    engine.port_freed(2)
    sim.run()
    assert grants[-1] == (1, (2, 3))


def test_broadcast_eventually_scheduled_under_contention():
    """A broadcast request accumulates ports as they free and is never
    starved by a stream of alternative requests."""
    sim = Simulator()
    grants = []
    engine = make_engine(sim, grants)
    engine.mark_port_busy(2)
    engine.mark_port_busy(3)
    engine.add_request(Request(1, ForwardingEntry((2, 3), broadcast=True), pkt()))

    # competing single-port requests keep arriving for ports 2 and 3
    def compete(i):
        engine.add_request(Request(5 + (i % 8), ForwardingEntry((2, 3)), pkt()))

    for i in range(5):
        sim.at(1000 * (i + 1), compete, i)
    sim.at(10_000, engine.port_freed, 2)
    sim.at(20_000, engine.port_freed, 3)
    sim.run()
    assert (1, (2, 3)) in grants


def test_clear_drops_requests_and_reservations():
    sim = Simulator()
    grants = []
    engine = make_engine(sim, grants)
    engine.mark_port_busy(2)
    engine.add_request(Request(1, ForwardingEntry((2, 3), broadcast=True), pkt()))
    sim.run()
    engine.clear()
    engine.port_freed(2)
    sim.run()
    assert grants == []
    assert engine.pending() == 0
